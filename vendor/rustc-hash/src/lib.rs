//! Vendored, minimal subset of the
//! [`rustc-hash`](https://crates.io/crates/rustc-hash) crate: the FxHash
//! algorithm used by the Rust compiler's interner-heavy data structures.
//!
//! The build environment is offline, so this crate re-implements the small
//! API surface the workspace needs: [`FxHasher`], [`FxBuildHasher`] and the
//! [`FxHashMap`]/[`FxHashSet`] aliases.
//!
//! FxHash is **not** collision-resistant against adversarial inputs — it is
//! a speed-over-robustness trade. The workspace uses it only where the keys
//! are chunk fingerprints, which are themselves outputs of a cryptographic
//! hash: their low bits are already uniformly distributed, so the fast
//! multiply-rotate mix is safe there and roughly an order of magnitude
//! cheaper per probe than the default SipHash-1-3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant of FxHash (a 64-bit odd number close to
/// 2^64 / φ, spreading entropy across the high bits).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotation applied before every multiply, so that consecutive writes do
/// not simply commute.
const ROTATE: u32 = 5;

/// A fast, non-cryptographic, streaming hasher (the FxHash algorithm).
///
/// State is a single 64-bit word; every written word is folded in with a
/// rotate-xor-multiply step.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            // Fold in the length so "ab" + "" and "a" + "b" differ.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A [`BuildHasher`](std::hash::BuildHasher) producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using FxHash instead of the default SipHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using FxHash instead of the default SipHash.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(write: impl FnOnce(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        write(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(|h| h.write_u64(42)), hash_of(|h| h.write_u64(42)));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(|h| h.write_u64(1)), hash_of(|h| h.write_u64(2)));
        assert_ne!(
            hash_of(|h| h.write(b"hello")),
            hash_of(|h| h.write(b"world"))
        );
    }

    #[test]
    fn byte_stream_matches_word_widths() {
        // Different write granularity must still mix the stream content; we
        // only require determinism per call pattern, not cross-pattern
        // equality (std::hash makes no such promise either).
        assert_eq!(
            hash_of(|h| h.write(b"12345678ABCDEFGH")),
            hash_of(|h| h.write(b"12345678ABCDEFGH"))
        );
    }

    #[test]
    fn tail_length_matters() {
        assert_ne!(hash_of(|h| h.write(b"a")), hash_of(|h| h.write(b"a\0")));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 1);
        assert_eq!(m.get(&7), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sanity: sequential integers should not collide in the low bits
        // (what a power-of-two-capacity table actually indexes with).
        let mut low: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1024u64 {
            low.insert(hash_of(|h| h.write_u64(i)) & 0xfff);
        }
        assert!(
            low.len() > 700,
            "only {} distinct low-12-bit values",
            low.len()
        );
    }
}
