//! The [`Strategy`] trait and combinators.

use crate::TestRng;

/// A recipe for generating values of a given type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws one value per case from the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filter generated values, redrawing until `f` accepts one (bounded
    /// retries; panics if the predicate rejects everything).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
