//! The [`Arbitrary`] trait and the [`any`] entry point.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
