//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// A strategy producing `Vec`s of `element` with a length drawn from
/// `size` (`Range<usize>`, exclusive upper bound, as upstream).
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
