//! Vendored, minimal subset of the
//! [`proptest`](https://crates.io/crates/proptest) property-testing API.
//!
//! The build environment is offline, so this crate re-implements the slice
//! of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`];
//! * [`arbitrary::any`] for primitive integers;
//! * integer range strategies (`1u32..100_000`) and tuple strategies;
//! * [`collection::vec`] with a `Range<usize>` size;
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Unlike real proptest there is **no shrinking**: each `#[test]` runs a
//! fixed number of deterministic cases (seeded ChaCha8 per test), and a
//! failing case panics with the standard assertion message. That preserves
//! the property-test *coverage* semantics while keeping the vendored code
//! small.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;

/// Number of random cases each [`proptest!`]-generated test executes.
pub const DEFAULT_CASES: usize = 64;

/// The RNG driving strategy generation (deterministic per test).
pub type TestRng = ChaCha8Rng;

pub use strategy::Strategy;

/// The `prop` namespace mirrored from upstream (`prop::collection::vec`,
/// …); re-exported via [`prelude`].
pub mod prop {
    pub use crate::collection;
}

/// Derive a stable per-test RNG seed from the test's name.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms, good enough for seeding.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Strategy for `Range<T>`: uniform value in `[start, end)`.
impl<T> Strategy for core::ops::Range<T>
where
    T: rand::SampleUniform + PartialOrd + Clone + core::fmt::Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy for a pair of strategies: generates a tuple.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

/// Strategy for a triple of strategies.
impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Run `cases` iterations of a property body with a per-test deterministic
/// RNG. Used by the [`proptest!`] macro expansion.
pub fn run_cases<F: FnMut(&mut TestRng)>(test_name: &str, cases: usize, mut body: F) {
    use rand::SeedableRng;
    let mut rng = TestRng::seed_from_u64(seed_for(test_name));
    for _ in 0..cases {
        body(&mut rng);
    }
}

/// Define property tests: each function runs [`DEFAULT_CASES`] times with
/// inputs drawn from the given strategies.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), $crate::DEFAULT_CASES, |rng| {
                    let ($($arg,)+) = ($($crate::Strategy::generate(&($strategy), rng),)+);
                    $body
                });
            }
        )*
    };
}

/// Assert a boolean property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
