//! Vendored ChaCha random number generators implementing the traits of the
//! vendored [`rand`] crate.
//!
//! The build environment is offline, so this crate replaces
//! [`rand_chacha`](https://crates.io/crates/rand_chacha) with a from-scratch
//! implementation of the ChaCha stream cipher used as an RNG:
//!
//! * real ChaCha quarter-round core (Bernstein's construction, IETF word
//!   layout: 4 constant words, 8 key words, 2 counter words, 2 nonce words);
//! * [`ChaCha8Rng`], [`ChaCha12Rng`] and [`ChaCha20Rng`] type aliases over
//!   the generic [`ChaChaRng`] with the corresponding double-round counts;
//! * 32-byte seeds via `SeedableRng`, with `seed_from_u64` inherited from
//!   the vendored `rand`'s SplitMix64 expansion.
//!
//! Output is a deterministic function of the seed, suitable for the seeded,
//! reproducible experiment pipelines in this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds (4 column/diagonal double rounds).
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds (the original cipher strength).
pub type ChaCha20Rng = ChaChaRng<10>;

/// A ChaCha-based RNG generic over the number of double rounds
/// (`DOUBLE_ROUNDS = 4` gives ChaCha8, `10` gives ChaCha20).
#[derive(Clone, Debug)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Nonce / stream id (state words 14–15).
    stream: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    index: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    /// Set the 64-bit stream id (nonce words), restarting the block counter.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16;
    }

    /// Current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Run the block function for the current counter and advance it.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let mut working = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_word().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_word().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        assert_ne!(xs, (0..64).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn chacha20_block_matches_rfc8439_vector() {
        // RFC 8439 §2.4.2 keystream block: key 00..1f, block counter 1,
        // nonce 00 00 00 09 00 00 00 4a 00 00 00 00 (96-bit IETF layout).
        // Our layout is the original 64-bit counter + 64-bit nonce, so we
        // reproduce the vector by placing the IETF nonce words in the
        // counter-hi and stream slots directly. Expected words checked
        // against `openssl enc -chacha20`.
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(seed);
        rng.counter = 1 | (0x0900_0000u64 << 32);
        rng.stream = 0x4a00_0000;
        rng.index = 16;
        let first_words: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        assert_eq!(
            first_words,
            vec![0xe4e7_f110, 0x1559_3bd1, 0x1fdd_0f50, 0xc471_20a3]
        );
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        let mut buf = [0u8; 11];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..8], &w1);
        assert_eq!(&buf[8..], &w2[..3]);
    }
}
