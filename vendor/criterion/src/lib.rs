//! Vendored, dependency-free subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking API.
//!
//! The build environment is offline, so this crate provides the slice of
//! criterion's surface the workspace benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], [`Throughput`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! wall-clock measurement loop instead of criterion's full statistical
//! machinery.
//!
//! Each `Bencher::iter` call runs a short warm-up, then a measured batch,
//! and prints `benchmark  median-ish mean time  (throughput)` to stdout.
//! That keeps `cargo bench` usable for smoke-level performance tracking
//! while remaining a drop-in compile target for real criterion later.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, created by [`criterion_main!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(id.to_string(), None, 10);
        f(&mut bencher);
        bencher.report();
        self
    }
}

/// A group of related benchmarks sharing throughput and sizing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Record the amount of work one iteration represents, enabling
    /// throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of measured samples (a hint; the stub scales its
    /// measured batch with this value).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(
            format!("{}/{}", self.name, id.label),
            self.throughput.clone(),
            self.sample_size,
        );
        f(&mut bencher);
        bencher.report();
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut bencher = Bencher::new(
            format!("{}/{}", self.name, id.label),
            self.throughput.clone(),
            self.sample_size,
        );
        f(&mut bencher, input);
        bencher.report();
        self
    }

    /// Finish the group (printing nothing extra in the stub).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many logical elements.
    Elements(u64),
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    label: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    mean: Option<Duration>,
}

impl Bencher {
    fn new(label: String, throughput: Option<Throughput>, sample_size: usize) -> Self {
        Self {
            label,
            throughput,
            sample_size,
            mean: None,
        }
    }

    /// Measure `routine`: warm up briefly, then time a batch sized to the
    /// group's sample size and record the mean per-iteration duration.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: run until ~20ms have elapsed (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() > Duration::from_millis(20) {
                break;
            }
        }
        // Aim for a measured batch of similar length, scaled by sample size.
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let target = Duration::from_millis(5 * self.sample_size as u64);
        let iters = if per_iter.is_zero() {
            self.sample_size as u64
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / iters as u32);
    }

    fn report(&self) {
        let Some(mean) = self.mean else {
            println!("  {:<40} (no measurement)", self.label);
            return;
        };
        let rate = match &self.throughput {
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                let mib = *n as f64 / (1024.0 * 1024.0) / mean.as_secs_f64();
                format!("  {mib:>10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                let k = *n as f64 / 1000.0 / mean.as_secs_f64();
                format!("  {k:>10.1} Kelem/s")
            }
            _ => String::new(),
        };
        println!("  {:<40} {:>12.3?}{rate}", self.label, mean);
    }
}

/// Declare a benchmark group function from a list of `fn(&mut Criterion)`
/// targets, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generate a `main` that runs each declared [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
