//! Sequence-related sampling: the [`SliceRandom`] extension trait.

use crate::{Rng, RngCore};

/// Extension methods on slices for random shuffling and element choice.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates, matching upstream's
    /// iteration order: high index down to 1).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Return one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
        if self.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.len());
            Some(&self[i])
        }
    }
}
