//! Vendored, dependency-free subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment for this workspace is fully offline, so instead of
//! pulling `rand` from crates.io we vendor the small slice of its surface the
//! workspace actually uses:
//!
//! * [`RngCore`] / [`SeedableRng`] — the core generator traits, with the same
//!   SplitMix64-based [`SeedableRng::seed_from_u64`] derivation as
//!   `rand_core` 0.6;
//! * [`Rng`] — `gen`, `gen_range` (over `Range` / `RangeInclusive` of the
//!   primitive integer types), `gen_bool` and `fill`;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Sampling algorithms follow the upstream semantics (unbiased rejection
//! sampling for integer ranges, 53-bit mantissa construction for `f64`), so
//! seeded streams are deterministic and statistically equivalent to upstream
//! even where the exact bit-stream differs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod seq;

/// The core of a random number generator: a source of random words.
///
/// Mirror of `rand_core::RngCore`.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
///
/// Mirror of `rand_core::SeedableRng`; `seed_from_u64` uses the same
/// SplitMix64 expansion as `rand_core` 0.6 so seeded generators match
/// upstream construction.
pub trait SeedableRng: Sized {
    /// The raw seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Derive a full seed from a `u64` via SplitMix64 and construct the
    /// generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's full output
/// range by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}

impl StandardSample for i16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}

impl StandardSample for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for isize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, as upstream's
    /// `Standard` distribution for `f64`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}

/// Integer types that support unbiased uniform sampling from a sub-range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`; `high > low` must hold.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased `u64` in `[0, n)` via rejection sampling.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Largest multiple of n that fits in u64; values at or above it would
    // bias the modulo, so reject and redraw.
    let zone = u64::MAX - (u64::MAX % n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {
        $(
            impl SampleUniform for $t {
                fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    debug_assert!(low < high);
                    let span = (high as i128 - low as i128) as u64;
                    let offset = uniform_u64_below(rng, span);
                    (low as i128 + offset as i128) as $t
                }
            }
        )*
    };
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument accepted by [`Rng::gen_range`]: `low..high` or
/// `low..=high`.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_below(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (low, high) = (*self.start(), *self.end());
                    assert!(low <= high, "cannot sample empty range");
                    let span = (high as i128 - low as i128 + 1) as u64;
                    // span == 0 only if the range covers the whole u64
                    // domain, which no call site uses; guard anyway.
                    if span == 0 {
                        return <$t as StandardSample>::sample_standard(rng);
                    }
                    let offset = uniform_u64_below(rng, span);
                    (low as i128 + offset as i128) as $t
                }
            }
        )*
    };
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from the type's standard distribution
    /// (full integer range; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (`low..high` or `low..=high`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.gen::<f64>() < p
    }

    /// Fill `dest` with random data (alias of [`RngCore::fill_bytes`] for
    /// byte slices).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
