//! Minimal mirror of `rand::distributions`: the [`Distribution`] trait and
//! the [`Standard`] distribution, enough for `Distribution<T>`-bounded
//! helper code.

use crate::{RngCore, StandardSample};

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: full range for integers, `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl<T: StandardSample> Distribution<T> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_standard(rng)
    }
}
