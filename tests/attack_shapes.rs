//! Integration shape assertions: the paper's headline qualitative results
//! must hold on freshly generated workloads (loose bounds — exact values are
//! recorded in DESIGN.md §4).

use freqdedup::chunking::segment::SegmentParams;
use freqdedup::core::attacks::locality::LocalityParams;
use freqdedup::core::attacks::{self, AttackKind};
use freqdedup::core::defense::MinHashScrambleScheme;
use freqdedup::core::metrics;
use freqdedup::datasets::fsl::{generate, FslConfig};
use freqdedup::mle::trace_enc::DeterministicTraceEncryptor;
use freqdedup::trace::{Backup, BackupSeries};

fn series() -> BackupSeries {
    generate(&FslConfig::scaled(5_000))
}

fn encrypt(target: &Backup) -> freqdedup::mle::trace_enc::EncryptedBackup {
    DeterministicTraceEncryptor::new(b"secret").encrypt_backup(target)
}

#[test]
fn locality_beats_basic_by_orders_of_magnitude() {
    let s = series();
    let aux = s.get(3).unwrap();
    let observed = encrypt(s.latest().unwrap());
    let params = LocalityParams::default();

    let basic = attacks::run_ciphertext_only(AttackKind::Basic, &observed.backup, aux, &params);
    let locality =
        attacks::run_ciphertext_only(AttackKind::Locality, &observed.backup, aux, &params);
    let rb = metrics::score(&basic, &observed.backup, &observed.truth);
    let rl = metrics::score(&locality, &observed.backup, &observed.truth);
    assert!(rb.rate < 0.01, "basic attack rate {}", rb.rate);
    assert!(
        rl.rate > rb.rate * 10.0,
        "locality {} vs basic {}",
        rl.rate,
        rb.rate
    );
}

#[test]
fn advanced_exploits_size_information() {
    let s = series();
    let aux = s.get(3).unwrap();
    let observed = encrypt(s.latest().unwrap());
    let params = LocalityParams::default();
    let locality =
        attacks::run_ciphertext_only(AttackKind::Locality, &observed.backup, aux, &params);
    let advanced =
        attacks::run_ciphertext_only(AttackKind::Advanced, &observed.backup, aux, &params);
    let rl = metrics::score(&locality, &observed.backup, &observed.truth);
    let ra = metrics::score(&advanced, &observed.backup, &observed.truth);
    assert!(
        ra.rate > rl.rate,
        "advanced {} should beat locality {} on variable-size chunks",
        ra.rate,
        rl.rate
    );
}

#[test]
fn leakage_boosts_inference() {
    let s = series();
    let aux = s.get(2).unwrap();
    let observed = encrypt(s.latest().unwrap());
    let params = LocalityParams::known_plaintext_default();

    let no_leak =
        attacks::run_ciphertext_only(AttackKind::Locality, &observed.backup, aux, &params);
    let leaked = metrics::leak_pairs(&observed.backup, &observed.truth, 0.002, 3);
    let with_leak = attacks::run_known_plaintext(
        AttackKind::Locality,
        &observed.backup,
        aux,
        &leaked,
        &params,
    );
    let r0 = metrics::score(&no_leak, &observed.backup, &observed.truth);
    let r1 = metrics::score(&with_leak, &observed.backup, &observed.truth);
    assert!(
        r1.rate > r0.rate,
        "0.2% leakage should raise the rate ({} -> {})",
        r0.rate,
        r1.rate
    );
    assert!(r1.rate > 0.05, "known-plaintext rate {}", r1.rate);
}

#[test]
fn combined_defense_suppresses_attack() {
    let s = series();
    let aux = s.get(2).unwrap();
    let target = s.latest().unwrap();
    let params = LocalityParams::known_plaintext_default();
    let seg = SegmentParams::paper_default(8192);

    // Undefended baseline.
    let observed = encrypt(target);
    let leaked = metrics::leak_pairs(&observed.backup, &observed.truth, 0.002, 3);
    let attack = attacks::run_known_plaintext(
        AttackKind::Advanced,
        &observed.backup,
        aux,
        &leaked,
        &params,
    );
    let undefended = metrics::score(&attack, &observed.backup, &observed.truth);

    // Combined defense.
    let defended = MinHashScrambleScheme::combined(seg, 5).encrypt_backup(target);
    let leaked = metrics::leak_pairs(&defended.backup, &defended.truth, 0.002, 3);
    let attack = attacks::run_known_plaintext(
        AttackKind::Advanced,
        &defended.backup,
        aux,
        &leaked,
        &params,
    );
    let suppressed = metrics::score(&attack, &defended.backup, &defended.truth);

    assert!(
        suppressed.rate < undefended.rate * 0.2,
        "combined defense: {} vs undefended {}",
        suppressed.rate,
        undefended.rate
    );
    assert!(suppressed.rate < 0.02, "residual rate {}", suppressed.rate);
}

#[test]
fn defense_keeps_storage_saving_close_to_mle() {
    let s = series();
    let scheme = MinHashScrambleScheme::combined(SegmentParams::paper_default(8192), 5);
    let (defended, _) = scheme.encrypt_series(&s);
    let mle = freqdedup::trace::stats::dedup_ratio(&s);
    let combined = freqdedup::trace::stats::dedup_ratio(&defended);
    let mle_saving = 1.0 - 1.0 / mle;
    let comb_saving = 1.0 - 1.0 / combined;
    assert!(
        mle_saving - comb_saving < 0.12,
        "saving dropped from {mle_saving} to {comb_saving}"
    );
}
