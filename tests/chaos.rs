//! Chaos suite: seeded fault schedules against the resilient client /
//! server stack, plus the persist crash-point matrix.
//!
//! The property under test (DESIGN.md §10): for **any** seeded fault
//! schedule, every client either completes its upload-and-commit with the
//! server's store and adversary-tap state exactly as if each batch had
//! been ingested once (bit-identical to a fault-free run when every
//! client succeeds), or surfaces a clean typed [`ClientError`] — there is
//! no third outcome: no panic, no hang, no double-ingest, no torn commit.
//!
//! Concretely, after every run — faulted or not:
//!
//! * every client thread returns `Ok(chunks)` or a typed error;
//! * the tap catalog's labels are unique, cover exactly the committed
//!   clients, and each committed stream is byte-identical to what its
//!   client sent;
//! * the applied-commit registry maps each successful commit id to its
//!   label and chunk count;
//! * the streaming tap state equals an O(history) batch rebuild of the
//!   commits in arrival order (the incremental-attack invariant);
//! * the store's logical totals are bounded by exactly-once accounting:
//!   at least the committed chunks, at most one ingest per client batch;
//! * when **all** clients succeed, store stats, the label-sorted catalog
//!   and the attack inference (both [`TiePolicy`] variants) are
//!   bit-identical to the fault-free baseline.
//!
//! The crash-point matrix (second half) kills a durable engine with an
//! injected failure at every [`PersistSite`], in both `Error` and `Torn`
//! mode, at the first and a middle occurrence, and asserts recovery
//! equals the sealed-prefix reference — or, for the two store-birth
//! sites, a typed refusal to open the never-valid directory.
//!
//! Test directories live under `target/chaos-test/` so CI can upload them
//! when a test fails; they are removed on success.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::time::Duration;

use freqdedup::core::attacks::locality::LocalityParams;
use freqdedup::core::attacks::{self, AttackKind};
use freqdedup::server::client::{
    Client, ClientError, ResilienceReport, ResilientClient, RetryOptions,
};
use freqdedup::server::fault::{FaultProxy, FaultSpec};
use freqdedup::server::proto::ServerStats;
use freqdedup::server::server::{Server, ServerConfig};
use freqdedup::server::tap::{AppliedCommit, TapStreaming};
use freqdedup::store::engine::{DedupConfig, DedupEngine};
use freqdedup::store::persist::{FsyncPolicy, PersistConfig, PersistError};
use freqdedup::trace::{Backup, ChunkRecord};

/// A fresh directory under `target/chaos-test/` (kept on panic so CI can
/// upload it, removed by [`done`] on success).
fn test_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from("target/chaos-test").join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn done(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

fn small_engine() -> DedupConfig {
    DedupConfig {
        container_bytes: 4096,
        cache_entries: 1024,
        bloom_expected: 100_000,
        ..DedupConfig::default()
    }
}

/// Chunks per client backup (6 batches of 40).
const CHUNKS_PER_CLIENT: u64 = 240;

/// Client `i`'s deterministic backup: overlapping fingerprint ranges so
/// cross-client dedup actually happens.
fn chaos_backup(i: usize) -> Backup {
    Backup::from_chunks(
        format!("chaos-{i}"),
        (0..CHUNKS_PER_CLIENT)
            .map(|j| ChunkRecord::new((j % 96) + (i as u64) * 48, 32))
            .collect(),
    )
}

fn chaos_commit_id(i: usize) -> u64 {
    0x1000 + i as u64
}

/// Everything one chaos run yields for cross-run comparison.
struct RunOutcome {
    /// Per client: `(index, upload result, resilience report)`.
    results: Vec<(usize, Result<u64, ClientError>, ResilienceReport)>,
    /// Tap catalog in arrival (commit) order.
    committed: Vec<Backup>,
    /// Applied-commit registry at shutdown.
    applied: HashMap<u64, AppliedCommit>,
    /// Server stats at shutdown.
    stats: ServerStats,
}

impl RunOutcome {
    fn ok_indices(&self) -> Vec<usize> {
        self.results
            .iter()
            .filter(|(_, r, _)| r.is_ok())
            .map(|(i, _, _)| *i)
            .collect()
    }

    fn all_ok(&self) -> bool {
        self.results.iter().all(|(_, r, _)| r.is_ok())
    }

    /// The catalog, label-sorted — the canonical deterministic view.
    fn sorted_catalog(&self) -> Vec<Backup> {
        let mut sorted = self.committed.clone();
        sorted.sort_by(|a, b| a.label.cmp(&b.label));
        sorted
    }
}

/// One full chaos run: a server (optionally behind a seeded fault proxy),
/// `clients` concurrent [`ResilientClient`] uploads with nonzero commit
/// ids, then tap/stats capture and graceful shutdown.
///
/// Panics when any *invariant* is violated; individual client failures
/// are returned, not panicked — they are a legal outcome under faults.
fn run_chaos(dir: &Path, tag: &str, clients: usize, spec: Option<FaultSpec>) -> RunOutcome {
    let server = Server::bind(ServerConfig {
        workers: clients.max(2),
        engine: small_engine(),
        log_file: Some(dir.join(format!("{tag}.log"))),
        ..ServerConfig::default()
    })
    .unwrap();
    let server_addr = server.local_addr().unwrap();
    let tap = server.tap_handle();
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    let proxy = spec.map(|s| FaultProxy::start(server_addr, s).unwrap());
    let upload_addr = proxy.as_ref().map_or(server_addr, FaultProxy::local_addr);
    let opts = RetryOptions {
        max_attempts: 10,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(40),
        op_timeout: Duration::from_secs(5),
        batch: 40,
    };

    let results: Vec<(usize, Result<u64, ClientError>, ResilienceReport)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    scope.spawn(move || {
                        let backup = chaos_backup(i);
                        let mut rc = ResilientClient::new(
                            upload_addr.to_string(),
                            format!("chaos-client-{i}"),
                            opts,
                        );
                        let res = rc.upload_commit(&backup, chaos_commit_id(i));
                        (i, res, rc.report().clone())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no third outcome: client must not panic"))
                .collect()
        });

    if let Some(p) = proxy {
        let frames = p.counts().frames.load(std::sync::atomic::Ordering::SeqCst);
        assert!(frames > 0, "{tag}: proxy relayed no frames");
        p.stop();
    }

    // Streaming-tap invariant under one lock: the O(delta) running state
    // equals an O(history) rebuild of the arrival-order commit log.
    let (committed, applied) = tap.with_tap(|t| {
        assert!(t.streaming_consistent(), "{tag}: streaming inconsistent");
        assert_eq!(
            t.streaming(),
            &TapStreaming::rebuild(t.committed()),
            "{tag}: incremental state diverged from batch rebuild"
        );
        (t.committed().to_vec(), t.applied_commits().clone())
    });

    // Shutdown goes directly to the server, never through the proxy.
    let mut closer = Client::connect(server_addr, "closer").unwrap();
    let stats = closer.stats().unwrap();
    closer.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.commits, committed.len() as u64, "{tag}");

    let outcome = RunOutcome {
        results,
        committed,
        applied,
        stats,
    };
    assert_run_invariants(&outcome, clients, tag);
    outcome
}

/// The per-run chaos invariants that hold for any schedule and outcome.
fn assert_run_invariants(run: &RunOutcome, clients: usize, tag: &str) {
    // Every client completed fully or failed typed (Ok(chunks) is always
    // the full backup — a partial success is a protocol violation).
    for (i, res, report) in &run.results {
        match res {
            Ok(chunks) => assert_eq!(*chunks, CHUNKS_PER_CLIENT, "{tag}: client {i}"),
            Err(e) => {
                assert!(
                    matches!(e, ClientError::Exhausted { .. } | ClientError::Wire(_)),
                    "{tag}: client {i} failed outside the fault taxonomy: {e}"
                );
            }
        }
        assert!(report.attempts >= 1, "{tag}: client {i}");
    }

    // Catalog labels are unique and lie within the client label set.
    let labels: Vec<&str> = run.committed.iter().map(|b| b.label.as_str()).collect();
    let unique: HashSet<&str> = labels.iter().copied().collect();
    assert_eq!(unique.len(), labels.len(), "{tag}: duplicate commit labels");
    let all_labels: HashSet<String> = (0..clients).map(|i| chaos_backup(i).label).collect();
    for label in &labels {
        assert!(all_labels.contains(*label), "{tag}: foreign label {label}");
    }

    // Every successful client's stream was committed byte-identically,
    // exactly once, and registered under its commit id.
    for i in run.ok_indices() {
        let expected = chaos_backup(i);
        let committed = run
            .committed
            .iter()
            .find(|b| b.label == expected.label)
            .unwrap_or_else(|| panic!("{tag}: client {i} reported Ok but was never committed"));
        assert_eq!(committed.chunks, expected.chunks, "{tag}: client {i}");
        let entry = run
            .applied
            .get(&chaos_commit_id(i))
            .unwrap_or_else(|| panic!("{tag}: commit id of client {i} not registered"));
        assert_eq!(entry.label, expected.label, "{tag}: client {i}");
        assert_eq!(entry.chunks, CHUNKS_PER_CLIENT, "{tag}: client {i}");
    }

    // Exactly-once accounting bounds the store's logical totals: at least
    // every committed chunk, at most one ingest of each client batch —
    // replayed batches after lost acks must never be counted twice.
    let committed_chunks: u64 = run.committed.iter().map(|b| b.chunks.len() as u64).sum();
    let max_chunks = clients as u64 * CHUNKS_PER_CLIENT;
    assert!(
        run.stats.logical_chunks >= committed_chunks,
        "{tag}: committed chunks missing from the store"
    );
    assert!(
        run.stats.logical_chunks <= max_chunks,
        "{tag}: double-ingest — {} logical chunks for at most {max_chunks}",
        run.stats.logical_chunks
    );
    assert_eq!(
        run.stats.committed_backups,
        run.committed.len() as u64,
        "{tag}"
    );
}

/// The partition-invariant store totals that must be bit-identical to a
/// fault-free run when all clients succeed. The dup-class split
/// (cache/buffer/index hits) and seal boundaries legitimately depend on
/// arrival interleaving, and `sessions_served` grows with reconnects —
/// those are excluded, exactly as in the live-traffic equivalence suite.
fn store_stats(s: &ServerStats) -> [u64; 5] {
    [
        s.logical_chunks,
        s.logical_bytes,
        s.unique_chunks,
        s.unique_bytes,
        s.committed_backups,
    ]
}

/// Attack inference (both tie policies) over a label-sorted catalog, as
/// sorted `(ciphertext, plaintext)` pairs for comparison.
fn catalog_inference(catalog: &[Backup], aux: &Backup) -> [Vec<(u64, u64)>; 2] {
    use freqdedup::core::counting::TiePolicy;
    let params = LocalityParams::new(2, 5, 50_000);
    [TiePolicy::StreamOrder, TiePolicy::KeyOrder].map(|policy| {
        let inf = attacks::run_ciphertext_only_series(
            AttackKind::Locality,
            catalog,
            aux,
            &params.clone().tie_policy(policy),
        );
        let mut pairs: Vec<(u64, u64)> = inf.iter().map(|(c, p)| (c.0, p.0)).collect();
        pairs.sort_unstable();
        pairs
    })
}

/// The chaos property across a pinned matrix of seeded network fault
/// schedules and client counts.
#[test]
fn seeded_network_chaos_has_no_third_outcome() {
    let dir = test_dir("net-chaos");
    let aux = chaos_backup(0);

    for clients in [1usize, 2, 4] {
        // Fault-free baseline for this client count.
        let baseline = run_chaos(&dir, &format!("baseline-{clients}"), clients, None);
        assert!(baseline.all_ok(), "baseline must succeed without faults");
        let baseline_inference = catalog_inference(&baseline.sorted_catalog(), &aux);

        // Full chaos (resets + partial frames + delays), pinned seeds:
        // clients may fail — the invariants must hold either way.
        for seed in [0x00C0_FFEEu64, 7, 0xDEAD_BEEF] {
            let tag = format!("chaos-{clients}-{seed:#x}");
            let run = run_chaos(&dir, &tag, clients, Some(FaultSpec::new(seed)));
            if run.all_ok() {
                assert_eq!(
                    store_stats(&run.stats),
                    store_stats(&baseline.stats),
                    "{tag}: stats vs fault-free"
                );
                assert_eq!(
                    run.sorted_catalog(),
                    baseline.sorted_catalog(),
                    "{tag}: catalog vs fault-free"
                );
                assert_eq!(
                    catalog_inference(&run.sorted_catalog(), &aux),
                    baseline_inference,
                    "{tag}: inference vs fault-free"
                );
            }
        }

        // Delay-only schedule: no connection ever dies, so every client
        // MUST succeed and match the baseline bit-identically — this
        // branch guarantees the all-Ok comparison is always exercised.
        let tag = format!("delays-{clients}");
        let run = run_chaos(
            &dir,
            &tag,
            clients,
            Some(FaultSpec::quiet(99).delays(200, 2)),
        );
        assert!(run.all_ok(), "{tag}: delays alone must not fail a client");
        assert_eq!(
            store_stats(&run.stats),
            store_stats(&baseline.stats),
            "{tag}"
        );
        assert_eq!(run.sorted_catalog(), baseline.sorted_catalog(), "{tag}");
        assert_eq!(
            catalog_inference(&run.sorted_catalog(), &aux),
            baseline_inference,
            "{tag}"
        );
    }

    // A reset-heavy schedule: failures are likely; the invariants (and
    // the no-double-ingest bound in particular) must still hold.
    let run = run_chaos(
        &dir,
        "reset-heavy",
        2,
        Some(FaultSpec::new(0xBAD_5EED).resets(150).partials(80)),
    );
    // Non-vacuity: with ~23% of frames cut, the retry/reconnect machinery
    // must actually have been exercised (an all-clean pass would mean the
    // proxy injected nothing and the suite tests nothing).
    let retries: u64 = run.results.iter().map(|(_, _, r)| r.retries).sum();
    assert!(
        retries > 0 || !run.all_ok(),
        "reset-heavy schedule exercised no retries and no failures"
    );
    done(&dir);
}

// ---------------------------------------------------------------------------
// Crash-point matrix: every persist site, both failure modes
// ---------------------------------------------------------------------------

/// Kills a durable engine at every [`PersistSite`] × `{Error, Torn}` ×
/// `{first, middle}` occurrence and asserts recovery lands on the
/// sealed-prefix reference (or a typed refusal for the two store-birth
/// sites whose directory was never a valid store).
#[test]
fn crash_point_matrix_recovers_at_every_persist_site() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::Ordering;

    use freqdedup::store::fault::{CountingPolicy, FailAt, FailMode, PersistSite, ALL_SITES};

    let dir = test_dir("crash-matrix");
    // 16-byte chunks, 256-byte containers → 16 chunks per container,
    // 96 chunks = 6 full containers (computable sealed prefix).
    let records: Vec<ChunkRecord> = (0..96u64)
        .map(|i| ChunkRecord::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), 16))
        .collect();
    let small = || DedupConfig {
        container_bytes: 256,
        cache_entries: 64,
        entry_bytes: 32,
        bloom_expected: 100_000,
        bloom_fp_rate: 0.01,
        index_shards: 2,
        persist: None,
    };
    let clean = |run_dir: &PathBuf| DedupConfig {
        persist: Some(PersistConfig::new(run_dir).fsync(FsyncPolicy::Never)),
        ..small()
    };

    // Probe: per-site operation counts for this exact workload.
    let counting = CountingPolicy::new();
    let counts = counting.counts();
    {
        let cfg = DedupConfig {
            persist: Some(
                PersistConfig::new(dir.join("probe"))
                    .fsync(FsyncPolicy::Always)
                    .io_policy(counting),
            ),
            ..small()
        };
        let mut probe = DedupEngine::open(cfg).unwrap();
        for &r in &records {
            probe.process(r);
        }
        probe.close().unwrap();
    }
    let counts = counts.lock().unwrap().clone();

    for site in ALL_SITES {
        // The recipe/rekey sites are only reached by lifecycle operations;
        // they get their own matrix below with a churn workload.
        if matches!(
            site,
            PersistSite::RecipeWrite
                | PersistSite::RecipeSync
                | PersistSite::RekeyWrite
                | PersistSite::RekeySync
                | PersistSite::RekeyRename
        ) {
            continue;
        }
        let n = *counts.get(&site).unwrap_or(&0);
        assert!(n > 0, "probe run never hit {site:?}");
        for mode in [FailMode::Error, FailMode::Torn] {
            let mut kill_at = vec![0, n / 2];
            kill_at.dedup();
            for k in kill_at {
                let tag = format!("{site:?}-{mode:?}-k{k}");
                let run_dir = dir.join(&tag);
                let fail = FailAt::new(site, k, mode);
                let fired = fail.fired();
                let cfg = DedupConfig {
                    persist: Some(
                        PersistConfig::new(&run_dir)
                            .fsync(FsyncPolicy::Always)
                            .io_policy(fail),
                    ),
                    ..small()
                };

                let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), PersistError> {
                    let mut engine = DedupEngine::open(cfg)?;
                    for &r in &records {
                        engine.process(r);
                    }
                    engine.close()
                }));
                assert!(fired.load(Ordering::SeqCst), "{tag}: fault never fired");
                // A typed error or a reported panic are both clean; outright
                // success means the fault never bit.
                if let Ok(Ok(())) = outcome {
                    panic!("{tag}: succeeded despite the injected fault");
                }

                match DedupEngine::open(clean(&run_dir)) {
                    Ok(recovered) => {
                        let sealed = recovered.containers().sealed_count();
                        assert!(sealed <= 6, "{tag}: {sealed} sealed");
                        assert_eq!(
                            recovered.stats().unique_chunks,
                            (sealed * 16) as u64,
                            "{tag}"
                        );
                        let mut reference = DedupEngine::new(small()).unwrap();
                        for &r in &records[..sealed * 16] {
                            reference.process(r);
                        }
                        reference.finish();
                        assert_eq!(
                            recovered.index().sorted_entries(),
                            reference.index().sorted_entries(),
                            "{tag}: index equals the sealed-prefix reference"
                        );
                        // The store keeps working durably after recovery.
                        let mut recovered = recovered;
                        for &r in &records[sealed * 16..] {
                            recovered.process(r);
                        }
                        recovered.close().unwrap();
                        let after = DedupEngine::open(clean(&run_dir)).unwrap();
                        assert_eq!(after.stats().unique_chunks, 96, "{tag}");
                    }
                    Err(e) => {
                        // Only the store-birth sites may leave a directory
                        // that was never a valid store; the refusal is
                        // typed, and wiping it restores service.
                        assert!(
                            matches!(site, PersistSite::MetaWrite | PersistSite::ManifestHeader),
                            "{tag}: recovery failed at a non-birth site: {e}"
                        );
                        std::fs::remove_dir_all(&run_dir).unwrap();
                        let fresh = DedupEngine::open(clean(&run_dir)).unwrap();
                        assert_eq!(fresh.containers().sealed_count(), 0, "{tag}");
                    }
                }
            }
        }
    }
    done(&dir);
}

// ---------------------------------------------------------------------------
// Lifecycle crash matrix: deletion, GC and rekey under injected crashes
// ---------------------------------------------------------------------------

/// Deterministic payload bytes for a chunk, derived from its fingerprint.
fn chunk_bytes(fp: u64, size: u32) -> Vec<u8> {
    fp.to_le_bytes()
        .into_iter()
        .cycle()
        .take(size as usize)
        .collect()
}

const CHAOS_EPOCH_SECRET: &[u8] = b"chaos-epoch-one";

/// Every committed backup must restore byte-identically — no chunk a
/// committed recipe references may dangle, whatever the crash point was.
fn assert_backups_restorable(engine: &freqdedup::store::engine::DedupEngine, tag: &str) {
    for (id, _ts) in engine.committed_backups() {
        let recipe = engine.backup_recipe(id).expect("listed backup").clone();
        for c in &recipe.chunks {
            let got = engine
                .read_chunk(c.fp)
                .unwrap_or_else(|| panic!("{tag}: backup {id} chunk {:?} dangles", c.fp));
            assert_eq!(
                got,
                &chunk_bytes(c.fp.value(), c.size)[..],
                "{tag}: backup {id} chunk {:?} bytes differ",
                c.fp
            );
        }
    }
}

/// Kills a durable engine running a churn workload — two overlapping
/// backup commits, a deletion, GC and a rekey — at every [`PersistSite`]
/// × `{Error, Torn}` × `{first, middle}` occurrence, then asserts the
/// reopened store is *consistent*: every surviving committed backup
/// restores byte-identically (never a dangling chunk reference), and the
/// interrupted lifecycle step can be re-run to completion.
#[test]
fn lifecycle_crash_matrix_recovers_at_every_persist_site() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::Ordering;

    use freqdedup::store::fault::{CountingPolicy, FailAt, FailMode, PersistSite, ALL_SITES};

    let dir = test_dir("lifecycle-crash");
    // 96 unique 16-byte chunks, 256-byte containers → 6 full containers.
    // Backup 1 owns chunks 0..64, backup 2 owns 32..96; deleting backup 1
    // makes containers 0 and 1 fully dead (GC drops them) while 2 and 3
    // stay fully live (GC keeps them).
    let records: Vec<ChunkRecord> = (0..96u64)
        .map(|i| ChunkRecord::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), 16))
        .collect();
    let small = || DedupConfig {
        container_bytes: 256,
        cache_entries: 64,
        entry_bytes: 32,
        bloom_expected: 100_000,
        bloom_fp_rate: 0.01,
        index_shards: 2,
        persist: None,
    };
    // Reopen config: fault-free, with the epoch-1 secret in the keychain
    // (required once the crash landed anywhere at or past REKEY_BEGIN).
    let clean = |run_dir: &PathBuf| DedupConfig {
        persist: Some(
            PersistConfig::new(run_dir)
                .fsync(FsyncPolicy::Never)
                .epoch_secret(1, CHAOS_EPOCH_SECRET),
        ),
        ..small()
    };

    let workload = |cfg: DedupConfig, records: &[ChunkRecord]| -> Result<(), PersistError> {
        let mut engine = DedupEngine::open(cfg)?;
        for &r in &records[..64] {
            engine.process_with_payload(r, &chunk_bytes(r.fp.value(), r.size));
        }
        engine.commit_backup(1, 100, &records[..64]).unwrap();
        for &r in &records[32..] {
            engine.process_with_payload(r, &chunk_bytes(r.fp.value(), r.size));
        }
        engine.commit_backup(2, 200, &records[32..]).unwrap();
        engine.delete_backup(1).unwrap();
        engine.gc(300);
        engine.rekey(CHAOS_EPOCH_SECRET);
        engine.close()
    };

    // Probe: per-site operation counts for this exact churn workload.
    let counting = CountingPolicy::new();
    let counts = counting.counts();
    workload(
        DedupConfig {
            persist: Some(
                PersistConfig::new(dir.join("probe"))
                    .fsync(FsyncPolicy::Always)
                    .io_policy(counting),
            ),
            ..small()
        },
        &records,
    )
    .unwrap();
    let counts = counts.lock().unwrap().clone();

    for site in ALL_SITES {
        let n = *counts.get(&site).unwrap_or(&0);
        assert!(n > 0, "churn probe never hit {site:?}");
        for mode in [FailMode::Error, FailMode::Torn] {
            let mut kill_at = vec![0, n / 2];
            kill_at.dedup();
            for k in kill_at {
                let tag = format!("lc-{site:?}-{mode:?}-k{k}");
                let run_dir = dir.join(&tag);
                let fail = FailAt::new(site, k, mode);
                let fired = fail.fired();
                let cfg = DedupConfig {
                    persist: Some(
                        PersistConfig::new(&run_dir)
                            .fsync(FsyncPolicy::Always)
                            .io_policy(fail),
                    ),
                    ..small()
                };

                let outcome = catch_unwind(AssertUnwindSafe(|| workload(cfg, &records)));
                assert!(fired.load(Ordering::SeqCst), "{tag}: fault never fired");
                if let Ok(Ok(())) = outcome {
                    panic!("{tag}: succeeded despite the injected fault");
                }

                match DedupEngine::open(clean(&run_dir)) {
                    Ok(mut engine) => {
                        // Pin (c): whatever the crash point, recovery lands
                        // on a consistent pre- or post-step state.
                        assert_backups_restorable(&engine, &tag);
                        // The interrupted step re-runs to completion.
                        if engine.backup_recipe(1).is_some() {
                            engine.delete_backup(1).unwrap();
                        }
                        engine.gc(300);
                        engine.rekey_to(1, CHAOS_EPOCH_SECRET);
                        assert_backups_restorable(&engine, &tag);
                        engine.close().unwrap();

                        let reopened = DedupEngine::open(clean(&run_dir)).unwrap();
                        assert_eq!(reopened.epoch(), 1, "{tag}: epoch after convergence");
                        assert_eq!(reopened.pending_rekey(), None, "{tag}");
                        assert_backups_restorable(&reopened, &tag);
                    }
                    Err(e) => {
                        assert!(
                            matches!(site, PersistSite::MetaWrite | PersistSite::ManifestHeader),
                            "{tag}: recovery failed at a non-birth site: {e}"
                        );
                        std::fs::remove_dir_all(&run_dir).unwrap();
                    }
                }
            }
        }
    }
    done(&dir);
}
