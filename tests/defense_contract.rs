//! The [`DefenseScheme`] trait contract, checked over every shipped
//! implementation:
//!
//! * every scheme restores byte-identically through the client key store
//!   over a live loopback server in payload mode;
//! * every scheme is deterministic under a fixed [`KeyContext`] at any
//!   thread count (`encrypt_backup_par` ≡ sequential);
//! * [`NoDefense`] is bit-identical to the pre-trait undefended pipeline
//!   on server stats, the tap series, and both-policy inference;
//! * tunable schemes honor their storage-blowup budgets, and their
//!   constructors reject bad parameters with typed [`DefenseError`]s.

use freqdedup::chunking::fastcdc::FastCdc;
use freqdedup::chunking::segment::SegmentParams;
use freqdedup::core::attacks::locality::LocalityParams;
use freqdedup::core::attacks::AttackKind;
use freqdedup::core::defense::prelude::*;
use freqdedup::core::metrics::Inference;
use freqdedup::core::par::ParConfig;
use freqdedup::datasets::fsl::{generate, FslConfig};
use freqdedup::mle::convergent::Convergent;
use freqdedup::mle::trace_enc::{DeterministicTraceEncryptor, EncryptedBackup};
use freqdedup::server::client::{Client, EncodedStream};
use freqdedup::server::server::{Server, ServerConfig, TapView};
use freqdedup::trace::{Backup, Fingerprint};

const SECRET: &[u8] = b"contract-secret";
const SEED: u64 = 41;

fn ctx() -> KeyContext {
    KeyContext::new(SECRET, SEED)
}

/// Every shipped scheme, labelled. Tunables use mid-range parameters.
fn roster() -> Vec<Box<dyn DefenseScheme>> {
    let seg = SegmentParams::paper_default(1024);
    vec![
        Box::new(NoDefense),
        Box::new(MinHashEncryption::new(seg.clone())),
        Box::new(ScrambleScheme::new(seg.clone())),
        Box::new(MinHashScrambleScheme::combined(seg, 3)),
        Box::new(TedScheme::new(1.5).unwrap()),
        Box::new(PartitionSmoothing::new(8, 1.5).unwrap()),
    ]
}

fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn fsl_pair() -> (Backup, Backup) {
    let series = generate(&FslConfig::scaled(4_000));
    let aux = series.get(0).unwrap().clone();
    let target = series.latest().unwrap().clone();
    (aux, target)
}

fn truth_pairs(enc: &EncryptedBackup) -> Vec<(Fingerprint, Fingerprint)> {
    let mut v: Vec<_> = enc.truth.iter().collect();
    v.sort_unstable();
    v
}

fn sorted_pairs(inf: &Inference) -> Vec<(Fingerprint, Fingerprint)> {
    let mut v: Vec<_> = inf.iter().collect();
    v.sort_unstable();
    v
}

#[test]
fn every_scheme_restores_byte_identically_over_the_wire() {
    let data = pseudo_random(300_000, 23);
    let chunker = FastCdc::with_avg_size(1024).unwrap();
    let mle = Convergent::new();
    let stream =
        EncodedStream::encode("contract", &data, &chunker, &mle, ParConfig::sequential()).unwrap();

    for scheme in &roster() {
        let defended = stream.defend(scheme.as_ref(), &ctx());
        if let Some(budget) = scheme.blowup_budget() {
            assert!(
                defended.blowup() <= budget + 1e-9,
                "{}: wire blowup {} over budget {budget}",
                scheme.name(),
                defended.blowup()
            );
        }

        // One payload-mode server per scheme: upload the defended stream,
        // commit, restore it over the wire, and decode through the
        // client-side key store back to the original bytes.
        let server = Server::bind(ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        let mut client = Client::connect(addr, scheme.name()).unwrap();
        client.upload_defended(&defended).unwrap();
        client.commit("contract").unwrap();
        let restored = client.restore("contract").unwrap();
        assert_eq!(
            restored.backup.chunks,
            defended.backup.chunks,
            "{}: wire restore reordered the defended stream",
            scheme.name()
        );
        let decoded = defended.decode(&restored, &mle).unwrap();
        assert_eq!(
            decoded,
            data,
            "{}: restore through the key store diverged from the original",
            scheme.name()
        );
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}

#[test]
fn every_scheme_deterministic_under_fixed_seed_at_any_thread_count() {
    let (_aux, target) = fsl_pair();
    for scheme in &roster() {
        let first = scheme.encrypt_backup(&target, &ctx());
        let again = scheme.encrypt_backup(&target, &ctx());
        assert_eq!(
            first.backup.chunks,
            again.backup.chunks,
            "{}: two sequential runs under one context diverged",
            scheme.name()
        );
        assert_eq!(
            truth_pairs(&first),
            truth_pairs(&again),
            "{}",
            scheme.name()
        );
        for threads in [1usize, 2, 8] {
            let par = scheme.encrypt_backup_par(&target, &ctx(), ParConfig::with_threads(threads));
            assert_eq!(
                first.backup.chunks,
                par.backup.chunks,
                "{}: {threads}-thread run diverged from sequential",
                scheme.name()
            );
            assert_eq!(
                truth_pairs(&first),
                truth_pairs(&par),
                "{}: {threads}-thread ground truth diverged",
                scheme.name()
            );
        }
    }
}

/// Uploads `cipher` to a fresh loopback server in four commits and
/// returns the tap plus the reported `(logical, unique)` totals.
fn serve(cipher: &Backup) -> (TapView, (u64, u64)) {
    let server = Server::bind(ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let tap = server.tap_handle();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let mut client = Client::connect(addr, "pin").unwrap();
    for (i, range) in freqdedup::core::par::shard_ranges(cipher.chunks.len(), 4)
        .into_iter()
        .enumerate()
    {
        let epoch = Backup::from_chunks(format!("epoch-{i}"), cipher.chunks[range].to_vec());
        client.upload_backup(&epoch).unwrap();
        client.commit(&epoch.label).unwrap();
    }
    let stats = client.stats().unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
    (tap, (stats.logical_chunks, stats.unique_chunks))
}

#[test]
fn no_defense_pins_the_undefended_pipeline_through_the_tap() {
    let (aux, target) = fsl_pair();

    // Stream-level pin: the trait baseline emits the exact chunks the
    // pre-trait deterministic-MLE pipeline emits.
    let defended = NoDefense.encrypt_backup(&target, &ctx());
    let direct = DeterministicTraceEncryptor::new(SECRET).encrypt_backup(&target);
    assert_eq!(defended.backup.chunks, direct.backup.chunks);
    assert_eq!(truth_pairs(&defended), truth_pairs(&direct));

    // Route both through the real server and compare the provider view:
    // engine stats, the label-sorted tap series, the running streaming
    // state, and both-policy inference for every attack kind.
    let (tap_defended, stats_defended) = serve(&defended.backup);
    let (tap_direct, stats_direct) = serve(&direct.backup);
    assert_eq!(stats_defended, stats_direct, "server stats diverged");

    let series_defended = tap_defended.with_tap(|t| t.series("pin"));
    let series_direct = tap_direct.with_tap(|t| t.series("pin"));
    assert_eq!(series_defended.len(), series_direct.len());
    for (a, b) in series_defended.iter().zip(series_direct.iter()) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.chunks, b.chunks, "tap series diverged at {}", a.label);
    }
    let streaming_defended = tap_defended.with_tap(|t| t.streaming().clone());
    let streaming_direct = tap_direct.with_tap(|t| t.streaming().clone());
    assert_eq!(
        streaming_defended, streaming_direct,
        "running attack state diverged"
    );

    let params = LocalityParams::default();
    for kind in [
        AttackKind::Basic,
        AttackKind::Locality,
        AttackKind::Advanced,
    ] {
        let inf_defended =
            tap_defended.with_tap(|t| t.streaming_inference_both_policies(kind, &aux, &params));
        let inf_direct =
            tap_direct.with_tap(|t| t.streaming_inference_both_policies(kind, &aux, &params));
        for ((pa, a), (pb, b)) in inf_defended.iter().zip(inf_direct.iter()) {
            assert_eq!(pa, pb);
            assert_eq!(
                sorted_pairs(a),
                sorted_pairs(b),
                "{kind} inference diverged under {pa:?}"
            );
        }
    }
}

#[test]
fn tunable_schemes_honor_their_budgets() {
    let (_aux, target) = fsl_pair();
    let unique = target.unique_count() as f64;
    for budget in [1.0, 1.2, 1.5, 2.0, 4.0] {
        for scheme in [
            Box::new(TedScheme::new(budget).unwrap()) as Box<dyn DefenseScheme>,
            Box::new(PartitionSmoothing::new(8, budget).unwrap()),
        ] {
            let enc = scheme.encrypt_backup(&target, &ctx());
            let blowup = enc.backup.unique_count() as f64 / unique;
            assert!(
                blowup <= budget + 1e-9,
                "{} at budget {budget}: blowup {blowup}",
                scheme.name()
            );
            assert_eq!(enc.backup.len(), target.len());
        }
    }
}

#[test]
fn constructors_reject_bad_parameters_with_typed_errors() {
    assert!(matches!(
        TedScheme::new(0.5),
        Err(DefenseError::BudgetBelowOne { .. })
    ));
    assert!(matches!(
        TedScheme::new(f64::NAN),
        Err(DefenseError::BudgetBelowOne { .. })
    ));
    assert!(matches!(
        PartitionSmoothing::new(0, 1.5),
        Err(DefenseError::ZeroPartitions)
    ));
    assert!(matches!(
        PartitionSmoothing::new(33, 1.5),
        Err(DefenseError::TooManyPartitions { .. })
    ));
    assert!(matches!(
        PartitionSmoothing::new(8, 0.99),
        Err(DefenseError::BudgetBelowOne { .. })
    ));
    // The errors carry their parameters into the message.
    let err = TedScheme::new(0.5).unwrap_err();
    assert!(err.to_string().contains("0.5"), "{err}");
}
