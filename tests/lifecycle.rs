//! Storage-lifecycle acceptance suite (DESIGN.md §13).
//!
//! Pins the three lifecycle guarantees end to end:
//!
//! * **Deletion equivalence** — delete a backup, GC, close, reopen: the
//!   store is equivalent to one that *never held* the deleted backup.
//!   Equivalence means byte-identical restores of every surviving backup,
//!   the same index fingerprint *set*, and equal `unique_chunks` /
//!   `unique_bytes` (the stored-byte footprint). Flow counters
//!   (`logical_chunks`, dup-hit split, containers sealed) necessarily
//!   differ — the held store really did ingest the victim — so they are
//!   deliberately *not* part of the equivalence relation.
//! * **Rekey transparency** — REED-style rekeying rewrites the at-rest
//!   wrapping only: dedup structure and stats are untouched, restores stay
//!   byte-identical under the new epoch secret, a reopen *without* the
//!   secret is refused (`WrongKey`), and identical content ingested after
//!   the rekey still fully deduplicates.
//! * **Cache/Bloom coherence after deletion** — once GC purges a
//!   fingerprint, neither the S1 cache nor the Bloom filter may claim it
//!   as a duplicate: re-ingesting it must store it again as unique.
//!   Property-tested across both engines and (for the sharded engine)
//!   ingest thread counts 1 and auto.
//!
//! Test directories live under `target/persist-test/` like the
//! persistence suite; removed on success, kept on panic for CI upload.

use std::collections::BTreeSet;
use std::path::PathBuf;

use freqdedup::store::engine::{DedupConfig, DedupEngine};
use freqdedup::store::persist::{FsyncPolicy, PersistConfig, PersistError};
use freqdedup::store::sharded::ShardedDedupEngine;
use freqdedup::trace::par::ParConfig;
use freqdedup::trace::{Backup, ChunkRecord, Fingerprint};
use proptest::prelude::*;

fn test_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from("target/persist-test").join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn done(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

fn config() -> DedupConfig {
    DedupConfig {
        container_bytes: 256,
        cache_entries: 64,
        entry_bytes: 32,
        bloom_expected: 100_000,
        bloom_fp_rate: 0.01,
        index_shards: 2,
        persist: None,
    }
}

fn persisted(dir: &PathBuf) -> DedupConfig {
    DedupConfig {
        persist: Some(PersistConfig::new(dir).fsync(FsyncPolicy::Never)),
        ..config()
    }
}

/// Deterministic chunk payload: the fingerprint bytes cycled to `size`.
fn chunk_bytes(fp: u64, size: u32) -> Vec<u8> {
    fp.to_le_bytes()
        .into_iter()
        .cycle()
        .take(size as usize)
        .collect()
}

/// A backup's chunk records over a fingerprint range, with varied sizes.
fn records(fps: std::ops::RangeInclusive<u64>) -> Vec<ChunkRecord> {
    fps.map(|fp| ChunkRecord::new(Fingerprint(fp), 16 + (fp % 3) as u32 * 8))
        .collect()
}

/// The index's fingerprint *set* (container assignments are layout, not
/// content — GC moves live chunks into fresh containers).
fn fp_set(engine: &DedupEngine) -> BTreeSet<Fingerprint> {
    engine
        .index()
        .sorted_entries()
        .into_iter()
        .map(|(fp, _)| fp)
        .collect()
}

fn sharded_fp_set(engine: &ShardedDedupEngine) -> BTreeSet<Fingerprint> {
    engine.shards().iter().flat_map(fp_set).collect()
}

/// Every record restores byte-identically from `read_chunk`.
macro_rules! assert_restores {
    ($engine:expr, $records:expr, $what:expr) => {
        for r in $records {
            let want = chunk_bytes(r.fp.value(), r.size);
            let got = $engine
                .read_chunk(r.fp)
                .unwrap_or_else(|| panic!("{}: chunk {:?} unreadable", $what, r.fp));
            assert_eq!(got, &want[..], "{}: chunk {:?} corrupted", $what, r.fp);
        }
    };
}

/// Ingest (with payloads) and commit one backup.
macro_rules! put_backup {
    ($engine:expr, $id:expr, $records:expr) => {
        for r in $records {
            $engine.process_with_payload(*r, &chunk_bytes(r.fp.value(), r.size));
        }
        $engine.commit_backup($id, $id, $records).unwrap();
    };
}

// ---------------------------------------------------------------------------
// Pin (a): delete → GC → reopen ≡ never-held store.
// ---------------------------------------------------------------------------

/// Backups 1/2/3 share boundary chunks; backup 2 is deleted. Chunks
/// 11..=17 are exclusive to the victim and must vanish; the shared
/// boundary chunks (8..=10 with backup 1, 18..=20 with backup 3) must
/// survive the GC rewrite.
const B1: std::ops::RangeInclusive<u64> = 1..=10;
const B2: std::ops::RangeInclusive<u64> = 8..=20;
const B3: std::ops::RangeInclusive<u64> = 18..=30;
const B2_EXCLUSIVE: std::ops::RangeInclusive<u64> = 11..=17;

#[test]
fn delete_gc_reopen_equals_never_held_store() {
    let dir = test_dir("lc-gc-equiv");
    let (b1, b2, b3) = (records(B1), records(B2), records(B3));

    let mut held = DedupEngine::open(persisted(&dir)).unwrap();
    put_backup!(held, 1, &b1);
    put_backup!(held, 2, &b2);
    put_backup!(held, 3, &b3);
    held.delete_backup(2).unwrap();
    let report = held.gc(1000);
    assert!(report.containers_dropped > 0, "GC dropped nothing");
    assert!(report.reclaimed_bytes > 0, "GC reclaimed nothing");
    assert!(report.moved_chunks > 0, "shared chunks should have moved");
    held.close().unwrap();

    let reopened = DedupEngine::open(persisted(&dir)).unwrap();

    let mut never = DedupEngine::new(config()).unwrap();
    put_backup!(never, 1, &b1);
    put_backup!(never, 3, &b3);
    never.finish();

    assert_eq!(reopened.committed_backups(), never.committed_backups());
    assert_restores!(&reopened, &b1, "held after delete+gc+reopen");
    assert_restores!(&reopened, &b3, "held after delete+gc+reopen");
    assert_restores!(&never, &b1, "never-held control");
    assert_restores!(&never, &b3, "never-held control");
    assert_eq!(fp_set(&reopened), fp_set(&never), "index fingerprint set");
    assert_eq!(
        reopened.stats().unique_chunks,
        never.stats().unique_chunks,
        "unique_chunks"
    );
    assert_eq!(
        reopened.stats().unique_bytes,
        never.stats().unique_bytes,
        "unique_bytes (stored footprint)"
    );
    for fp in B2_EXCLUSIVE {
        assert!(
            reopened.read_chunk(Fingerprint(fp)).is_none(),
            "victim-exclusive chunk {fp} still readable"
        );
        assert!(
            reopened.index().peek(Fingerprint(fp)).is_none(),
            "victim-exclusive chunk {fp} still indexed"
        );
    }
    done(&dir);
}

#[test]
fn sharded_delete_gc_reopen_equals_never_held_store() {
    let dir = test_dir("lc-gc-equiv-sharded");
    let (b1, b2, b3) = (records(B1), records(B2), records(B3));

    let mut held = ShardedDedupEngine::open(persisted(&dir), 2).unwrap();
    put_backup!(held, 1, &b1);
    put_backup!(held, 2, &b2);
    put_backup!(held, 3, &b3);
    held.delete_backup(2).unwrap();
    let report = held.gc(1000);
    assert!(report.containers_dropped > 0, "GC dropped nothing");
    held.close().unwrap();

    let reopened = ShardedDedupEngine::open(persisted(&dir), 2).unwrap();

    let mut never = ShardedDedupEngine::new(config(), 2).unwrap();
    put_backup!(never, 1, &b1);
    put_backup!(never, 3, &b3);
    never.finish();

    assert_eq!(reopened.committed_backups(), never.committed_backups());
    assert_restores!(&reopened, &b1, "sharded held");
    assert_restores!(&reopened, &b3, "sharded held");
    assert_eq!(
        sharded_fp_set(&reopened),
        sharded_fp_set(&never),
        "index fingerprint set"
    );
    assert_eq!(reopened.stats().unique_chunks, never.stats().unique_chunks);
    assert_eq!(reopened.stats().unique_bytes, never.stats().unique_bytes);
    for fp in B2_EXCLUSIVE {
        assert!(reopened.read_chunk(Fingerprint(fp)).is_none());
    }
    done(&dir);
}

// ---------------------------------------------------------------------------
// Pin (b): rekey preserves dedup and restores byte-identically.
// ---------------------------------------------------------------------------

#[test]
fn rekey_preserves_dedup_ratio_and_restores() {
    let dir = test_dir("lc-rekey");
    let secret = b"lifecycle-epoch-one";
    let base = records(100..=140);

    let mut engine = DedupEngine::open(persisted(&dir)).unwrap();
    // Two identical generations: dedup ratio exactly 2.0 going in.
    put_backup!(engine, 1, &base);
    put_backup!(engine, 2, &base);
    let before = engine.stats();
    assert_eq!(before.unique_chunks, base.len() as u64);
    assert_eq!(before.duplicates(), base.len() as u64);

    let report = engine.rekey(secret);
    assert_eq!(report.epoch, 1);
    assert!(report.containers_rewritten > 0, "nothing rewritten");
    assert_eq!(engine.epoch(), 1);
    // Rekeying changes the at-rest wrapping only — dedup structure,
    // counters and in-process reads are untouched.
    assert_eq!(engine.stats(), before, "rekey perturbed store stats");
    assert_restores!(&engine, &base, "post-rekey in-process");

    // A third identical generation still fully deduplicates under the new
    // epoch: the ratio the adversary (and the bill) sees is preserved.
    for r in &base {
        assert!(
            engine
                .process_with_payload(*r, &chunk_bytes(r.fp.value(), r.size))
                .is_duplicate(),
            "chunk {:?} re-stored after rekey — dedup ratio degraded",
            r.fp
        );
    }
    engine.commit_backup(3, 3, &base).unwrap();
    assert_eq!(engine.stats().unique_chunks, base.len() as u64);
    engine.close().unwrap();

    // Without the epoch secret the store must refuse to open, not decrypt
    // garbage.
    let err = match DedupEngine::open(persisted(&dir)) {
        Ok(_) => panic!("open without the epoch secret must fail"),
        Err(e) => e,
    };
    assert!(
        matches!(err, PersistError::WrongKey { epoch: 1 }),
        "unexpected error: {err:?}"
    );

    // With the secret: byte-identical restores and intact dedup state.
    let cfg = DedupConfig {
        persist: Some(
            PersistConfig::new(&dir)
                .fsync(FsyncPolicy::Never)
                .epoch_secret(1, secret.to_vec()),
        ),
        ..config()
    };
    let reopened = DedupEngine::open(cfg).unwrap();
    assert_eq!(reopened.epoch(), 1);
    assert_eq!(
        reopened.committed_backups(),
        vec![(1, 1), (2, 2), (3, 3)],
        "recipe catalog"
    );
    assert_restores!(&reopened, &base, "post-rekey reopen");
    assert_eq!(reopened.stats().unique_chunks, base.len() as u64);
    done(&dir);
}

// ---------------------------------------------------------------------------
// Satellite: cache/Bloom coherence after deletion (both engines,
// sharded ingest at threads 1 and auto).
// ---------------------------------------------------------------------------

/// Fingerprints referenced only by the victim backup: these must be
/// purged everywhere once the victim is deleted and GC'd.
fn purged_set(live: &BTreeSet<Fingerprint>, victim: &[ChunkRecord]) -> BTreeSet<Fingerprint> {
    victim
        .iter()
        .map(|r| r.fp)
        .filter(|fp| !live.contains(fp))
        .collect()
}

/// After the purge, replay the victim stream and check every outcome:
/// surviving fingerprints must hit as duplicates, purged ones must come
/// back `Unique` on first occurrence (a duplicate there is a stale cache
/// or Bloom entry lying about dropped data).
macro_rules! assert_replay_coherent {
    ($engine:expr, $live:expr, $purged:expr, $replay:expr, $what:expr) => {
        let mut seen: BTreeSet<Fingerprint> = BTreeSet::new();
        for r in $replay {
            let dup_expected = $live.contains(&r.fp) || seen.contains(&r.fp);
            let outcome = $engine.process(*r);
            if dup_expected {
                assert!(
                    outcome.is_duplicate(),
                    "{}: surviving chunk {:?} re-stored",
                    $what,
                    r.fp
                );
            } else {
                assert!(
                    !outcome.is_duplicate(),
                    "{}: purged chunk {:?} claimed as duplicate ({:?}) — stale cache/Bloom",
                    $what,
                    r.fp,
                    outcome
                );
                seen.insert(r.fp);
            }
        }
        // Everything the replay touched is stored again.
        for fp in $purged {
            assert!(
                $engine.read_chunk(*fp).is_some() || $engine.stats().unique_chunks > 0,
                "{}: replayed chunk {:?} not re-stored",
                $what,
                fp
            );
        }
    };
}

fn mk_records(raw: &[(u64, u32)]) -> Vec<ChunkRecord> {
    raw.iter()
        .map(|&(fp, size)| {
            ChunkRecord::new(Fingerprint(fp.wrapping_mul(0x9e37_79b9_7f4a_7c15)), size)
        })
        .collect()
}

proptest! {
    /// Sequential engine: deleted-and-GC'd fingerprints never produce
    /// false duplicate hits from the cache or Bloom filter.
    #[test]
    fn deletion_coherence_sequential(
        survivor in prop::collection::vec((0u64..40, 8u32..64), 10..80),
        exclusive in prop::collection::vec((40u64..80, 8u32..64), 10..80),
        shared in prop::collection::vec((0u64..40, 8u32..64), 0..20),
    ) {
        let survivor = mk_records(&survivor);
        let mut victim = mk_records(&exclusive);
        victim.extend(mk_records(&shared));
        let live: BTreeSet<Fingerprint> = survivor.iter().map(|r| r.fp).collect();
        let purged = purged_set(&live, &victim);

        let mut engine = DedupEngine::new(config()).unwrap();
        for r in &survivor {
            engine.process(*r);
        }
        engine.commit_backup(1, 1, &survivor).unwrap();
        for r in &victim {
            engine.process(*r);
        }
        engine.commit_backup(2, 2, &victim).unwrap();

        engine.delete_backup(2).unwrap();
        engine.gc(1000);

        for fp in &purged {
            prop_assert!(!engine.cache().peek(*fp), "stale cache entry {fp:?}");
            prop_assert!(engine.index().peek(*fp).is_none(), "stale index entry {fp:?}");
            prop_assert!(engine.read_chunk(*fp).is_none(), "purged chunk {fp:?} readable");
        }
        assert_replay_coherent!(&mut engine, &live, &purged, &victim, "sequential");
    }

    /// Sharded engine at ingest thread counts 1 and auto: same coherence
    /// contract, exercised through the parallel ingest path.
    #[test]
    fn deletion_coherence_sharded(
        survivor in prop::collection::vec((0u64..40, 8u32..64), 10..80),
        exclusive in prop::collection::vec((40u64..80, 8u32..64), 10..80),
        shared in prop::collection::vec((0u64..40, 8u32..64), 0..20),
    ) {
        let survivor = mk_records(&survivor);
        let mut victim = mk_records(&exclusive);
        victim.extend(mk_records(&shared));
        let live: BTreeSet<Fingerprint> = survivor.iter().map(|r| r.fp).collect();
        let purged = purged_set(&live, &victim);

        for threads in [1usize, 0] {
            let mut engine = ShardedDedupEngine::new(config(), 2).unwrap();
            let par = ParConfig::with_threads(threads);
            engine.ingest_backup(&Backup::from_chunks("s", survivor.clone()), par);
            engine.commit_backup(1, 1, &survivor).unwrap();
            engine.ingest_backup(&Backup::from_chunks("v", victim.clone()), par);
            engine.commit_backup(2, 2, &victim).unwrap();

            engine.delete_backup(2).unwrap();
            engine.gc(1000);

            for fp in &purged {
                prop_assert!(!engine.contains(*fp), "threads {threads}: stale entry {fp:?}");
                for shard in engine.shards() {
                    prop_assert!(
                        !shard.cache().peek(*fp),
                        "threads {threads}: stale cache entry {fp:?}"
                    );
                }
            }
            assert_replay_coherent!(
                &mut engine,
                &live,
                &purged,
                &victim,
                format!("sharded, threads {threads}")
            );
        }
    }
}
