//! Property-based integration tests over the trace, chunking and defense
//! layers.

use freqdedup::chunking::cdc::{chunk_spans, CdcParams};
use freqdedup::chunking::segment::{segment_spans, SegmentParams};
use freqdedup::core::defense::MinHashScrambleScheme;
use freqdedup::mle::trace_enc::DeterministicTraceEncryptor;
use freqdedup::trace::{io, Backup, BackupSeries, ChunkRecord, Fingerprint};
use proptest::prelude::*;

fn arb_backup() -> impl Strategy<Value = Backup> {
    prop::collection::vec((any::<u64>(), 1u32..100_000), 0..200).prop_map(|chunks| {
        Backup::from_chunks(
            "prop",
            chunks
                .into_iter()
                .map(|(fp, size)| ChunkRecord::new(fp % 512, size))
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn trace_io_round_trips(backups in prop::collection::vec(arb_backup(), 0..4)) {
        let mut series = BackupSeries::new("prop");
        for b in backups {
            series.push(b);
        }
        let bytes = io::to_bytes(&series);
        let back = io::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, series);
    }

    #[test]
    fn cdc_partitions_any_input(data in prop::collection::vec(any::<u8>(), 0..50_000)) {
        let params = CdcParams::with_avg_size(1024).expect("valid parameters");
        let spans = chunk_spans(&data, &params);
        let mut pos = 0;
        for s in &spans {
            prop_assert_eq!(s.start, pos);
            prop_assert!(s.end > s.start);
            pos = s.end;
        }
        prop_assert_eq!(pos, data.len());
    }

    #[test]
    fn segmentation_partitions_any_stream(backup in arb_backup()) {
        let params = SegmentParams::derived(1_000, 10_000, 100_000, 64);
        let spans = segment_spans(&backup.chunks, &params);
        let covered: usize = spans.iter().map(|s| s.end - s.start).sum();
        prop_assert_eq!(covered, backup.len());
    }

    #[test]
    fn deterministic_encryption_is_consistent(backup in arb_backup()) {
        let enc = DeterministicTraceEncryptor::new(b"prop-secret");
        let a = enc.encrypt_backup(&backup);
        let b = enc.encrypt_backup(&backup);
        prop_assert_eq!(&a.backup, &b.backup);
        // Truth inverts every output chunk.
        for (c, p) in a.backup.iter().zip(backup.iter()) {
            prop_assert_eq!(a.truth.plain_of(c.fp), Some(p.fp));
        }
    }

    #[test]
    fn combined_defense_truth_is_complete(backup in arb_backup()) {
        let scheme = MinHashScrambleScheme::combined(
            SegmentParams::derived(1_000, 10_000, 100_000, 64),
            9,
        );
        let enc = scheme.encrypt_backup(&backup);
        prop_assert_eq!(enc.backup.len(), backup.len());
        prop_assert_eq!(enc.backup.logical_bytes(), backup.logical_bytes());
        let plain_set = backup.unique_fingerprints();
        for rec in &enc.backup {
            let m = enc.truth.plain_of(rec.fp);
            prop_assert!(m.is_some());
            prop_assert!(plain_set.contains(&m.unwrap()));
        }
    }

    #[test]
    fn scramble_never_loses_chunks(backup in arb_backup()) {
        let scheme = MinHashScrambleScheme::combined(
            SegmentParams::derived(1_000, 10_000, 100_000, 64),
            11,
        );
        let enc = scheme.encrypt_backup(&backup);
        // Multiset of decoded plaintext fingerprints == original multiset.
        let mut decoded: Vec<Fingerprint> = enc
            .backup
            .iter()
            .map(|c| enc.truth.plain_of(c.fp).unwrap())
            .collect();
        let mut original: Vec<Fingerprint> = backup.iter().map(|c| c.fp).collect();
        decoded.sort_unstable();
        original.sort_unstable();
        prop_assert_eq!(decoded, original);
    }
}
