//! Workspace smoke test: every crate re-exported by the `freqdedup`
//! umbrella must resolve and expose its headline type or function.
//!
//! One compile-time use per re-export keeps the umbrella honest: if a
//! crate is dropped from the root manifest or a re-export is renamed,
//! this test stops compiling.

use freqdedup::chunking::cdc::CdcParams;
use freqdedup::core::counting::ChunkStats;
use freqdedup::crypto::sha256;
use freqdedup::datasets::fsl::FslConfig;
use freqdedup::mle::convergent::Convergent;
use freqdedup::server::proto::{Message, WIRE_VERSION};
use freqdedup::store::engine::{DedupConfig, DedupEngine};
use freqdedup::trace::{Backup, ChunkRecord};

#[test]
fn umbrella_reexports_resolve() {
    // trace
    let backup = Backup::from_chunks("smoke", vec![ChunkRecord::new(1, 8); 4]);
    assert_eq!(backup.len(), 4);

    // crypto
    assert_eq!(sha256::digest(b"abc").len(), 32);

    // chunking
    assert!(CdcParams::with_avg_size(1024)
        .expect("valid")
        .validate()
        .is_ok());

    // core
    let stats = ChunkStats::frequencies_only(&backup);
    assert_eq!(stats.freq.len(), 1);

    // mle
    let (_, ciphertext) = freqdedup::mle::Mle::encrypt(&Convergent::new(), b"chunk").unwrap();
    assert!(!ciphertext.is_empty());

    // datasets
    assert!(FslConfig::scaled(100).validate().is_ok());

    // store
    let engine = DedupEngine::new(DedupConfig::paper(4 * 1024 * 1024, 1_000)).unwrap();
    assert_eq!(engine.stats().logical_chunks, 0);

    // server
    let hello = Message::Hello {
        version: WIRE_VERSION,
        client: "smoke".into(),
    };
    assert_eq!(Message::decode(&hello.encode()).unwrap(), hello);
}
