//! Cross-crate integration: real bytes through the full encrypted-
//! deduplication stack — chunking → MLE → DDFS-style store → sealed recipes
//! → restore.

use freqdedup::chunking::cdc::{chunk_spans, CdcParams};
use freqdedup::chunking::content_fingerprint;
use freqdedup::mle::recipes::{open, seal, FileRecipe, KeyRecipe};
use freqdedup::mle::server_aided::{KeyServer, ServerAidedMle};
use freqdedup::mle::{convergent::Convergent, Mle};
use freqdedup::store::engine::{DedupConfig, DedupEngine};
use freqdedup::trace::ChunkRecord;

fn sample_file(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn store_and_restore(mle: &impl Mle, file: &[u8]) -> Vec<u8> {
    let cdc = CdcParams::with_avg_size(2048).expect("valid parameters");
    let mut engine = DedupEngine::new(DedupConfig::paper(4 * 1024 * 1024, 100_000)).unwrap();
    let mut file_recipe = FileRecipe::new("f");
    let mut key_recipe = KeyRecipe::new();
    for span in chunk_spans(file, &cdc) {
        let plain = &file[span];
        let (key, ct) = mle.encrypt(plain).expect("encrypt");
        let record = ChunkRecord::new(content_fingerprint(&ct), ct.len() as u32);
        engine.process_with_payload(record, &ct);
        file_recipe.chunks.push(record);
        key_recipe.keys.push(key);
    }
    engine.finish();

    // Seal and re-open the recipes under a user key (metadata protection).
    let user_key = [9u8; 32];
    let fr = FileRecipe::from_bytes(
        &open(
            &user_key,
            &seal(&user_key, &[1; 16], &file_recipe.to_bytes()),
        )
        .unwrap(),
    )
    .unwrap();
    let kr = KeyRecipe::from_bytes(
        &open(
            &user_key,
            &seal(&user_key, &[2; 16], &key_recipe.to_bytes()),
        )
        .unwrap(),
    )
    .unwrap();

    let mut restored = Vec::new();
    for (record, key) in fr.chunks.iter().zip(&kr.keys) {
        let ct = engine.read_chunk(record.fp).expect("stored chunk");
        restored.extend_from_slice(&mle.decrypt_with_key(key, ct));
    }
    restored
}

#[test]
fn convergent_round_trip_through_store() {
    let file = sample_file(200_000, 7);
    assert_eq!(store_and_restore(&Convergent::new(), &file), file);
}

#[test]
fn server_aided_round_trip_through_store() {
    let file = sample_file(150_000, 21);
    let mle = ServerAidedMle::new(KeyServer::new([3u8; 32]));
    assert_eq!(store_and_restore(&mle, &file), file);
}

#[test]
fn duplicate_files_deduplicate_under_mle() {
    // Two users store the same file: the second ingest stores nothing new.
    let file = sample_file(120_000, 5);
    let cdc = CdcParams::with_avg_size(2048).expect("valid parameters");
    let mle = Convergent::new();
    let mut engine = DedupEngine::new(DedupConfig::paper(4 * 1024 * 1024, 100_000)).unwrap();
    for _user in 0..2 {
        for span in chunk_spans(&file, &cdc) {
            let (_, ct) = mle.encrypt(&file[span]).unwrap();
            let record = ChunkRecord::new(content_fingerprint(&ct), ct.len() as u32);
            engine.process_with_payload(record, &ct);
        }
    }
    engine.finish();
    let stats = engine.stats();
    assert_eq!(stats.unique_chunks * 2, stats.logical_chunks);
    assert!((stats.dedup_ratio() - 2.0).abs() < 1e-9);
}

#[test]
fn shifted_file_mostly_deduplicates() {
    // CDC robustness end to end: prepend bytes, most chunks still dedup.
    let file = sample_file(300_000, 11);
    let mut shifted = vec![0u8; 13];
    shifted.extend_from_slice(&file);

    let cdc = CdcParams::with_avg_size(2048).expect("valid parameters");
    let mle = Convergent::new();
    let mut engine = DedupEngine::new(DedupConfig::paper(4 * 1024 * 1024, 100_000)).unwrap();
    for data in [&file, &shifted] {
        for span in chunk_spans(data, &cdc) {
            let (_, ct) = mle.encrypt(&data[span]).unwrap();
            let record = ChunkRecord::new(content_fingerprint(&ct), ct.len() as u32);
            engine.process_with_payload(record, &ct);
        }
    }
    engine.finish();
    let stats = engine.stats();
    assert!(
        stats.dedup_ratio() > 1.7,
        "dedup ratio {} after a 13-byte shift",
        stats.dedup_ratio()
    );
}
