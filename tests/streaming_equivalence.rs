//! Batch-equivalence of the incremental attack engine.
//!
//! The streaming layer (`freqdedup::core::streaming`) promises that a
//! running [`IncrementalStats`] — frequencies, both segmented CSR
//! neighbour tables, and the interner, folded one [`StatsDelta`] per
//! committed backup — is **bit-identical** to a from-scratch batch
//! recompute of the same tape at every commit point: identical COUNT
//! structures (`to_dense` equals [`DenseStats::full_series_with_policy`]),
//! identical top-k frequency ranks, and identical inference sets from the
//! attacks crawling the segmented tables directly. These property tests
//! pin that promise on randomized backup sequences for
//! `threads ∈ {1, 2, 8}`, both [`TiePolicy`] variants, both attack modes
//! (ciphertext-only and known-plaintext), and arbitrary interleaved
//! compaction points (compaction is a pure representation change and must
//! be invisible in every observable).
//!
//! Alongside the streaming properties, the suite pins the delta algebra
//! itself — [`StatsDelta::merged`] is a commutative, associative monoid
//! action on the state — and the shared-build guarantee of
//! [`attacks::run_ciphertext_only_both_policies`]: one interning pass
//! serving both tie policies must equal two independent single-policy
//! runs (a regression test — the pre-streaming implementation interned
//! once *per policy*).

use freqdedup::core::attacks::locality::{LocalityAttack, LocalityParams};
use freqdedup::core::attacks::{self, AttackKind};
use freqdedup::core::counting::TiePolicy;
use freqdedup::core::dense::StatsView;
use freqdedup::core::freq_analysis::top_k_dense;
use freqdedup::core::{ChunkInterner, DenseStats, IncrementalStats, Inference, StatsDelta};
use freqdedup::trace::{Backup, ChunkRecord, Fingerprint};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];
const POLICIES: [TiePolicy; 2] = [TiePolicy::StreamOrder, TiePolicy::KeyOrder];

/// Builds a backup whose chunk sizes vary with the fingerprint, so the
/// size-classified (advanced) attack sees several block classes.
fn backup(label: &str, fps: &[u64]) -> Backup {
    Backup::from_chunks(
        label,
        fps.iter()
            .map(|&f| ChunkRecord::new(f, 64 + ((f % 5) * 16) as u32))
            .collect(),
    )
}

/// A random backup tape over a small fingerprint domain: duplicates, ties
/// and cross-backup chunk reuse are the norm, so a single perturbed count,
/// tie-break order or lost adjacency edge swings the comparison.
fn tape_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(1u64..60, 0..80), 0..8)
}

fn build_tape(fps: &[Vec<u64>]) -> Vec<Backup> {
    fps.iter()
        .enumerate()
        .map(|(i, f)| backup(&format!("b{i:02}"), f))
        .collect()
}

fn sorted_pairs(inf: &Inference) -> Vec<(Fingerprint, Fingerprint)> {
    let mut v: Vec<_> = inf.iter().collect();
    v.sort_unstable();
    v
}

proptest! {
    /// Streaming COUNT + CSR + top-k equal the batch recompute at **every
    /// prefix** of the tape, under both tie policies, with compaction
    /// interleaved at arbitrary commit points.
    #[test]
    fn count_csr_and_topk_bit_identical_at_every_prefix(
        fps in tape_strategy(),
        compact_mask in prop::collection::vec(any::<bool>(), 8..9),
        k in 1usize..20,
    ) {
        let tape = build_tape(&fps);
        for policy in POLICIES {
            let mut inc = IncrementalStats::new(policy);
            for (i, b) in tape.iter().enumerate() {
                inc.commit(b);
                if compact_mask[i] {
                    inc.compact();
                }
                let batch = DenseStats::full_series_with_policy(&tape[..=i], policy);
                prop_assert_eq!(
                    &inc.to_dense(), &batch,
                    "prefix {} policy {:?} compacted {}", i, policy, compact_mask[i]
                );
                // Top-k frequency ranking straight off the streaming view.
                let inc_top = top_k_dense(&StatsView::global_rows(&inc), k, inc.fingerprints());
                let batch_top = top_k_dense(&batch.global_rows(), k, batch.interner.fingerprints());
                prop_assert_eq!(inc_top, batch_top, "top-{} prefix {} policy {:?}", k, i, policy);
            }
        }
    }

    /// Known-plaintext mode: leaked seeds crawled over the streaming
    /// segmented tables expand to the same inference set as over a batch
    /// series recompute, at every thread count and both tie policies.
    #[test]
    fn known_plaintext_inference_thread_and_policy_invariant(
        fps in tape_strategy(),
        leak_every in 1usize..10,
    ) {
        let tape = build_tape(&fps);
        // Self-referential aux: the tape's own stream is the plaintext
        // side, so leaked identity pairs seed real crawls.
        let all: Vec<ChunkRecord> =
            tape.iter().flat_map(|b| b.chunks.iter().copied()).collect();
        let aux = Backup::from_chunks("aux", all);
        let leaked: Vec<(Fingerprint, Fingerprint)> = aux
            .chunks
            .iter()
            .step_by(leak_every)
            .map(|c| (c.fp, c.fp))
            .collect();
        for policy in POLICIES {
            let mut inc = IncrementalStats::new(policy);
            for b in &tape {
                inc.commit(b);
            }
            let sc = DenseStats::full_series_with_policy(&tape, policy);
            for kind in [AttackKind::Locality, AttackKind::Advanced] {
                for t in THREADS {
                    let params = LocalityParams::new(1, 5, 1000)
                        .tie_policy(policy)
                        .threads(t);
                    let streamed = attacks::run_known_plaintext_streaming(
                        kind, &inc, &aux, &leaked, &params,
                    );
                    let sm = DenseStats::full_with_policy(&aux, policy);
                    let batch = LocalityAttack::new(
                        params.size_aware(kind == AttackKind::Advanced),
                    )
                    .run_known_plaintext_with_stats(&sc, &sm, &leaked);
                    prop_assert_eq!(
                        sorted_pairs(&streamed),
                        sorted_pairs(&batch),
                        "{} threads {} policy {:?}",
                        kind, t, policy
                    );
                }
            }
        }
    }

    /// `run_ciphertext_only_both_policies` — one shared interning/count
    /// build serving both tie policies — equals two independent
    /// single-policy runs for every attack kind. Regression test: the
    /// pre-streaming implementation rebuilt the interner once per policy,
    /// so a drift between the shared and per-policy builds would surface
    /// here.
    #[test]
    fn both_policies_shared_build_matches_single_policy_runs(
        cipher_fps in prop::collection::vec(1u64..60, 1..200),
        aux_fps in prop::collection::vec(1u64..60, 1..200),
    ) {
        let cipher = backup("cipher", &cipher_fps);
        let aux = backup("aux", &aux_fps);
        for kind in AttackKind::ALL {
            let params = LocalityParams::new(2, 3, 1000);
            let both = attacks::run_ciphertext_only_both_policies(kind, &cipher, &aux, &params);
            prop_assert_eq!(both[0].0, TiePolicy::StreamOrder);
            prop_assert_eq!(both[1].0, TiePolicy::KeyOrder);
            for (policy, inference) in both {
                let single = attacks::run_ciphertext_only(
                    kind, &cipher, &aux, &params.clone().tie_policy(policy),
                );
                prop_assert_eq!(
                    sorted_pairs(&inference),
                    sorted_pairs(&single),
                    "{} policy {:?}", kind, policy
                );
            }
        }
    }

    /// Delta merge is commutative and associative, and a merged delta
    /// applied once equals the constituent deltas applied one at a time —
    /// the algebra that makes batching and re-sharding of commits safe.
    #[test]
    fn delta_merge_is_a_commutative_monoid_action(fps in tape_strategy()) {
        for policy in POLICIES {
            let tape = build_tape(&fps);
            // One shared interner, exactly as a sequential committer would
            // intern the tape; offsets track the logical stream position.
            let mut interner = ChunkInterner::new();
            let mut offset = 0u64;
            let deltas: Vec<StatsDelta> = tape
                .iter()
                .map(|b| {
                    let d = StatsDelta::build(&mut interner, b, policy, offset);
                    offset += b.len() as u64;
                    d
                })
                .collect();
            if deltas.len() >= 2 {
                let (a, b) = (&deltas[0], &deltas[1]);
                prop_assert_eq!(a.merged(b), b.merged(a), "commutativity {:?}", policy);
            }
            if deltas.len() >= 3 {
                let (a, b, c) = (&deltas[0], &deltas[1], &deltas[2]);
                prop_assert_eq!(
                    a.merged(b).merged(c),
                    a.merged(&b.merged(c)),
                    "associativity {:?}", policy
                );
            }
            // Folding all deltas into one and applying it to an empty
            // state equals committing them one by one.
            if let Some(first) = deltas.first() {
                let folded = deltas[1..]
                    .iter()
                    .fold(first.clone(), |acc, d| acc.merged(d));
                let mut merged_state = IncrementalStats::with_interner(policy, interner.clone());
                merged_state.apply(folded);
                let mut stepped = IncrementalStats::new(policy);
                for b in &tape {
                    stepped.commit(b);
                }
                prop_assert_eq!(
                    merged_state.to_dense(),
                    stepped.to_dense(),
                    "fold-vs-step {:?}", policy
                );
            }
        }
    }
}

proptest! {
    /// Ciphertext-only inference from the streaming state equals the batch
    /// series recompute after every commit — all three attack kinds, both
    /// tie policies, every thread count, compaction interleaved.
    #[test]
    fn ciphertext_only_inference_thread_and_policy_invariant(
        fps in tape_strategy(),
        aux_fps in prop::collection::vec(1u64..60, 1..120),
        compact_mask in prop::collection::vec(any::<bool>(), 8..9),
    ) {
        let tape = build_tape(&fps);
        let aux = backup("aux", &aux_fps);
        for policy in POLICIES {
            let mut inc = IncrementalStats::new(policy);
            for (i, b) in tape.iter().enumerate() {
                inc.commit(b);
                if compact_mask[i] {
                    inc.compact();
                }
                for kind in AttackKind::ALL {
                    for t in THREADS {
                        let params = LocalityParams::new(2, 3, 1000)
                            .tie_policy(policy)
                            .threads(t);
                        let streamed =
                            attacks::run_ciphertext_only_streaming(kind, &inc, &aux, &params);
                        let batch = attacks::run_ciphertext_only_series(
                            kind, &tape[..=i], &aux, &params,
                        );
                        prop_assert_eq!(
                            sorted_pairs(&streamed),
                            sorted_pairs(&batch),
                            "{} prefix {} threads {} policy {:?}",
                            kind, i, t, policy
                        );
                    }
                }
            }
        }
    }
}

/// Empty backup: the delta is empty and committing it changes nothing but
/// the commit counter.
#[test]
fn empty_backup_delta_is_identity() {
    for policy in POLICIES {
        let mut inc = IncrementalStats::new(policy);
        inc.commit(&backup("seed", &[1, 2, 1, 3]));
        let before = inc.to_dense();
        let mut probe = inc.clone();
        let delta = probe.build_delta(&backup("empty", &[]));
        assert!(delta.is_empty(), "empty backup must build an empty delta");
        let receipt = inc.commit(&backup("empty", &[]));
        assert_eq!(receipt.chunks, 0);
        assert_eq!(receipt.new_unique, 0);
        assert_eq!(inc.to_dense(), before, "empty commit must be a no-op");
        assert_eq!(inc.commits(), 2, "but it still counts as a commit");
    }
}

/// Duplicate-only backup: one fingerprint repeated — frequency is the run
/// length and the only adjacency edge is the self-edge.
#[test]
fn duplicate_only_backup_matches_batch() {
    for policy in POLICIES {
        let tape = vec![backup("dups", &[7; 12])];
        let mut inc = IncrementalStats::new(policy);
        inc.commit(&tape[0]);
        assert_eq!(
            inc.to_dense(),
            DenseStats::full_series_with_policy(&tape, policy)
        );
        assert_eq!(inc.freq(), &[12]);
        let mut row = Vec::new();
        let left: Vec<_> = StatsView::left_row(&inc, 0, &mut row).to_vec();
        assert_eq!(left.len(), 1, "self-edge only");
        assert_eq!((left[0].id, left[0].count), (0, 11));
    }
}

/// Single-chunk backup: frequency one, no adjacency events at all.
#[test]
fn single_chunk_backup_matches_batch() {
    for policy in POLICIES {
        let tape = vec![backup("one", &[42])];
        let mut inc = IncrementalStats::new(policy);
        inc.commit(&tape[0]);
        assert_eq!(
            inc.to_dense(),
            DenseStats::full_series_with_policy(&tape, policy)
        );
        assert_eq!(inc.freq(), &[1]);
        assert_eq!(inc.left().num_entries() + inc.right().num_entries(), 0);
    }
}

/// A delta merged into an empty state reproduces a fresh batch build of
/// the same backup.
#[test]
fn delta_merged_into_empty_state_equals_batch() {
    for policy in POLICIES {
        let tape = vec![backup("a", &[1, 2, 1, 2, 3]), backup("b", &[3, 1, 3, 4])];
        let mut interner = ChunkInterner::new();
        let d0 = StatsDelta::build(&mut interner, &tape[0], policy, 0);
        let d1 = StatsDelta::build(&mut interner, &tape[1], policy, tape[0].len() as u64);
        let mut inc = IncrementalStats::with_interner(policy, interner);
        inc.apply(d0.merged(&d1));
        assert_eq!(
            inc.to_dense(),
            DenseStats::full_series_with_policy(&tape, policy)
        );
        assert_eq!(inc.logical_chunks(), 9);
    }
}

/// Commit-boundary adjacency: chunks that touch only across a commit
/// boundary must NOT be neighbours — the streaming path appends per-epoch
/// segments and a leaked cross-boundary edge is the classic bug.
#[test]
fn no_adjacency_across_commit_boundaries() {
    for policy in POLICIES {
        let tape = vec![backup("a", &[1, 2]), backup("b", &[3, 4])];
        let mut inc = IncrementalStats::new(policy);
        for b in &tape {
            inc.commit(b);
        }
        let id2 = inc.interner().get(Fingerprint(2)).unwrap();
        let id3 = inc.interner().get(Fingerprint(3)).unwrap();
        let mut row = Vec::new();
        assert!(
            !StatsView::right_row(&inc, id2, &mut row)
                .iter()
                .any(|e| e.id == id3),
            "2 -> 3 spans the commit boundary and must not be an edge"
        );
        assert_eq!(
            inc.to_dense(),
            DenseStats::full_series_with_policy(&tape, policy)
        );
    }
}
