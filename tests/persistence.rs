//! Durable-store round-trip and crash-consistency suite.
//!
//! The contract under test (DESIGN.md §7):
//!
//! * **Clean round trip** — ingest → `close()` → `open()` resumes
//!   *bit-identically*: `StoreStats`, metadata-access counters, index
//!   contents, cache recency and all subsequent ingest outcomes equal
//!   those of an engine that never restarted. Holds for [`DedupEngine`]
//!   and [`ShardedDedupEngine`] at any worker thread count.
//! * **Torn tail** — truncating the last container log mid-record loses
//!   only that container: recovery rolls back to the last consistent
//!   sealed state and the store keeps working.
//!
//! Test directories live under `target/persist-test/` so CI can upload
//! them as an artifact when a test fails; they are removed on success.

use std::path::PathBuf;

use freqdedup::datasets::fsl::{generate, FslConfig};
use freqdedup::store::container::ContainerId;
use freqdedup::store::engine::{DedupConfig, DedupEngine};
use freqdedup::store::log::container_path;
use freqdedup::store::persist::{FsyncPolicy, PersistConfig, PersistError};
use freqdedup::store::sharded::ShardedDedupEngine;
use freqdedup::trace::par::ParConfig;
use freqdedup::trace::{Backup, ChunkRecord, Fingerprint};
use proptest::prelude::*;

/// A fresh directory under `target/persist-test/` (kept on panic so CI can
/// upload it, removed by [`done`] on success).
fn test_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from("target/persist-test").join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn done(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

fn config() -> DedupConfig {
    DedupConfig {
        container_bytes: 256,
        cache_entries: 64,
        entry_bytes: 32,
        bloom_expected: 100_000,
        bloom_fp_rate: 0.01,
        index_shards: 2,
        persist: None,
    }
}

fn persisted(dir: &PathBuf) -> DedupConfig {
    DedupConfig {
        persist: Some(PersistConfig::new(dir).fsync(FsyncPolicy::Never)),
        ..config()
    }
}

/// Full engine-state equality check between a recovered engine and its
/// never-restarted twin.
fn assert_engines_identical(reopened: &DedupEngine, live: &DedupEngine, what: &str) {
    assert_eq!(reopened.stats(), live.stats(), "{what}: stats");
    assert_eq!(
        reopened.metadata_access(),
        live.metadata_access(),
        "{what}: metadata access"
    );
    assert_eq!(reopened.loading_ops(), live.loading_ops(), "{what}: loads");
    assert_eq!(
        reopened.index().sorted_entries(),
        live.index().sorted_entries(),
        "{what}: index contents"
    );
    assert_eq!(
        reopened.cache().lru_to_mru(),
        live.cache().lru_to_mru(),
        "{what}: cache recency"
    );
    assert_eq!(
        reopened.containers().sealed_count(),
        live.containers().sealed_count(),
        "{what}: container count"
    );
    for id in 0..live.containers().sealed_count() {
        let cid = ContainerId(id as u32);
        let a = reopened.containers().get(cid).unwrap();
        let b = live.containers().get(cid).unwrap();
        assert_eq!(a.fingerprints, b.fingerprints, "{what}: container {id}");
        assert_eq!(a.chunk_sizes(), b.chunk_sizes(), "{what}: container {id}");
    }
}

proptest! {
    /// The acceptance property: ingest N backups → drop the engine →
    /// `open()` → state and all subsequent ingest results are
    /// bit-identical to a never-restarted engine.
    #[test]
    fn dedup_engine_round_trip_bit_identical(
        stream in prop::collection::vec((0u64..160, 8u32..64), 50..250),
        extra in prop::collection::vec((0u64..160, 8u32..64), 20..100),
    ) {
        let dir = test_dir("prop-engine");
        let records: Vec<ChunkRecord> = stream
            .iter()
            .map(|&(fp, size)| ChunkRecord::new(fp.wrapping_mul(0x9e37_79b9_7f4a_7c15), size))
            .collect();
        let extra: Vec<ChunkRecord> = extra
            .iter()
            .map(|&(fp, size)| ChunkRecord::new(fp.wrapping_mul(0x9e37_79b9_7f4a_7c15), size))
            .collect();

        let mut live = DedupEngine::new(config()).unwrap();
        for &r in &records {
            live.process(r);
        }
        live.finish();

        let mut durable = DedupEngine::open(persisted(&dir)).unwrap();
        for &r in &records {
            durable.process(r);
        }
        durable.finish();
        durable.close().unwrap();

        let mut reopened = DedupEngine::open(persisted(&dir)).unwrap();
        assert_engines_identical(&reopened, &live, "after reopen");

        // Subsequent ingest: every single outcome must agree.
        for &r in &extra {
            prop_assert_eq!(reopened.process(r), live.process(r));
        }
        reopened.finish();
        live.finish();
        assert_engines_identical(&reopened, &live, "after post-reopen ingest");
        done(&dir);
    }
}

#[test]
fn engine_survives_multi_session_backup_series() {
    // The weekly-snapshot scenario: one open → ingest → close session per
    // backup, compared against one long-lived engine that finishes at the
    // same per-backup boundaries.
    let dir = test_dir("multi-session");
    let series = generate(&FslConfig {
        backups: 5,
        ..FslConfig::scaled(400)
    });

    let mut live = DedupEngine::new(config()).unwrap();
    for backup in &series {
        live.ingest_backup(backup);
        live.finish();
    }

    for backup in &series {
        let mut session = DedupEngine::open(persisted(&dir)).unwrap();
        session.ingest_backup(backup);
        session.close().unwrap();
    }

    let reopened = DedupEngine::open(persisted(&dir)).unwrap();
    assert_engines_identical(&reopened, &live, "after 5 sessions");
    done(&dir);
}

#[test]
fn sharded_round_trip_bit_identical_across_threads() {
    let dir_base = test_dir("sharded-rt");
    let series = generate(&FslConfig {
        backups: 3,
        ..FslConfig::scaled(500)
    });
    let extra = series.latest().unwrap().clone();

    for threads in [1usize, 0] {
        let par = ParConfig::with_threads(threads);
        let dir = dir_base.join(format!("threads-{threads}"));

        let mut live = ShardedDedupEngine::new(config(), 4).unwrap();
        for backup in &series {
            live.ingest_backup(backup, par);
        }
        live.finish();

        let mut durable = ShardedDedupEngine::open(persisted(&dir), 4).unwrap();
        for backup in &series {
            durable.ingest_backup(backup, par);
        }
        durable.finish();
        durable.close().unwrap();

        let mut reopened = ShardedDedupEngine::open(persisted(&dir), 4).unwrap();
        assert_eq!(reopened.stats(), live.stats(), "threads {threads}: stats");
        assert_eq!(
            reopened.metadata_access(),
            live.metadata_access(),
            "threads {threads}: metadata access"
        );
        for (shard, (a, b)) in reopened.shards().iter().zip(live.shards()).enumerate() {
            assert_engines_identical(a, b, &format!("threads {threads}, shard {shard}"));
        }

        // Subsequent ingest after recovery matches the never-restarted run.
        reopened.ingest_backup(&extra, par);
        live.ingest_backup(&extra, par);
        reopened.finish();
        live.finish();
        assert_eq!(
            reopened.stats(),
            live.stats(),
            "threads {threads}: post-reopen stats"
        );
        assert_eq!(
            reopened.metadata_access(),
            live.metadata_access(),
            "threads {threads}: post-reopen metadata"
        );
    }
    done(&dir_base);
}

#[test]
fn payload_store_round_trips_chunk_bytes() {
    let dir = test_dir("payload");
    let chunks: Vec<(u64, Vec<u8>)> = (0..40u64)
        .map(|i| {
            let bytes: Vec<u8> = (0..(16 + (i % 17) as usize))
                .map(|j| (i as u8).wrapping_mul(31).wrapping_add(j as u8))
                .collect();
            (i.wrapping_mul(0x9e37_79b9_7f4a_7c15), bytes)
        })
        .collect();

    let mut engine = DedupEngine::open(persisted(&dir)).unwrap();
    for (fp, bytes) in &chunks {
        engine.process_with_payload(ChunkRecord::new(*fp, bytes.len() as u32), bytes);
    }
    engine.close().unwrap();

    let reopened = DedupEngine::open(persisted(&dir)).unwrap();
    for (fp, bytes) in &chunks {
        assert_eq!(
            reopened.read_chunk(Fingerprint(*fp)),
            Some(bytes.as_slice()),
            "payload of {fp:#x} after reopen"
        );
    }
    done(&dir);
}

#[test]
fn torn_container_log_recovers_last_sealed_prefix() {
    let dir = test_dir("torn-tail");
    // Distinct fingerprints, 16 bytes each, 256-byte containers → 16 chunks
    // per container. 96 chunks = 6 full containers.
    let records: Vec<ChunkRecord> = (0..96u64)
        .map(|i| ChunkRecord::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), 16))
        .collect();
    let mut engine = DedupEngine::open(persisted(&dir)).unwrap();
    for &r in &records {
        engine.process(r);
    }
    engine.close().unwrap();
    let full_stats = engine_stats_of(&dir);
    assert_eq!(full_stats.0, 6, "expected 6 sealed containers");

    // Tear the last container file mid-record.
    let last = container_path(&dir, ContainerId(5));
    let bytes = std::fs::read(&last).unwrap();
    std::fs::write(&last, &bytes[..bytes.len() / 2]).unwrap();

    let recovered = DedupEngine::open(persisted(&dir)).unwrap();
    // The close-time snapshot claimed 6 containers — state that no longer
    // exists. Recovery must discard AND delete it, or a later recovery
    // could resurrect it once container id 5 is re-sealed with new data.
    assert!(
        !dir.join("index.snap").exists(),
        "stale snapshot must be removed during rollback"
    );
    // Exactly the last consistent sealed state: containers 0..5.
    assert_eq!(recovered.containers().sealed_count(), 5);
    assert_eq!(recovered.stats().containers_sealed, 5);
    assert_eq!(recovered.stats().unique_chunks, 80);
    assert_eq!(recovered.stats().unique_bytes, 80 * 16);
    assert_eq!(recovered.index().len(), 80);

    // The recovered storage state equals a reference engine that ingested
    // only the first five containers' worth of the stream.
    let mut reference = DedupEngine::new(config()).unwrap();
    for &r in &records[..80] {
        reference.process(r);
    }
    reference.finish();
    assert_eq!(
        recovered.index().sorted_entries(),
        reference.index().sorted_entries(),
        "index equals the sealed-prefix reference"
    );
    for id in 0..5u32 {
        assert_eq!(
            recovered
                .containers()
                .get(ContainerId(id))
                .unwrap()
                .fingerprints,
            reference
                .containers()
                .get(ContainerId(id))
                .unwrap()
                .fingerprints,
            "container {id} contents"
        );
    }

    // The lost chunks are genuinely gone: re-ingesting them stores them
    // again, and the store keeps working durably afterwards.
    let mut recovered = recovered;
    for &r in &records[80..] {
        assert!(!recovered.process(r).is_duplicate(), "lost chunk {r:?}");
    }
    recovered.close().unwrap();
    let after = DedupEngine::open(persisted(&dir)).unwrap();
    assert_eq!(after.stats().unique_chunks, 96);
    assert_eq!(after.containers().sealed_count(), 6);
    done(&dir);
}

/// (sealed containers, unique chunks) as recorded on disk, via a scratch
/// reopen.
fn engine_stats_of(dir: &PathBuf) -> (usize, u64) {
    let e = DedupEngine::open(persisted(dir)).unwrap();
    (e.containers().sealed_count(), e.stats().unique_chunks)
}

#[test]
fn torn_manifest_tail_is_rolled_back() {
    let dir = test_dir("torn-manifest");
    let records: Vec<ChunkRecord> = (0..48u64)
        .map(|i| ChunkRecord::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), 16))
        .collect();
    let mut engine = DedupEngine::open(persisted(&dir)).unwrap();
    for &r in &records {
        engine.process(r);
    }
    engine.close().unwrap(); // 3 sealed containers

    // Tear the manifest inside its last record: the container file is
    // intact, but the seal was never committed.
    let manifest = dir.join("manifest.log");
    let bytes = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &bytes[..bytes.len() - 5]).unwrap();

    let recovered = DedupEngine::open(persisted(&dir)).unwrap();
    assert_eq!(recovered.containers().sealed_count(), 2);
    assert_eq!(recovered.stats().unique_chunks, 32);
    done(&dir);
}

#[test]
fn sharded_torn_shard_recovers_independently() {
    let dir = test_dir("sharded-torn");
    let series = generate(&FslConfig {
        backups: 2,
        ..FslConfig::scaled(400)
    });
    let mut engine = ShardedDedupEngine::open(persisted(&dir), 4).unwrap();
    for backup in &series {
        engine.ingest_backup(backup, ParConfig::sequential());
    }
    engine.close().unwrap();
    let before = {
        let e = ShardedDedupEngine::open(persisted(&dir), 4).unwrap();
        e.stats()
    };

    // Tear the tail container of the first shard that has one.
    let torn = (0..4u32)
        .find_map(|s| {
            let shard_dir = dir.join(format!("shard-{s:03}"));
            let mut last: Option<PathBuf> = None;
            for id in 0.. {
                let p = container_path(&shard_dir, ContainerId(id));
                if p.exists() {
                    last = Some(p);
                } else {
                    break;
                }
            }
            last
        })
        .expect("at least one shard sealed a container");
    let bytes = std::fs::read(&torn).unwrap();
    std::fs::write(&torn, &bytes[..bytes.len() - 7]).unwrap();

    let recovered = ShardedDedupEngine::open(persisted(&dir), 4).unwrap();
    let after = recovered.stats();
    assert_eq!(
        after.containers_sealed,
        before.containers_sealed - 1,
        "exactly the torn container was rolled back"
    );
    assert!(after.unique_chunks < before.unique_chunks);
    // Aggregate invariant: recovered uniques equal what the containers hold.
    let stored: u64 = recovered
        .shards()
        .iter()
        .map(|e| e.containers().iter().map(|c| c.len() as u64).sum::<u64>())
        .sum();
    assert_eq!(after.unique_chunks, stored);
    done(&dir);
}

#[test]
fn resealed_container_id_wins_over_stale_snapshot() {
    // The full resurrection scenario: snapshot at seal 3 → tear container 2
    // → recovery rolls back to 2 seals (snapshot discarded + deleted) →
    // *different* data re-seals id 2 → crash without close → recovery must
    // reflect the new container 2, never the stale snapshot's image of it.
    let dir = test_dir("reseal");
    let old: Vec<ChunkRecord> = (0..48u64)
        .map(|i| ChunkRecord::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), 16))
        .collect();
    let mut engine = DedupEngine::open(persisted(&dir)).unwrap();
    for &r in &old {
        engine.process(r);
    }
    engine.close().unwrap(); // snapshot at seal_seq = 3

    let torn = container_path(&dir, ContainerId(2));
    let bytes = std::fs::read(&torn).unwrap();
    std::fs::write(&torn, &bytes[..bytes.len() - 9]).unwrap();

    let mut recovered = DedupEngine::open(persisted(&dir)).unwrap();
    assert_eq!(recovered.containers().sealed_count(), 2);
    // Re-seal container id 2 with fresh fingerprints, crash without close.
    let new: Vec<ChunkRecord> = (1000..1016u64)
        .map(|i| ChunkRecord::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), 16))
        .collect();
    for &r in &new {
        recovered.process(r);
    }
    // A 17th chunk overflows the 256-byte capacity and seals the 16 above
    // as the new container 2; it itself stays in the open buffer and is
    // lost with the crash.
    recovered.process(ChunkRecord::new(u64::MAX, 16));
    assert_eq!(recovered.containers().sealed_count(), 3);
    drop(recovered);

    let after = DedupEngine::open(persisted(&dir)).unwrap();
    assert_eq!(after.containers().sealed_count(), 3);
    let c2 = after.containers().get(ContainerId(2)).unwrap();
    assert_eq!(
        c2.fingerprints,
        new.iter().map(|r| r.fp).collect::<Vec<_>>(),
        "container 2 must hold the re-sealed data, not the stale image"
    );
    for &r in &new {
        assert_eq!(
            after.index().peek(r.fp),
            Some(ContainerId(2)),
            "index must map the new fingerprints"
        );
    }
    for &r in &old[32..48] {
        assert_eq!(after.index().peek(r.fp), None, "old container 2 fps gone");
    }
    done(&dir);
}

#[test]
fn opening_sharded_root_as_plain_engine_is_rejected() {
    let dir = test_dir("root-kind");
    let sharded = ShardedDedupEngine::open(persisted(&dir), 2).unwrap();
    sharded.close().unwrap();
    // A sharded root has a store.meta but no top-level manifest; a plain
    // engine open must refuse rather than re-initialize over it.
    let err = DedupEngine::open(persisted(&dir)).unwrap_err();
    assert!(matches!(err, PersistError::ConfigMismatch(_)), "{err}");
    // The sharded store is untouched and still opens.
    ShardedDedupEngine::open(persisted(&dir), 2).unwrap();
    done(&dir);
}

#[test]
fn reopening_with_wrong_shard_count_is_rejected() {
    let dir = test_dir("shard-mismatch");
    let engine = ShardedDedupEngine::open(persisted(&dir), 4).unwrap();
    engine.close().unwrap();
    assert!(ShardedDedupEngine::open(persisted(&dir), 8).is_err());
    done(&dir);
}

// ---------------------------------------------------------------------------
// Fsync-failure injection matrix (PR 7)
// ---------------------------------------------------------------------------

/// The four durable-sync crash points the fsync matrix kills at.
const SYNC_SITES: [freqdedup::store::fault::PersistSite; 4] = [
    freqdedup::store::fault::PersistSite::ContainerSync,
    freqdedup::store::fault::PersistSite::ManifestSync,
    freqdedup::store::fault::PersistSite::SnapshotSync,
    freqdedup::store::fault::PersistSite::DirSync,
];

/// An fsync that fails (`FailMode::Error`, not a torn write) at each sync
/// site and occurrence index must surface as a typed error or a reported
/// ingest panic — never silent success — and recovery must come back to
/// exactly the last consistent sealed prefix, after which the store keeps
/// working durably.
#[test]
fn fsync_failure_matrix_recovers_to_sealed_prefix() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::Ordering;

    use freqdedup::store::fault::{CountingPolicy, FailAt, FailMode};

    let dir = test_dir("fsync-matrix");
    // Distinct fingerprints, 16 bytes each, 256-byte containers → exactly
    // 16 chunks per container, 96 chunks = 6 full containers (the same
    // geometry as the torn-tail tests, so the sealed prefix is computable).
    let records: Vec<ChunkRecord> = (0..96u64)
        .map(|i| ChunkRecord::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), 16))
        .collect();

    // Probe run: count how often each sync site fires during the workload
    // so the kill indices cover first / middle / last occurrence.
    let counting = CountingPolicy::new();
    let counts = counting.counts();
    {
        let cfg = DedupConfig {
            persist: Some(
                PersistConfig::new(dir.join("probe"))
                    .fsync(FsyncPolicy::Always)
                    .io_policy(counting),
            ),
            ..config()
        };
        let mut probe = DedupEngine::open(cfg).unwrap();
        for &r in &records {
            probe.process(r);
        }
        probe.close().unwrap();
    }
    let counts = counts.lock().unwrap().clone();

    for site in SYNC_SITES {
        let n = *counts.get(&site).unwrap_or(&0);
        assert!(n > 0, "probe run never hit {site:?}");
        let mut kill_at = vec![0, n / 2, n - 1];
        kill_at.dedup();
        for k in kill_at {
            let run_dir = dir.join(format!("{site:?}-k{k}"));
            let fail = FailAt::new(site, k, FailMode::Error);
            let fired = fail.fired();
            let cfg = DedupConfig {
                persist: Some(
                    PersistConfig::new(&run_dir)
                        .fsync(FsyncPolicy::Always)
                        .io_policy(fail),
                ),
                ..config()
            };

            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), PersistError> {
                let mut engine = DedupEngine::open(cfg)?;
                for &r in &records {
                    engine.process(r);
                }
                engine.close()
            }));
            assert!(
                fired.load(Ordering::SeqCst),
                "{site:?} k{k}: injected fault never fired"
            );
            // A typed error or a reported ingest panic are both clean;
            // outright success means the fsync failure never bit.
            if let Ok(Ok(())) = outcome {
                panic!("{site:?} k{k}: succeeded despite an injected fsync failure");
            }

            // Recovery: a clean reopen rolls back to the last consistent
            // sealed prefix and matches a reference engine over it.
            let recovered = DedupEngine::open(persisted(&run_dir))
                .unwrap_or_else(|e| panic!("{site:?} k{k}: recovery failed: {e}"));
            let sealed = recovered.containers().sealed_count();
            assert!(sealed <= 6, "{site:?} k{k}: {sealed} sealed");
            assert_eq!(
                recovered.stats().unique_chunks,
                (sealed * 16) as u64,
                "{site:?} k{k}: stats match the sealed prefix"
            );
            let mut reference = DedupEngine::new(config()).unwrap();
            for &r in &records[..sealed * 16] {
                reference.process(r);
            }
            reference.finish();
            assert_eq!(
                recovered.index().sorted_entries(),
                reference.index().sorted_entries(),
                "{site:?} k{k}: index equals the sealed-prefix reference"
            );

            // The lost tail re-ingests and the store works durably again.
            let mut recovered = recovered;
            for &r in &records[sealed * 16..] {
                recovered.process(r);
            }
            recovered.close().unwrap();
            let after = DedupEngine::open(persisted(&run_dir)).unwrap();
            assert_eq!(after.stats().unique_chunks, 96, "{site:?} k{k}");
            assert_eq!(after.containers().sealed_count(), 6, "{site:?} k{k}");
        }
    }
    done(&dir);
}

/// The same fsync-failure matrix against [`ShardedDedupEngine`] at worker
/// thread counts 1 (sequential) and 0 (all cores): the shared fault
/// schedule kills whichever shard reaches the k-th sync first; whatever
/// the interleaving, recovery must satisfy the aggregate invariant
/// (recovered uniques equal what the containers hold) and a re-ingest
/// must restore the store to the fault-free reference.
#[test]
fn sharded_fsync_failure_matrix_recovers_across_threads() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::Ordering;

    use freqdedup::store::fault::{FailAt, FailMode};

    let dir = test_dir("sharded-fsync");
    let series = generate(&FslConfig {
        backups: 2,
        ..FslConfig::scaled(150)
    });
    let reference = {
        let mut e = ShardedDedupEngine::new(config(), 4).unwrap();
        for backup in &series {
            e.ingest_backup(backup, ParConfig::sequential());
        }
        e.finish();
        e.stats()
    };

    for threads in [1usize, 0] {
        let par = ParConfig::with_threads(threads);
        for site in SYNC_SITES {
            for k in [0u64, 5] {
                let tag = format!("{site:?}-t{threads}-k{k}");
                let run_dir = dir.join(&tag);
                let fail = FailAt::new(site, k, FailMode::Error);
                let fired = fail.fired();
                let cfg = DedupConfig {
                    persist: Some(
                        PersistConfig::new(&run_dir)
                            .fsync(FsyncPolicy::Always)
                            .io_policy(fail),
                    ),
                    ..config()
                };

                let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), PersistError> {
                    let mut engine = ShardedDedupEngine::open(cfg, 4)?;
                    for backup in &series {
                        engine.ingest_backup(backup, par);
                    }
                    engine.close()
                }));
                if !fired.load(Ordering::SeqCst) {
                    // k-th occurrence never happened (site fires fewer
                    // times in this workload): the run must have been a
                    // clean, complete success.
                    assert!(matches!(outcome, Ok(Ok(()))), "{tag}: unfired but failed");
                    continue;
                }
                assert!(
                    !matches!(outcome, Ok(Ok(()))),
                    "{tag}: succeeded despite an injected fsync failure"
                );

                let recovered = ShardedDedupEngine::open(persisted(&run_dir), 4)
                    .unwrap_or_else(|e| panic!("{tag}: recovery failed: {e}"));
                let stored: u64 = recovered
                    .shards()
                    .iter()
                    .map(|e| e.containers().iter().map(|c| c.len() as u64).sum::<u64>())
                    .sum();
                assert_eq!(
                    recovered.stats().unique_chunks,
                    stored,
                    "{tag}: recovered uniques equal container contents"
                );

                // Re-ingesting the series restores every lost chunk.
                let mut recovered = recovered;
                for backup in &series {
                    recovered.ingest_backup(backup, par);
                }
                recovered.close().unwrap();
                let after = ShardedDedupEngine::open(persisted(&run_dir), 4).unwrap();
                assert_eq!(
                    after.stats().unique_chunks,
                    reference.unique_chunks,
                    "{tag}: complete after re-ingest"
                );
                assert_eq!(after.stats().unique_bytes, reference.unique_bytes, "{tag}");
            }
        }
    }
    done(&dir);
}

#[test]
fn interval_snapshots_keep_crash_recovery_fresh() {
    let dir = test_dir("interval-snap");
    let cfg = DedupConfig {
        persist: Some(
            PersistConfig::new(&dir)
                .fsync(FsyncPolicy::Never)
                .snapshot_every_seals(1),
        ),
        ..config()
    };
    let mut engine = DedupEngine::open(cfg.clone()).unwrap();
    let backup: Backup = (0..64u64)
        .map(|i| ChunkRecord::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), 16))
        .collect();
    engine.ingest_backup(&backup);
    engine.finish(); // interval snapshot fires here
                     // Re-ingest (all duplicates), then crash without close: the duplicate
                     // flow counters since the snapshot are lost, the storage state is not.
    engine.ingest_backup(&backup);
    let stats_at_snapshot_point = {
        drop(engine);
        let r = DedupEngine::open(cfg).unwrap();
        r.stats()
    };
    assert_eq!(stats_at_snapshot_point.unique_chunks, 64);
    assert_eq!(stats_at_snapshot_point.logical_chunks, 64);
    assert_eq!(stats_at_snapshot_point.containers_sealed, 4);
    done(&dir);
}
