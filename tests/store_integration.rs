//! Integration of the DDFS-like engine with generated workloads and the
//! defense pipeline: engine accounting must agree with the analytic
//! deduplication model, and the metadata-access structure must match the
//! paper's observations.

use freqdedup::chunking::segment::SegmentParams;
use freqdedup::core::defense::MinHashScrambleScheme;
use freqdedup::datasets::fsl::{generate, FslConfig};
use freqdedup::store::engine::{DedupConfig, DedupEngine};
use freqdedup::trace::stats::DedupAccumulator;

#[test]
fn engine_agrees_with_analytic_dedup() {
    let series = generate(&FslConfig::scaled(2_000));
    let mut engine = DedupEngine::new(DedupConfig::paper(64 * 1024 * 1024, 200_000)).unwrap();
    let mut model = DedupAccumulator::new();
    for backup in &series {
        engine.ingest_backup(backup);
        model.add_backup(backup);
    }
    engine.finish();
    let stats = engine.stats();
    assert_eq!(stats.unique_chunks as usize, model.unique_chunks());
    assert_eq!(stats.unique_bytes, model.physical_bytes());
    assert_eq!(stats.logical_bytes, model.logical_bytes());
}

#[test]
fn loading_access_dominates_with_small_cache() {
    let series = generate(&FslConfig::scaled(2_000));
    // Cache sized at ~10% of the fingerprint population: heavy prefetching.
    let unique = {
        let mut acc = DedupAccumulator::new();
        for b in &series {
            acc.add_backup(b);
        }
        acc.unique_chunks()
    };
    let mut engine = DedupEngine::new(DedupConfig {
        container_bytes: 4 * 1024 * 1024,
        cache_entries: unique / 10,
        entry_bytes: 32,
        bloom_expected: unique as u64,
        bloom_fp_rate: 0.01,
        index_shards: 1,
        persist: None,
    })
    .unwrap();
    for backup in &series {
        engine.ingest_backup(backup);
    }
    engine.finish();
    let m = engine.metadata_access();
    assert!(
        m.loading_fraction() > 0.5,
        "loading fraction {} with a small cache",
        m.loading_fraction()
    );
}

#[test]
fn large_cache_reduces_loading_access() {
    let series = generate(&FslConfig::scaled(2_000));
    let unique = {
        let mut acc = DedupAccumulator::new();
        for b in &series {
            acc.add_backup(b);
        }
        acc.unique_chunks()
    };
    let run = |cache_entries: usize| {
        let mut engine = DedupEngine::new(DedupConfig {
            container_bytes: 4 * 1024 * 1024,
            cache_entries,
            entry_bytes: 32,
            bloom_expected: unique as u64,
            bloom_fp_rate: 0.01,
            index_shards: 1,
            persist: None,
        })
        .unwrap();
        for backup in &series {
            engine.ingest_backup(backup);
        }
        engine.finish();
        engine.metadata_access().loading_bytes
    };
    let small = run(unique / 10);
    let large = run(unique * 2);
    assert!(
        large < small,
        "loading bytes should shrink with a big cache ({large} vs {small})"
    );
}

#[test]
fn combined_scheme_metadata_overhead_is_bounded() {
    // Fig. 13's headline: the combined scheme's metadata overhead stays
    // within a few percent of MLE with a constrained cache.
    let series = generate(&FslConfig::scaled(2_000));
    let scheme = MinHashScrambleScheme::combined(SegmentParams::paper_default(8192), 3);
    let (defended, _) = scheme.encrypt_series(&series);

    let unique = {
        let mut acc = DedupAccumulator::new();
        for b in &series {
            acc.add_backup(b);
        }
        acc.unique_chunks()
    };
    let ingest = |s: &freqdedup::trace::BackupSeries| {
        let mut engine = DedupEngine::new(DedupConfig {
            container_bytes: 4 * 1024 * 1024,
            cache_entries: unique / 4,
            entry_bytes: 32,
            bloom_expected: 4 * unique as u64,
            bloom_fp_rate: 0.01,
            index_shards: 1,
            persist: None,
        })
        .unwrap();
        for backup in s {
            engine.ingest_backup(backup);
        }
        engine.finish();
        engine.metadata_access().total_bytes()
    };
    let mle = ingest(&series) as f64;
    let combined = ingest(&defended) as f64;
    let overhead = (combined - mle) / mle;
    // The paper's claim is an upper bound: defenses must not inflate
    // metadata access. On this synthetic workload the combined scheme's
    // segment-level scrambling typically *reduces* loading bytes (seed
    // sweep: -0.33..-0.01), so only the upside is held to the tight band.
    assert!(
        (-0.45..0.25).contains(&overhead),
        "combined metadata overhead {overhead:+.2} out of band"
    );
}
