//! Property suite pinning the chunking engines' contracts.
//!
//! Covers the guarantees the rest of the stack leans on:
//!
//! - **Boundary determinism** — the same bytes always chunk the same way,
//!   and a cut decision depends only on the bytes from the previous cut
//!   onward (reset-at-cut), which is what makes dedup work at all.
//! - **Size bounds** — every fastcdc chunk is strictly longer than
//!   `min_size` and at most `max_size` (the trailing partial may be
//!   shorter); rabin-cdc keeps its historical `>= min_size` bound.
//! - **Shift-robustness** — inserting bytes near the front of a stream
//!   perturbs only a bounded prefix of the chunking; boundaries
//!   resynchronize because they are content-defined.
//! - **Parallel bit-identity** — `chunk_stream_par` matches sequential
//!   `spans` for every thread count, on both engines, including the
//!   degenerate inputs (empty, tiny, exactly `max_size`, constant bytes).

use freqdedup::chunking::cdc::CdcParams;
use freqdedup::chunking::fastcdc::{FastCdc, FastCdcParams};
use freqdedup::chunking::{chunk_stream_par, Chunker};
use freqdedup::trace::par::ParConfig;
use proptest::prelude::*;

/// Deterministic pseudo-random bytes (splitmix-style LCG) so failures
/// reproduce without proptest in the loop where plain tests suffice.
fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn spans_cover(data_len: usize, spans: &[std::ops::Range<usize>]) {
    let mut pos = 0;
    for s in spans {
        assert_eq!(s.start, pos, "spans must tile the input without gaps");
        assert!(s.end > s.start, "empty span");
        pos = s.end;
    }
    assert_eq!(pos, data_len, "spans must cover the whole input");
}

proptest! {
    #[test]
    fn fastcdc_boundaries_are_deterministic(
        data in prop::collection::vec(any::<u8>(), 0..60_000)
    ) {
        let chunker = FastCdc::with_avg_size(1024).expect("valid");
        let a = chunker.spans(&data);
        let b = chunker.spans(&data);
        prop_assert_eq!(&a, &b);
        spans_cover(data.len(), &a);
    }

    #[test]
    fn fastcdc_respects_size_bounds(
        data in prop::collection::vec(any::<u8>(), 0..60_000)
    ) {
        let chunker = FastCdc::with_avg_size(1024).expect("valid");
        let params = chunker.params();
        let spans = chunker.spans(&data);
        for (i, s) in spans.iter().enumerate() {
            prop_assert!(s.len() <= params.max_size, "chunk exceeds max_size");
            if i + 1 < spans.len() {
                // Every non-trailing chunk is strictly longer than min_size:
                // hashing starts at from + min_size and the earliest cut is
                // one byte later.
                prop_assert!(s.len() > params.min_size, "interior chunk at/below min_size");
            }
        }
    }

    #[test]
    fn fastcdc_cut_depends_only_on_suffix(
        data in prop::collection::vec(any::<u8>(), 2_000..40_000),
        prefix in prop::collection::vec(any::<u8>(), 1..3_000)
    ) {
        // Reset-at-cut: chunk the raw data, then chunk prefix+data. Once a
        // combined cut lands exactly on a raw cut boundary (offset by the
        // prefix), every later cut must match — the chunker's state is a
        // pure function of the bytes since the previous cut.
        let chunker = FastCdc::with_avg_size(1024).expect("valid");
        let raw_cuts = chunker.cuts(&data);
        let mut shifted = prefix.clone();
        shifted.extend_from_slice(&data);
        let combined = chunker.cuts(&shifted);
        let raw_set: Vec<usize> = raw_cuts.iter().map(|c| c + prefix.len()).collect();
        if let Some(first_common) = combined.iter().position(|c| raw_set.binary_search(c).is_ok()) {
            let tail = &combined[first_common..];
            let from = raw_set.binary_search(&tail[0]).expect("common cut");
            prop_assert_eq!(tail, &raw_set[from..], "cuts diverge after resynchronizing");
        }
    }

    #[test]
    fn shift_robustness_preserves_most_boundaries(
        seed in any::<u64>(),
        insert_len in 1usize..64
    ) {
        // Insert a few bytes near the front of a 256 KiB stream: the cut
        // positions after resynchronization must be the original ones
        // shifted by insert_len, i.e. almost all boundaries survive.
        let chunker = FastCdc::with_avg_size(4096).expect("valid");
        let data = pseudo_random(256 << 10, seed);
        let base = chunker.cuts(&data);
        let mut edited = data[..100].to_vec();
        edited.extend(pseudo_random(insert_len, seed ^ 0xdead_beef));
        edited.extend_from_slice(&data[100..]);
        let shifted = chunker.cuts(&edited);
        let expected: Vec<usize> = base.iter().map(|c| c + insert_len).collect();
        let surviving = shifted.iter().filter(|c| expected.binary_search(c).is_ok()).count();
        // The edit can disturb at most the chunks overlapping it plus a
        // bounded resync window; on 256 KiB / ~4 KiB chunks the vast
        // majority of boundaries must survive.
        prop_assert!(
            surviving * 10 >= expected.len() * 8,
            "only {surviving}/{} boundaries survived a {insert_len}-byte insert",
            expected.len()
        );
    }

    #[test]
    fn par_is_bit_identical_for_all_thread_counts(
        data in prop::collection::vec(any::<u8>(), 0..120_000),
        engine_is_fastcdc in any::<bool>()
    ) {
        let fast;
        let rabin;
        let chunker: &(dyn Chunker + Sync) = if engine_is_fastcdc {
            fast = FastCdc::with_avg_size(1024).expect("valid");
            &fast
        } else {
            rabin = CdcParams::with_avg_size(1024).expect("valid");
            &rabin
        };
        let seq = chunker.spans(&data);
        for threads in [1usize, 2, 8] {
            let par = chunk_stream_par(&data, chunker, ParConfig::with_threads(threads));
            prop_assert_eq!(&par, &seq, "threads {}", threads);
        }
    }
}

#[test]
fn rabin_keeps_historical_min_bound() {
    let params = CdcParams::with_avg_size(1024).expect("valid");
    let data = pseudo_random(200_000, 7);
    let spans = params.spans(&data);
    spans_cover(data.len(), &spans);
    for s in &spans[..spans.len() - 1] {
        assert!(s.len() >= params.min_size && s.len() <= params.max_size);
    }
}

#[test]
fn degenerate_inputs_chunk_exactly() {
    let chunker = FastCdc::with_avg_size(1024).expect("valid");
    let max = chunker.params().max_size;

    // Empty input: no spans, sequential and parallel alike.
    assert!(chunker.spans(&[]).is_empty());
    assert!(chunk_stream_par(&[], &chunker, ParConfig::with_threads(8)).is_empty());

    // Tiny input (below min_size): one trailing partial chunk.
    let tiny = pseudo_random(17, 3);
    assert_eq!(chunker.spans(&tiny), vec![0..17]);
    assert_eq!(
        chunk_stream_par(&tiny, &chunker, ParConfig::with_threads(8)),
        vec![0..17]
    );

    // Exactly max_size of boundary-free bytes: one forced cut, no partial.
    let flat = vec![0u8; max];
    assert_eq!(chunker.spans(&flat), vec![0..max]);
    assert_eq!(
        chunk_stream_par(&flat, &chunker, ParConfig::with_threads(8)),
        vec![0..max]
    );

    // Constant data longer than max_size: every cut forced, parallel
    // seam-rechunking still exact.
    let long_flat = vec![0xabu8; 3 * max + 123];
    let seq = chunker.spans(&long_flat);
    for s in &seq[..seq.len() - 1] {
        assert_eq!(s.len(), max, "boundary-free data must cut at max_size");
    }
    for threads in [2usize, 8] {
        assert_eq!(
            chunk_stream_par(&long_flat, &chunker, ParConfig::with_threads(threads)),
            seq
        );
    }
}

#[test]
fn paper_parameters_are_construction_checked() {
    // The typed error path: every invalid parameter combination surfaces
    // as a ParamError instead of a panic.
    assert!(FastCdcParams::with_avg_size(100).is_err()); // not a power of two
    assert!(FastCdcParams::with_avg_size(128).is_err()); // below 256-byte floor
    assert!(FastCdc::with_avg_size(8192).is_ok());
    assert!(CdcParams::with_avg_size(0).is_err());
    assert!(CdcParams::with_avg_size(8192).is_ok());
}
