//! Networked-service integration suite (loopback only, CI-safe).
//!
//! The contract under test (DESIGN.md §8):
//!
//! * **Protocol round trip** — every message type crosses the wire and
//!   back; torn, truncated, oversize and CRC-corrupted frames are
//!   rejected without taking the server down.
//! * **Live-traffic equivalence** — for a seeded series and client count
//!   ∈ {1, 4}, the adversary tap's deterministic view equals the offline
//!   series, its attack inference (both [`TiePolicy`] variants) is
//!   bit-identical to direct in-process ingest, and the served store's
//!   partition-invariant totals match a direct `ShardedDedupEngine` run.
//! * **Restart** — a server restarted on its store directory recovers
//!   per the PR 4 invariant (graceful shutdown checkpoints, so no crash
//!   recovery is needed), and clients resume to a verified restore —
//!   including a client that disconnected mid-backup without committing.
//! * **Streaming tap** (DESIGN.md §9) — for 1 and 4 interleaved clients,
//!   the tap's running incremental inference snapshotted after **every**
//!   commit equals a batch recompute of the committed prefix, and a
//!   restarted server resumes the incremental state from `tap.fqis`
//!   bit-identically and keeps folding further commits.
//!
//! Test directories (store dirs, server logs, tap traces) live under
//! `target/server-test/` so CI can upload them when a test fails; they
//! are removed on success.

use std::net::SocketAddr;
use std::path::PathBuf;

use freqdedup::core::attacks::locality::LocalityParams;
use freqdedup::core::attacks::{self, AttackKind};
use freqdedup::datasets::fsl::{generate, FslConfig};
use freqdedup::mle::trace_enc::DeterministicTraceEncryptor;
use freqdedup::server::client::{synthetic_payload, Client, ClientError};
use freqdedup::server::frame::{read_frame, write_frame};
use freqdedup::server::proto::{code, Message};
use freqdedup::server::server::{ServeSummary, Server, ServerConfig};
use freqdedup::store::engine::DedupConfig;
use freqdedup::store::persist::{FsyncPolicy, PersistConfig};
use freqdedup::store::sharded::ShardedDedupEngine;
use freqdedup::trace::par::ParConfig;
use freqdedup::trace::{Backup, BackupSeries};

/// A fresh directory under `target/server-test/` (kept on panic so CI can
/// upload it, removed by [`done`] on success).
fn test_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from("target/server-test").join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn done(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

/// Small engine so containers actually seal during the tests.
fn small_engine() -> DedupConfig {
    DedupConfig {
        container_bytes: 4096,
        cache_entries: 1024,
        bloom_expected: 100_000,
        ..DedupConfig::default()
    }
}

/// Binds on an ephemeral loopback port and serves on a background
/// thread; the server stops when a client sends SHUTDOWN.
fn start(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<ServeSummary>) {
    let server = Server::bind(config).expect("bind loopback server");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

/// A small seeded FSL-like series, fingerprint-space encrypted: returns
/// `(plaintext series, ciphertext series)` — clients upload ciphertext.
fn encrypted_series(backups: usize) -> (BackupSeries, BackupSeries) {
    let plain = generate(&FslConfig {
        users: 2,
        backups,
        ..FslConfig::scaled(400)
    });
    let enc = DeterministicTraceEncryptor::new(b"server-integration-secret");
    let mut cipher = BackupSeries::new(plain.name.clone());
    for backup in &plain {
        cipher.push(enc.encrypt_backup(backup).backup);
    }
    (plain, cipher)
}

// ---------------------------------------------------------------------------
// Protocol round trip
// ---------------------------------------------------------------------------

#[test]
fn protocol_round_trip_every_message_type() {
    let dir = test_dir("round-trip");
    let (addr, handle) = start(ServerConfig {
        engine: small_engine(),
        log_file: Some(dir.join("server.log")),
        ..ServerConfig::default()
    });

    let mut client = Client::connect(addr, "round-trip").unwrap();
    assert_eq!(client.version(), freqdedup::server::proto::WIRE_VERSION);

    // PUT (payload mode) + COMMIT.
    let backup = Backup::from_chunks(
        "b0",
        (0..300u64)
            .map(|i| freqdedup::trace::ChunkRecord::new(i % 100, 64))
            .collect(),
    );
    let summary = client
        .upload_backup_payloads(&backup, |rec| synthetic_payload(rec.fp, rec.size))
        .unwrap();
    assert_eq!(summary.chunks, 300);
    assert_eq!(summary.unique, 100);
    assert_eq!(summary.duplicate, 200);
    assert_eq!(client.commit("b0").unwrap(), 300);

    // GET-CHUNK: stored and missing fingerprints.
    let payload = client
        .get_chunk(freqdedup::trace::Fingerprint(5))
        .unwrap()
        .expect("stored chunk has payload");
    assert_eq!(
        payload,
        synthetic_payload(freqdedup::trace::Fingerprint(5), 64)
    );
    assert!(client
        .get_chunk(freqdedup::trace::Fingerprint(987_654_321))
        .unwrap()
        .is_none());

    // RESTORE-BACKUP: stream + payload verification.
    client
        .verify_restore(
            &backup,
            Some(&|rec: &freqdedup::trace::ChunkRecord| synthetic_payload(rec.fp, rec.size)),
        )
        .unwrap();

    // RESTORE of an unknown label: protocol error, session survives.
    match client.restore("nope") {
        Err(ClientError::Server { code: c, .. }) => assert_eq!(c, code::UNKNOWN_LABEL),
        other => panic!("expected UNKNOWN_LABEL, got {other:?}"),
    }

    // STATS.
    let stats = client.stats().unwrap();
    assert_eq!(stats.logical_chunks, 300);
    assert_eq!(stats.unique_chunks, 100);
    assert_eq!(stats.committed_backups, 1);

    // SHUTDOWN (drains and stops the server).
    client.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.commits, 1);
    assert_eq!(summary.stats.unique_chunks, 100);
    done(&dir);
}

#[test]
fn hello_is_required_and_versions_negotiate() {
    let dir = test_dir("hello");
    let (addr, handle) = start(ServerConfig {
        engine: small_engine(),
        log_file: Some(dir.join("server.log")),
        ..ServerConfig::default()
    });

    // A request before HELLO is refused with BAD_STATE.
    {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        write_frame(&mut raw, &Message::StatsReq.encode()).unwrap();
        let reply = Message::decode(&read_frame(&mut raw).unwrap().unwrap()).unwrap();
        assert!(matches!(reply, Message::ErrorResp { code: c, .. } if c == code::BAD_STATE));
        // The session survives the refusal: HELLO still works.
        write_frame(
            &mut raw,
            &Message::Hello {
                version: freqdedup::server::proto::WIRE_VERSION,
                client: "late-hello".into(),
            }
            .encode(),
        )
        .unwrap();
        let reply = Message::decode(&read_frame(&mut raw).unwrap().unwrap()).unwrap();
        assert!(matches!(reply, Message::HelloAck { .. }));
    }

    // A future client version negotiates down to the server's version.
    {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        write_frame(
            &mut raw,
            &Message::Hello {
                version: 999,
                client: "futuristic".into(),
            }
            .encode(),
        )
        .unwrap();
        let reply = Message::decode(&read_frame(&mut raw).unwrap().unwrap()).unwrap();
        assert_eq!(
            reply,
            Message::HelloAck {
                version: freqdedup::server::proto::WIRE_VERSION
            }
        );
    }

    let mut client = Client::connect(addr, "closer").unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
    done(&dir);
}

#[test]
fn torn_and_corrupt_frames_are_rejected() {
    let dir = test_dir("torn-frames");
    let (addr, handle) = start(ServerConfig {
        engine: small_engine(),
        log_file: Some(dir.join("server.log")),
        ..ServerConfig::default()
    });

    // Oversize length prefix: the server reports and drops the session.
    {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        use std::io::Write;
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.write_all(&0u32.to_le_bytes()).unwrap();
        let reply = Message::decode(&read_frame(&mut raw).unwrap().unwrap()).unwrap();
        assert!(matches!(reply, Message::ErrorResp { code: c, .. } if c == code::BAD_STATE));
        // ... and the connection is closed afterwards.
        assert!(matches!(read_frame(&mut raw), Ok(None) | Err(_)));
    }

    // CRC corruption: reported, connection dropped.
    {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Message::StatsReq.encode()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        use std::io::Write;
        raw.write_all(&bytes).unwrap();
        let reply = Message::decode(&read_frame(&mut raw).unwrap().unwrap()).unwrap();
        assert!(matches!(reply, Message::ErrorResp { code: c, .. } if c == code::BAD_STATE));
    }

    // A truncated frame (client dies mid-frame): the server just drops
    // the session; a fresh client still works.
    {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        use std::io::Write;
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Message::StatsReq.encode()).unwrap();
        raw.write_all(&bytes[..bytes.len() / 2]).unwrap();
        drop(raw);
    }

    // A well-framed but undecodable message: rejected, session continues.
    {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        write_frame(&mut raw, &[0xee, 0x01, 0x02]).unwrap();
        let reply = Message::decode(&read_frame(&mut raw).unwrap().unwrap()).unwrap();
        assert!(matches!(reply, Message::ErrorResp { code: c, .. } if c == code::BAD_STATE));
        write_frame(
            &mut raw,
            &Message::Hello {
                version: freqdedup::server::proto::WIRE_VERSION,
                client: "recovered".into(),
            }
            .encode(),
        )
        .unwrap();
        let reply = Message::decode(&read_frame(&mut raw).unwrap().unwrap()).unwrap();
        assert!(matches!(reply, Message::HelloAck { .. }));
    }

    let mut client = Client::connect(addr, "closer").unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
    done(&dir);
}

#[test]
fn mixed_payload_modes_are_refused() {
    let dir = test_dir("mixed-mode");
    let (addr, handle) = start(ServerConfig {
        engine: small_engine(),
        log_file: Some(dir.join("server.log")),
        ..ServerConfig::default()
    });
    let backup = Backup::from_chunks(
        "b",
        (0..10u64)
            .map(|i| freqdedup::trace::ChunkRecord::new(i, 16))
            .collect(),
    );
    let mut meta_client = Client::connect(addr, "meta").unwrap();
    meta_client.upload_backup(&backup).unwrap();
    let mut content_client = Client::connect(addr, "content").unwrap();
    match content_client.upload_backup_payloads(&backup, |r| synthetic_payload(r.fp, r.size)) {
        Err(ClientError::Server { code: c, .. }) => assert_eq!(c, code::MIXED_MODE),
        other => panic!("expected MIXED_MODE, got {other:?}"),
    }
    meta_client.shutdown().unwrap();
    handle.join().unwrap();
    done(&dir);
}

// ---------------------------------------------------------------------------
// Live-traffic equivalence (the acceptance criterion)
// ---------------------------------------------------------------------------

/// N concurrent clients through the service produce a store + tap whose
/// attack inference is identical to the same backups ingested directly
/// into a `ShardedDedupEngine` — for both TiePolicy variants.
#[test]
fn concurrent_clients_equal_direct_ingest() {
    let (plain, cipher) = encrypted_series(5);
    let aux = plain.get(3).unwrap();
    let target_label = cipher.latest().unwrap().label.clone();
    let params = LocalityParams::new(2, 5, 50_000);

    // Offline reference: direct in-process ingest + attack.
    let mut direct = ShardedDedupEngine::new(small_engine(), 4).unwrap();
    for backup in &cipher {
        direct.ingest_backup(backup, ParConfig::sequential());
    }
    direct.finish();
    let direct_stats = direct.stats();
    let reference = attacks::run_ciphertext_only_both_policies(
        AttackKind::Locality,
        cipher.latest().unwrap(),
        aux,
        &params,
    );

    for clients in [1usize, 4] {
        let dir = test_dir(&format!("equivalence-{clients}"));
        let (addr, handle) = start(ServerConfig {
            workers: clients,
            engine: small_engine(),
            log_file: Some(dir.join("server.log")),
            ..ServerConfig::default()
        });

        // Round-robin the series over `clients` concurrent sessions.
        std::thread::scope(|scope| {
            for c in 0..clients {
                let cipher = &cipher;
                scope.spawn(move || {
                    let mut client = Client::connect(addr, &format!("client-{c}")).unwrap();
                    for (i, backup) in cipher.iter().enumerate() {
                        if i % clients == c {
                            client.upload_backup(backup).unwrap();
                            client.commit(&backup.label).unwrap();
                        }
                    }
                });
            }
        });

        // Read the tap back *from the concurrent run* before stopping:
        // RESTORE-BACKUP is served from the tap's manifest catalog, so
        // the restored stream is the tap's observed stream for that
        // label — it must be byte-identical to what the client sent,
        // regardless of how the concurrent sessions interleaved.
        let mut closer = Client::connect(addr, "closer").unwrap();
        let tap_backup = closer.restore(&target_label).unwrap().backup;
        let stats = closer.stats().unwrap();
        closer.shutdown().unwrap();
        let summary = handle.join().unwrap();
        assert_eq!(summary.commits, cipher.len() as u64, "{clients} clients");
        assert_eq!(tap_backup.chunks, cipher.latest().unwrap().chunks);

        // Store equivalence: the partition-invariant totals match direct
        // ingest (the dup-class split legitimately depends on arrival
        // interleaving; the logical/unique totals must not).
        assert_eq!(stats.logical_chunks, direct_stats.logical_chunks);
        assert_eq!(stats.logical_bytes, direct_stats.logical_bytes);
        assert_eq!(stats.unique_chunks, direct_stats.unique_chunks);
        assert_eq!(stats.unique_bytes, direct_stats.unique_bytes);

        // Attack equivalence, both tie policies: live tap vs offline.
        let live = attacks::run_ciphertext_only_both_policies(
            AttackKind::Locality,
            &tap_backup,
            aux,
            &params,
        );
        for ((policy, live_inf), (_, ref_inf)) in live.iter().zip(&reference) {
            let mut a: Vec<_> = live_inf.iter().collect();
            let mut b: Vec<_> = ref_inf.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "policy {policy:?}, {clients} clients");
        }
        done(&dir);
    }
}

// ---------------------------------------------------------------------------
// Restart / resume
// ---------------------------------------------------------------------------

#[test]
fn restart_recovers_and_clients_resume_to_verified_restore() {
    let dir = test_dir("restart");
    let store_dir = dir.join("store");
    let persist_engine = || DedupConfig {
        persist: Some(PersistConfig::new(&store_dir).fsync(FsyncPolicy::Never)),
        ..small_engine()
    };
    let payload = |rec: &freqdedup::trace::ChunkRecord| synthetic_payload(rec.fp, rec.size);

    let (_, cipher) = encrypted_series(3);
    let b0 = cipher.get(0).unwrap();
    let b1 = cipher.get(1).unwrap();
    let b2 = cipher.get(2).unwrap();

    // ---- First server life: two clients, two committed backups, plus a
    // client that disconnects mid-backup without committing.
    let (addr, handle) = start(ServerConfig {
        engine: persist_engine(),
        log_file: Some(dir.join("server1.log")),
        ..ServerConfig::default()
    });
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut c = Client::connect(addr, "alpha").unwrap();
            c.upload_backup_payloads(b0, payload).unwrap();
            c.commit(&b0.label).unwrap();
        });
        scope.spawn(|| {
            let mut c = Client::connect(addr, "beta").unwrap();
            c.upload_backup_payloads(b1, payload).unwrap();
            c.commit(&b1.label).unwrap();
        });
        scope.spawn(|| {
            // Uploads half of b2 and vanishes mid-workload: observed by
            // the tap as an abandoned stream, never committed.
            let mut c = Client::connect(addr, "gamma").unwrap();
            let half = Backup::from_chunks(b2.label.clone(), b2.chunks[..b2.len() / 2].to_vec());
            c.upload_backup_payloads(&half, payload).unwrap();
            // no commit — connection drops here
        });
    });
    let mut closer = Client::connect(addr, "closer").unwrap();
    let stats_before = closer.stats().unwrap();
    closer.shutdown().unwrap();
    let summary1 = handle.join().unwrap();
    assert_eq!(summary1.commits, 2);

    // ---- Second server life on the same directory: graceful shutdown
    // checkpointed, so recovery must be bit-identical (PR 4 invariant).
    let (addr, handle) = start(ServerConfig {
        engine: persist_engine(),
        log_file: Some(dir.join("server2.log")),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr, "alpha-again").unwrap();
    let stats_after = c.stats().unwrap();
    assert_eq!(stats_after.unique_chunks, stats_before.unique_chunks);
    assert_eq!(stats_after.unique_bytes, stats_before.unique_bytes);
    assert_eq!(
        stats_after.committed_backups, 2,
        "manifests survive restart"
    );

    // The interrupted client resumes: re-uploads the whole of b2 (the
    // first half deduplicates against the stored chunks) and commits.
    let resume = c.upload_backup_payloads(b2, payload).unwrap();
    assert!(
        resume.duplicate > 0,
        "resumed upload should dedup against the pre-restart half"
    );
    c.commit(&b2.label).unwrap();

    // Verified restores across the restart: pre-restart and resumed
    // backups both come back bit-for-bit.
    c.verify_restore(b0, Some(&payload)).unwrap();
    c.verify_restore(b1, Some(&payload)).unwrap();
    c.verify_restore(b2, Some(&payload)).unwrap();

    c.shutdown().unwrap();
    let summary2 = handle.join().unwrap();
    assert_eq!(summary2.commits, 3);
    done(&dir);
}

// ---------------------------------------------------------------------------
// Streaming tap (incremental attack engine behind live traffic)
// ---------------------------------------------------------------------------

/// N ∈ {1, 4} clients commit interleaved backups in a deterministic global
/// order (ticket lock); after **every** commit the tap's running streaming
/// inference (both tie policies) is snapshotted through
/// [`freqdedup::server::server::TapView`] and must equal a batch series
/// recompute of exactly the committed prefix. The server then restarts on
/// its store directory: the tap resumes its incremental state from
/// `tap.fqis` bit-identically — segment layout and merge counters
/// included — and keeps folding further commits with the same
/// per-commit equivalence.
#[test]
fn streaming_tap_snapshots_match_batch_and_survive_restart() {
    use std::sync::{Condvar, Mutex};

    let (plain, cipher) = encrypted_series(6);
    let aux = plain.get(3).unwrap();
    let params = LocalityParams::new(2, 5, 50_000);
    let tape: Vec<Backup> = cipher.iter().cloned().collect();
    // Four backups committed before the restart, two after it.
    let (first, rest) = tape.split_at(4);

    // Sorted inference snapshot vs the batch recompute of the committed
    // prefix, for one (policy, inference) pair.
    let check = |live: &[(
        freqdedup::core::counting::TiePolicy,
        freqdedup::core::Inference,
    ); 2],
                 prefix: &[Backup],
                 ctx: &str| {
        for (policy, live_inf) in live {
            let batch = attacks::run_ciphertext_only_series(
                AttackKind::Locality,
                prefix,
                aux,
                &params.clone().tie_policy(*policy),
            );
            let mut a: Vec<_> = live_inf.iter().collect();
            let mut b: Vec<_> = batch.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "policy {policy:?}, {ctx}");
        }
    };

    for clients in [1usize, 4] {
        let dir = test_dir(&format!("streaming-tap-{clients}"));
        let store_dir = dir.join("store");
        let persist_engine = || DedupConfig {
            persist: Some(PersistConfig::new(&store_dir).fsync(FsyncPolicy::Never)),
            ..small_engine()
        };

        // ---- First server life: interleaved commits in ticket order,
        // with a live snapshot check after every single commit.
        let server = Server::bind(ServerConfig {
            workers: clients,
            engine: persist_engine(),
            log_file: Some(dir.join("server1.log")),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let tap = server.tap_handle();
        let handle = std::thread::spawn(move || server.run().expect("serve"));

        let turn = (Mutex::new(0usize), Condvar::new());
        std::thread::scope(|scope| {
            for c in 0..clients {
                let (turn, tap, check, params) = (&turn, &tap, &check, &params);
                scope.spawn(move || {
                    let mut client = Client::connect(addr, &format!("stream-{c}")).unwrap();
                    for (i, backup) in first.iter().enumerate() {
                        if i % clients != c {
                            continue;
                        }
                        // Wait for this backup's globally-ordered turn, so
                        // the commit order (and therefore the streaming
                        // state) is deterministic across client counts.
                        let mut t = turn.0.lock().unwrap();
                        while *t != i {
                            t = turn.1.wait(t).unwrap();
                        }
                        drop(t);
                        client.upload_backup(backup).unwrap();
                        client.commit(&backup.label).unwrap();
                        // Mid-stream snapshot at this exact commit point.
                        let live = tap.with_tap(|t| {
                            assert!(t.streaming_consistent());
                            assert_eq!(t.committed().len(), i + 1);
                            t.streaming_inference_both_policies(AttackKind::Locality, aux, params)
                        });
                        check(
                            &live,
                            &first[..=i],
                            &format!("commit {i}, {clients} clients"),
                        );
                        *turn.0.lock().unwrap() += 1;
                        turn.1.notify_all();
                    }
                });
            }
        });
        let pre_restart = tap.with_tap(|t| t.streaming().clone());
        let mut closer = Client::connect(addr, "closer").unwrap();
        closer.shutdown().unwrap();
        let summary = handle.join().unwrap();
        assert_eq!(summary.commits, first.len() as u64);

        // ---- Second life on the same directory: the tap resumes from
        // the persisted incremental state without replaying history.
        assert!(
            store_dir
                .join(freqdedup::server::server::STREAM_FILE)
                .exists(),
            "graceful shutdown must persist the incremental state"
        );
        let server = Server::bind(ServerConfig {
            workers: clients,
            engine: persist_engine(),
            log_file: Some(dir.join("server2.log")),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let tap = server.tap_handle();
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        tap.with_tap(|t| {
            assert!(t.streaming_consistent());
            assert_eq!(
                t.streaming(),
                &pre_restart,
                "resumed incremental state must be bit-identical, {clients} clients"
            );
        });

        // The resumed state keeps folding commits with the same
        // per-commit batch equivalence over the whole tape so far.
        let mut client = Client::connect(addr, "resumer").unwrap();
        for (j, backup) in rest.iter().enumerate() {
            client.upload_backup(backup).unwrap();
            client.commit(&backup.label).unwrap();
            let committed = first.len() + j + 1;
            let live = tap.with_tap(|t| {
                assert!(t.streaming_consistent());
                t.streaming_inference_both_policies(AttackKind::Locality, aux, &params)
            });
            check(
                &live,
                &tape[..committed],
                &format!("post-restart commit {committed}, {clients} clients"),
            );
        }
        client.shutdown().unwrap();
        handle.join().unwrap();
        done(&dir);
    }
}

// ---------------------------------------------------------------------------
// Degraded recovery: corrupted incremental state (PR 7)
// ---------------------------------------------------------------------------

/// Corrupting the persisted incremental tap state (`tap.fqis`) at several
/// byte offsets must not take the server down: it binds, rebuilds the
/// streaming state by replaying the manifest catalog — bit-identical to
/// the deterministic [`freqdedup::server::tap::AdversaryTap::load`]
/// replay, with inference (both tie policies) equal to the live run's —
/// and surfaces the degradation through the `tap_warnings` STATS counter.
#[test]
fn corrupt_stream_state_degrades_to_catalog_replay() {
    use freqdedup::server::tap::AdversaryTap;

    let dir = test_dir("corrupt-fqis");
    let store_dir = dir.join("store");
    let persist_engine = || DedupConfig {
        persist: Some(PersistConfig::new(&store_dir).fsync(FsyncPolicy::Never)),
        ..small_engine()
    };
    let (plain, cipher) = encrypted_series(4);
    let aux = plain.get(2).unwrap();
    let params = LocalityParams::new(2, 5, 50_000);

    // First life: commit the series and snapshot the live inference.
    let server = Server::bind(ServerConfig {
        engine: persist_engine(),
        log_file: Some(dir.join("server1.log")),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let mut c = Client::connect(addr, "writer").unwrap();
    for backup in &cipher {
        c.upload_backup(backup).unwrap();
        c.commit(&backup.label).unwrap();
    }
    c.shutdown().unwrap();
    handle.join().unwrap();

    let stream_path = store_dir.join(freqdedup::server::server::STREAM_FILE);
    let pristine = std::fs::read(&stream_path).unwrap();
    assert!(pristine.len() > 16, "state file should be non-trivial");

    // The deterministic replay oracle: what a from-catalog rebuild must
    // reproduce bit-identically. (The catalog is label-sorted on disk, so
    // the replay fold order is deterministic but may differ from arrival
    // order; the *inference* must still match the live run.)
    let good = AdversaryTap::load(&store_dir.join(freqdedup::server::server::TAP_FILE))
        .unwrap()
        .streaming()
        .clone();

    for offset in [0usize, pristine.len() / 2, pristine.len() - 1] {
        let mut bad = pristine.clone();
        bad[offset] ^= 0xff;
        std::fs::write(&stream_path, &bad).unwrap();

        let server = Server::bind(ServerConfig {
            engine: persist_engine(),
            log_file: Some(dir.join(format!("server-corrupt-{offset}.log"))),
            ..ServerConfig::default()
        })
        .expect("a corrupt tap.fqis must not prevent binding");
        let addr = server.local_addr().unwrap();
        let tap = server.tap_handle();
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        tap.with_tap(|t| {
            assert!(t.streaming_consistent(), "offset {offset}");
            assert_eq!(
                t.streaming(),
                &good,
                "catalog replay must rebuild the state bit-identically, offset {offset}"
            );
            // The rebuilt state's inference equals a batch recompute over
            // the tap's canonical (label-sorted) committed series — the
            // degraded path loses nothing observable to the adversary.
            let series: Vec<Backup> = t.series("degraded").backups;
            let live = t.streaming_inference_both_policies(AttackKind::Locality, aux, &params);
            for (policy, live_inf) in &live {
                let batch = attacks::run_ciphertext_only_series(
                    AttackKind::Locality,
                    &series,
                    aux,
                    &params.clone().tie_policy(*policy),
                );
                let mut a: Vec<_> = live_inf.iter().collect();
                let mut b: Vec<_> = batch.iter().collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "policy {policy:?}, offset {offset}");
            }
        });
        let mut c = Client::connect(addr, "checker").unwrap();
        let stats = c.stats().unwrap();
        assert!(
            stats.tap_warnings >= 1,
            "degraded recovery must surface in STATS, offset {offset}"
        );
        c.shutdown().unwrap();
        handle.join().unwrap();
        // Graceful shutdown rewrote a clean tap.fqis; the next iteration
        // re-corrupts it from the pristine copy.
    }

    // A truncated file degrades the same way.
    std::fs::write(&stream_path, &pristine[..pristine.len() / 3]).unwrap();
    let server = Server::bind(ServerConfig {
        engine: persist_engine(),
        log_file: Some(dir.join("server-truncated.log")),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let tap = server.tap_handle();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    tap.with_tap(|t| {
        assert!(t.streaming_consistent());
        assert_eq!(t.streaming(), &good);
    });
    let mut c = Client::connect(addr, "checker").unwrap();
    assert!(c.stats().unwrap().tap_warnings >= 1);
    c.shutdown().unwrap();
    handle.join().unwrap();

    // After the clean shutdown above, an intact file resumes silently.
    let (addr, handle) = start(ServerConfig {
        engine: persist_engine(),
        log_file: Some(dir.join("server-clean.log")),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr, "clean").unwrap();
    assert_eq!(c.stats().unwrap().tap_warnings, 0);
    c.shutdown().unwrap();
    handle.join().unwrap();
    done(&dir);
}

// ---------------------------------------------------------------------------
// Exactly-once commits (PR 7)
// ---------------------------------------------------------------------------

/// The client-chosen commit id makes COMMIT-MANIFEST idempotent: a replay
/// returns the recorded ack without re-ingesting, a session that dies
/// mid-upload after declaring its id is parked and its successor resumes
/// from the acked-batch watermark, and the applied-commit registry
/// survives a graceful restart via `tap.cids`.
#[test]
fn commit_ids_are_exactly_once_across_reconnects() {
    use freqdedup::server::client::{ResilientClient, RetryOptions};
    use freqdedup::server::proto::ResumeState;

    let dir = test_dir("exactly-once");
    let store_dir = dir.join("store");
    let persist_engine = || DedupConfig {
        persist: Some(PersistConfig::new(&store_dir).fsync(FsyncPolicy::Never)),
        ..small_engine()
    };
    let (addr, handle) = start(ServerConfig {
        workers: 2,
        engine: persist_engine(),
        log_file: Some(dir.join("server1.log")),
        ..ServerConfig::default()
    });

    let backup = Backup::from_chunks(
        "eo-backup",
        (0..300u64)
            .map(|i| freqdedup::trace::ChunkRecord::new(i % 120, 64))
            .collect(),
    );

    // ---- Commit once under a client-chosen commit id.
    let mut c = Client::connect(addr, "once").unwrap();
    let (state, acked, chunks) = c.resume(7).unwrap();
    assert_eq!((state, acked, chunks), (ResumeState::Fresh, 0, 0));
    c.upload_backup(&backup).unwrap();
    assert_eq!(c.commit_with_id(&backup.label, 7).unwrap(), 300);
    let stats_once = c.stats().unwrap();
    drop(c);

    // ---- A reconnect sees Committed; replaying the COMMIT (as a client
    // whose ack was lost would) changes nothing server-side.
    let mut c = Client::connect(addr, "once").unwrap();
    let (state, _, chunks) = c.resume(7).unwrap();
    assert_eq!((state, chunks), (ResumeState::Committed, 300));
    assert_eq!(c.commit_with_id(&backup.label, 7).unwrap(), 300);
    let stats_replay = c.stats().unwrap();
    assert_eq!(stats_replay.logical_chunks, stats_once.logical_chunks);
    assert_eq!(stats_replay.unique_chunks, stats_once.unique_chunks);
    assert_eq!(
        stats_replay.committed_backups, stats_once.committed_backups,
        "a replayed commit must not double-ingest"
    );
    drop(c);

    // ---- A session that declared its commit id and died mid-upload is
    // parked under the client name; the successor adopts the ingested
    // prefix and finishes without resending acked batches.
    let parked_backup = Backup::from_chunks(
        "parked-backup",
        (1000..1300u64)
            .map(|i| freqdedup::trace::ChunkRecord::new(i, 32))
            .collect(),
    );
    let half = Backup::from_chunks(
        parked_backup.label.clone(),
        parked_backup.chunks[..150].to_vec(),
    );
    let mut c1 = Client::connect(addr, "parker").unwrap().batch(50);
    assert_eq!(c1.resume(9).unwrap().0, ResumeState::Fresh);
    c1.upload_backup(&half).unwrap();
    drop(c1); // dies before COMMIT — the server parks the 3 acked batches

    // The park happens when the server-side session observes the EOF;
    // poll until the successor sees InProgress.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut c2 = loop {
        let mut c = Client::connect(addr, "parker").unwrap().batch(50);
        let (state, acked, _) = c.resume(9).unwrap();
        if state == ResumeState::InProgress {
            assert_eq!(
                acked, 3,
                "three 50-chunk batches were acked before the drop"
            );
            break c;
        }
        assert_eq!(state, ResumeState::Fresh);
        drop(c);
        assert!(
            std::time::Instant::now() < deadline,
            "interrupted session was never parked"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    let tail = Backup::from_chunks(
        parked_backup.label.clone(),
        parked_backup.chunks[150..].to_vec(),
    );
    c2.upload_backup(&tail).unwrap();
    assert_eq!(c2.commit_with_id(&parked_backup.label, 9).unwrap(), 300);
    // The tap observed exactly the full stream, in order, once.
    let observed = c2.restore(&parked_backup.label).unwrap().backup;
    assert_eq!(observed.chunks, parked_backup.chunks);
    drop(c2);

    // ---- ResilientClient against a healthy server: one attempt, no
    // retries, same exactly-once path.
    let resilient_backup = Backup::from_chunks(
        "resilient-backup",
        (2000..2200u64)
            .map(|i| freqdedup::trace::ChunkRecord::new(i, 48))
            .collect(),
    );
    let mut rc = ResilientClient::new(addr.to_string(), "resilient", RetryOptions::default());
    assert_eq!(rc.upload_commit(&resilient_backup, 11).unwrap(), 200);
    assert_eq!(rc.report().attempts, 1);
    assert_eq!(rc.report().retries, 0);
    assert_eq!(rc.report().connects, 1);
    drop(rc);

    // ---- The applied-commit registry survives a graceful restart.
    let mut closer = Client::connect(addr, "closer").unwrap();
    closer.shutdown().unwrap();
    handle.join().unwrap();
    assert!(
        store_dir
            .join(freqdedup::server::server::CIDS_FILE)
            .exists(),
        "graceful shutdown must persist the commit registry"
    );

    let (addr, handle) = start(ServerConfig {
        workers: 2,
        engine: persist_engine(),
        log_file: Some(dir.join("server2.log")),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr, "once").unwrap();
    let (state, _, chunks) = c.resume(7).unwrap();
    assert_eq!(
        (state, chunks),
        (ResumeState::Committed, 300),
        "commit ids survive restart"
    );
    let (state, _, chunks) = c.resume(9).unwrap();
    assert_eq!((state, chunks), (ResumeState::Committed, 300));
    let (state, _, chunks) = c.resume(11).unwrap();
    assert_eq!((state, chunks), (ResumeState::Committed, 200));
    c.shutdown().unwrap();
    handle.join().unwrap();
    done(&dir);
}

// ---------------------------------------------------------------------------
// Storage lifecycle over the wire (PR 10)
// ---------------------------------------------------------------------------

/// DELETE-BACKUP, GC and REKEY round-trip the wire with exactly-once
/// semantics riding the commit-id registry, epoch fencing refuses reads
/// from sessions that negotiated before a rekey, and the whole lifecycle
/// state (deletion, registry entries, epoch) survives a graceful restart
/// — a restarted server needs the epoch secret to open the store at all.
#[test]
fn lifecycle_ops_round_trip_with_exactly_once_and_epoch_fencing() {
    let dir = test_dir("lifecycle-wire");
    let store_dir = dir.join("store");
    let secret = b"reed-epoch-secret";
    let persist_engine = || DedupConfig {
        persist: Some(PersistConfig::new(&store_dir).fsync(FsyncPolicy::Never)),
        ..small_engine()
    };
    let payload = |rec: &freqdedup::trace::ChunkRecord| synthetic_payload(rec.fp, rec.size);
    let mk = |label: &str, fps: std::ops::Range<u64>| {
        Backup::from_chunks(
            label,
            fps.map(|i| freqdedup::trace::ChunkRecord::new(i, 64))
                .collect(),
        )
    };
    // The victim shares boundary chunks with both survivors; 100..180 are
    // exclusive to it and must be physically reclaimed by GC.
    let keep_a = mk("keep-a", 0..100);
    let victim = mk("victim", 80..200);
    let keep_b = mk("keep-b", 180..260);

    let (addr, handle) = start(ServerConfig {
        engine: persist_engine(),
        log_file: Some(dir.join("server1.log")),
        ..ServerConfig::default()
    });

    let mut c = Client::connect(addr, "lifecycle").unwrap();
    for b in [&keep_a, &victim, &keep_b] {
        c.upload_backup_payloads(b, payload).unwrap();
        c.commit(&b.label).unwrap();
    }

    // A session that negotiates *before* the rekey, to be fenced later.
    let mut stale = Client::connect(addr, "pre-rekey").unwrap();
    stale.verify_restore(&keep_a, Some(&payload)).unwrap();

    // ---- DELETE-BACKUP: releases the recipe, shrinks the tap catalog.
    let (chunks, bytes) = c.delete_backup("victim", 21).unwrap();
    assert_eq!((chunks, bytes), (120, 120 * 64));
    // Replaying the same commit id returns the recorded ack verbatim,
    // even though the label no longer resolves.
    assert_eq!(c.delete_backup("victim", 21).unwrap(), (120, 120 * 64));
    // A *fresh* delete of the now-unknown label is refused.
    match c.delete_backup("victim", 29) {
        Err(ClientError::Server { code: cd, .. }) => assert_eq!(cd, code::UNKNOWN_LABEL),
        other => panic!("expected UNKNOWN_LABEL, got {other:?}"),
    }
    // The tap catalog no longer serves the deleted stream.
    match c.restore("victim") {
        Err(ClientError::Server { code: cd, .. }) => assert_eq!(cd, code::UNKNOWN_LABEL),
        other => panic!("expected UNKNOWN_LABEL, got {other:?}"),
    }

    // ---- GC: physically reclaims the victim-exclusive chunks.
    let summary = c.gc(1000, 22).unwrap();
    assert!(summary.containers_dropped > 0, "GC dropped nothing");
    assert!(
        summary.reclaimed_bytes >= 80 * 64,
        "exclusive chunks not reclaimed: {summary:?}"
    );
    assert_eq!(
        c.gc(1000, 22).unwrap(),
        summary,
        "GC replay must be a no-op"
    );
    // Survivors restore bit-for-bit; a reclaimed chunk is gone.
    c.verify_restore(&keep_a, Some(&payload)).unwrap();
    c.verify_restore(&keep_b, Some(&payload)).unwrap();
    assert!(c
        .get_chunk(freqdedup::trace::Fingerprint(150))
        .unwrap()
        .is_none());

    // ---- REKEY: an empty secret is refused outright.
    match c.rekey(b"", 99) {
        Err(ClientError::Server { code: cd, .. }) => assert_eq!(cd, code::BAD_STATE),
        other => panic!("expected BAD_STATE, got {other:?}"),
    }
    let (epoch, rewritten) = c.rekey(secret, 23).unwrap();
    assert_eq!(epoch, 1);
    assert!(rewritten > 0, "rekey rewrote nothing");
    assert_eq!(
        c.rekey(secret, 23).unwrap(),
        (epoch, rewritten),
        "rekey replay must be a no-op"
    );
    // The rekeying session reads on; the pre-rekey session is fenced.
    c.verify_restore(&keep_a, Some(&payload)).unwrap();
    match stale.restore("keep-a") {
        Err(ClientError::Server { code: cd, .. }) => assert_eq!(cd, code::STALE_EPOCH),
        other => panic!("expected STALE_EPOCH, got {other:?}"),
    }
    // The fence is per-session, not per-connection-slot: reconnecting
    // renegotiates at the current epoch and reads fine.
    drop(stale);
    let mut fresh = Client::connect(addr, "post-rekey").unwrap();
    fresh.verify_restore(&keep_b, Some(&payload)).unwrap();
    drop(fresh);

    let stats1 = c.stats().unwrap();
    assert_eq!(stats1.committed_backups, 3, "commit counter is monotonic");
    c.shutdown().unwrap();
    handle.join().unwrap();

    // ---- Restart: the store now *requires* the epoch secret.
    assert!(
        Server::bind(ServerConfig {
            engine: persist_engine(),
            log_file: Some(dir.join("server-nokey.log")),
            ..ServerConfig::default()
        })
        .is_err(),
        "binding without the epoch secret must fail"
    );
    let (addr, handle) = start(ServerConfig {
        engine: DedupConfig {
            persist: Some(
                PersistConfig::new(&store_dir)
                    .fsync(FsyncPolicy::Never)
                    .epoch_secret(1, secret.to_vec()),
            ),
            ..small_engine()
        },
        log_file: Some(dir.join("server2.log")),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr, "lifecycle").unwrap();
    // The catalog shrank for good: only the survivors are served.
    assert_eq!(c.stats().unwrap().committed_backups, 2);
    match c.restore("victim") {
        Err(ClientError::Server { code: cd, .. }) => assert_eq!(cd, code::UNKNOWN_LABEL),
        other => panic!("expected UNKNOWN_LABEL, got {other:?}"),
    }
    // The applied-op registry survived: all three lifecycle replays
    // return their recorded acks without touching the store.
    assert_eq!(c.delete_backup("victim", 21).unwrap(), (120, 120 * 64));
    assert_eq!(c.gc(1000, 22).unwrap(), summary);
    assert_eq!(c.rekey(secret, 23).unwrap(), (epoch, rewritten));
    // A fresh conservative GC pass finds nothing dead.
    let idle = c.gc(0, 31).unwrap();
    assert_eq!(idle.containers_dropped, 0);
    assert_eq!(idle.reclaimed_bytes, 0);
    // Restores still verify bit-for-bit under the new epoch.
    c.verify_restore(&keep_a, Some(&payload)).unwrap();
    c.verify_restore(&keep_b, Some(&payload)).unwrap();
    c.shutdown().unwrap();
    handle.join().unwrap();
    done(&dir);
}
