//! A complete encrypted-deduplication store session on real bytes:
//! convergent-MLE encryption, DDFS-style deduplicated storage with payloads
//! **persisted to disk**, sealed file/key recipes, and a verified restore
//! *after a full store restart* — plus the RCE baseline demonstration that
//! even *randomized* MLE leaks frequencies through its deduplication tags
//! (§8).
//!
//! Run with: `cargo run --release --example encrypted_store`

use freqdedup::chunking::{cdc::CdcParams, content_fingerprint, records_from_bytes};
use freqdedup::mle::rce::Rce;
use freqdedup::mle::recipes::{open, seal, FileRecipe, KeyRecipe};
use freqdedup::mle::{convergent::Convergent, Mle};
use freqdedup::store::engine::{DedupConfig, DedupEngine};
use freqdedup::store::persist::PersistConfig;
use freqdedup::trace::ChunkRecord;
use std::collections::HashMap;

fn main() {
    // A "file" with internal duplication: a 100 KiB segment repeated three
    // times (think: an embedded archive stored at three paths) plus a
    // unique tail. Content-defined chunking realigns inside each repeat, so
    // the interior chunks deduplicate.
    let segment: Vec<u8> = {
        let mut x = 0x1234_5678_9abc_def0u64;
        (0..100 * 1024)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect()
    };
    let mut file = Vec::new();
    for _ in 0..3 {
        file.extend_from_slice(&segment);
    }
    file.extend((0..50 * 1024).map(|i| (i % 251) as u8));
    println!("file: {} bytes", file.len());

    // Chunk, encrypt with convergent MLE, store ciphertext payloads in a
    // *durable* engine: sealed containers land in per-container log files
    // under `store_dir`, committed through the manifest journal.
    let cdc = CdcParams::with_avg_size(4096).expect("valid parameters");
    let records = records_from_bytes(&file, &cdc);
    println!(
        "chunked: {} plaintext chunks, {} B average",
        records.len(),
        file.len() / records.len()
    );
    let mle = Convergent::new();
    let store_dir =
        std::env::temp_dir().join(format!("freqdedup-encrypted-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let config = DedupConfig {
        container_bytes: 64 * 1024, // small containers so the demo seals several
        persist: Some(PersistConfig::new(&store_dir)),
        ..DedupConfig::paper(8 * 1024 * 1024, 100_000)
    };
    let mut engine = DedupEngine::open(config.clone()).unwrap();

    let mut file_recipe = FileRecipe::new("demo/file.bin");
    let mut key_recipe = KeyRecipe::new();
    let spans = freqdedup::chunking::cdc::chunk_spans(&file, &cdc);
    for span in spans {
        let plain = &file[span];
        let (key, ciphertext) = mle.encrypt(plain).expect("convergent never fails");
        let cipher_fp = content_fingerprint(&ciphertext);
        let record = ChunkRecord::new(cipher_fp, ciphertext.len() as u32);
        engine.process_with_payload(record, &ciphertext);
        file_recipe.chunks.push(record);
        key_recipe.keys.push(key);
    }
    engine.finish();

    let stats = engine.stats();
    println!(
        "stored: {} logical chunks -> {} unique ({:.1}% saving from intra-file duplicates)",
        stats.logical_chunks,
        stats.unique_chunks,
        stats.storage_saving() * 100.0
    );

    // Seal the recipes under the user's own key (conventional encryption —
    // the adversary of the threat model never reads these).
    let user_key = [42u8; 32];
    let sealed_fr = seal(&user_key, &[1u8; 16], &file_recipe.to_bytes());
    let sealed_kr = seal(&user_key, &[2u8; 16], &key_recipe.to_bytes());

    // Shut the store down... and recover it from disk: `close()` flushes
    // the open container and snapshots the index; `open()` replays the
    // manifest journal and resumes exactly where the old process stopped.
    let stats_before = engine.stats();
    let containers_before = engine.containers().sealed_count();
    engine.close().unwrap();
    let engine = DedupEngine::open(config).unwrap();
    assert_eq!(engine.stats(), stats_before);
    println!(
        "restart: recovered {} sealed containers from {} (stats bit-identical)",
        containers_before,
        store_dir.display()
    );

    // Restore: open recipes, fetch ciphertext chunks from the *recovered*
    // store, decrypt, reassemble.
    let fr = FileRecipe::from_bytes(&open(&user_key, &sealed_fr).unwrap()).unwrap();
    let kr = KeyRecipe::from_bytes(&open(&user_key, &sealed_kr).unwrap()).unwrap();
    let mut restored = Vec::new();
    for (record, key) in fr.chunks.iter().zip(&kr.keys) {
        let ciphertext = engine.read_chunk(record.fp).expect("chunk stored");
        restored.extend_from_slice(&mle.decrypt_with_key(key, ciphertext));
    }
    assert_eq!(restored, file);
    println!(
        "restore: OK ({} bytes, byte-identical after restart)",
        restored.len()
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    // RCE baseline: randomized bodies, but deterministic dedup tags still
    // expose the frequency distribution (§8).
    let rce = Rce::new();
    let mut tag_counts: HashMap<[u8; 32], u32> = HashMap::new();
    for (i, span) in freqdedup::chunking::cdc::chunk_spans(&file, &cdc)
        .into_iter()
        .enumerate()
    {
        let mut l = [0u8; 32];
        l[..8].copy_from_slice(&(i as u64).to_le_bytes()); // fresh randomness
        let ct = rce.encrypt(&file[span], &l);
        *tag_counts.entry(ct.tag).or_insert(0) += 1;
    }
    let max_tag = tag_counts.values().max().unwrap();
    println!(
        "RCE tags: {} distinct tags, most frequent appears {max_tag}x — the \
         frequency distribution survives randomized encryption",
        tag_counts.len()
    );
}
