//! A complete *networked* encrypted-deduplication workflow on loopback
//! (127.0.0.1 only — CI-safe), driven end-to-end from **raw file bytes**:
//!
//! 1. generate an evolving synthetic file tree and run the real client
//!    pipeline on every snapshot — gear-hash FastCDC chunking (parallel,
//!    bit-identical to sequential), convergent MLE encryption, ciphertext
//!    fingerprinting;
//! 2. start the dedup service on a durable store directory and have two
//!    clients concurrently upload the encrypted streams (batched,
//!    pipelined) and commit manifests;
//! 3. restart the server — graceful shutdown checkpointed everything, so
//!    recovery needs no crash repair — restore every backup and **decrypt
//!    it back to the original bytes** with the client-side key store,
//!    then upload one post-restart incremental snapshot;
//! 4. play the adversary: load the provider-side tap (`tap.fqdt`), read
//!    the per-backup chunk-length sequences (the boundary-leakage
//!    observable that survives MLE), and run the locality attack against
//!    the live ciphertext traffic, scoring it against ground truth.
//!
//! Run with: `cargo run --release --example remote_backup`

use freqdedup::chunking::fastcdc::FastCdc;
use freqdedup::chunking::records_from_bytes;
use freqdedup::core::attacks::locality::LocalityParams;
use freqdedup::core::attacks::{self, AttackKind};
use freqdedup::core::metrics::score;
use freqdedup::datasets::synthetic::{label, SyntheticConfig, SyntheticSnapshots};
use freqdedup::mle::convergent::Convergent;
use freqdedup::mle::trace_enc::GroundTruth;
use freqdedup::server::client::{Client, EncodedStream};
use freqdedup::server::server::{Server, ServerConfig, TAP_FILE};
use freqdedup::server::tap::AdversaryTap;
use freqdedup::store::engine::DedupConfig;
use freqdedup::store::persist::{FsyncPolicy, PersistConfig};
use freqdedup::trace::par::ParConfig;
use freqdedup::trace::Backup;

fn server_config(store_dir: &std::path::Path, log: &std::path::Path) -> ServerConfig {
    ServerConfig {
        workers: 4,
        shards: 4,
        engine: DedupConfig {
            container_bytes: 64 * 1024,
            persist: Some(PersistConfig::new(store_dir).fsync(FsyncPolicy::Never)),
            ..DedupConfig::paper(8 * 1024 * 1024, 1_000_000)
        },
        log_file: Some(log.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn start(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<freqdedup::server::server::ServeSummary>,
) {
    let server = Server::bind(config).expect("bind loopback server");
    let addr = server.local_addr().expect("local addr");
    (
        addr,
        std::thread::spawn(move || server.run().expect("serve")),
    )
}

/// One snapshot pushed through the client-side pipeline: the raw bytes,
/// the encrypted upload stream, and the plaintext chunk records the
/// adversary will later be scored against.
struct Snapshot {
    data: Vec<u8>,
    stream: EncodedStream,
    plain: Backup,
}

fn encode_snapshot(
    snaps: &SyntheticSnapshots,
    chunker: &FastCdc,
    mle: &Convergent,
    par: ParConfig,
    truth: &mut GroundTruth,
) -> Snapshot {
    let name = label(snaps.snapshot_index());
    let mut data = Vec::new();
    for file in snaps.files() {
        data.extend_from_slice(&file.data);
    }
    let stream = EncodedStream::encode(&name, &data, chunker, mle, par).expect("mle encrypt");
    let plain = Backup::from_chunks(&name, records_from_bytes(&data, chunker));
    assert_eq!(stream.backup.len(), plain.len());
    for (c, p) in stream.backup.chunks.iter().zip(&plain.chunks) {
        assert_eq!(c.size, p.size, "MLE must be length-preserving");
        truth.record(c.fp, p.fp);
    }
    Snapshot {
        data,
        stream,
        plain,
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("freqdedup-remote-backup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store_dir = dir.join("store");

    // ---- Phase 0: the client pipeline on raw bytes. ----
    // An evolving synthetic file tree; every snapshot is chunked with
    // gear-hash FastCDC (paper 8 KB parameters, parallel) and encrypted
    // with convergent MLE. The server will only ever see ciphertext; the
    // ground truth stays with us for scoring the adversary at the end.
    let chunker = FastCdc::paper_8kb();
    let mle = Convergent::new();
    let par = ParConfig::auto();
    let mut truth = GroundTruth::new();
    let mut snaps = SyntheticSnapshots::new(SyntheticConfig::scaled(6 * 1024 * 1024));
    let mut snapshots = Vec::new();
    for i in 0..4 {
        if i > 0 {
            snaps.advance();
        }
        let snap = encode_snapshot(&snaps, &chunker, &mle, par, &mut truth);
        println!(
            "{}: {} files, {:.1} MiB -> {} chunks ({} unique ciphertexts, mean {} B)",
            snap.plain.label,
            snaps.files().len(),
            snap.data.len() as f64 / (1024.0 * 1024.0),
            snap.stream.backup.len(),
            snap.stream.unique_chunks(),
            snap.data.len() / snap.stream.backup.len().max(1),
        );
        snapshots.push(snap);
    }

    // ---- Phase 1: serve, two concurrent clients, commit 4 backups. ----
    let (addr, handle) = start(server_config(&store_dir, &dir.join("server1.log")));
    println!("\nserver up on {addr} (store: {})", store_dir.display());
    std::thread::scope(|scope| {
        for c in 0..2usize {
            let snapshots = &snapshots;
            scope.spawn(move || {
                let mut client = Client::connect(addr, &format!("client-{c}")).unwrap();
                for (i, snap) in snapshots.iter().enumerate() {
                    if i % 2 == c {
                        let up = client.upload_bytes(&snap.stream).unwrap();
                        client.commit(&snap.stream.backup.label).unwrap();
                        println!(
                            "client-{c}: committed {:?} — {} chunks ({} unique, {} dedup'd) in {} batches",
                            snap.stream.backup.label, up.chunks, up.unique, up.duplicate, up.batches
                        );
                    }
                }
            });
        }
    });
    let mut closer = Client::connect(addr, "closer").unwrap();
    let stats = closer.stats().unwrap();
    println!(
        "service: {} logical / {} unique chunks, {} containers sealed, {} manifests",
        stats.logical_chunks, stats.unique_chunks, stats.containers_sealed, stats.committed_backups
    );
    closer.shutdown().unwrap();
    let summary = handle.join().unwrap();
    println!(
        "graceful shutdown: drained {} sessions, checkpointed {} unique chunks",
        summary.sessions, summary.stats.unique_chunks
    );

    // ---- Phase 2: restart, decrypting restore, incremental upload. ----
    let (addr, handle) = start(server_config(&store_dir, &dir.join("server2.log")));
    println!("\nserver restarted on {addr} (recovered, no crash repair needed)");
    let mut client = Client::connect(addr, "client-0").unwrap();
    let recovered = client.stats().unwrap();
    assert_eq!(recovered.unique_chunks, stats.unique_chunks);
    for snap in &snapshots {
        let restored = client.restore(&snap.stream.backup.label).unwrap();
        let bytes = snap.stream.decode(&restored, &mle).unwrap();
        assert_eq!(
            bytes, snap.data,
            "restore must decrypt to the original bytes"
        );
        println!(
            "restored {:?} and decrypted it back to the original {} bytes",
            snap.stream.backup.label,
            bytes.len()
        );
    }
    snaps.advance();
    let latest = encode_snapshot(&snaps, &chunker, &mle, par, &mut truth);
    let up = client.upload_bytes(&latest.stream).unwrap();
    client.commit(&latest.stream.backup.label).unwrap();
    println!(
        "incremental {:?}: {} chunks, {:.1}% deduplicated against pre-restart state",
        latest.stream.backup.label,
        up.chunks,
        100.0 * up.duplicate as f64 / up.chunks.max(1) as f64
    );
    let restored = client.restore(&latest.stream.backup.label).unwrap();
    assert_eq!(latest.stream.decode(&restored, &mle).unwrap(), latest.data);
    snapshots.push(latest);
    client.shutdown().unwrap();
    handle.join().unwrap();

    // ---- Phase 3: the adversary reads its tap. ----
    // The provider-side tap was persisted beside the store; it holds the
    // observed per-session ciphertext streams — the exact §3 adversary
    // view — as ordinary backups the attacks run on unchanged. The
    // chunk-length sequences are the boundary-leakage observable:
    // content-defined boundaries survive MLE byte for byte.
    let tap = AdversaryTap::load(&store_dir.join(TAP_FILE)).unwrap();
    let observed = tap.series("tapped");
    println!(
        "\nadversary tap: {} committed manifests, {} observed chunks",
        observed.len(),
        tap.observed_chunks()
    );
    for (name, lengths) in tap.length_sequences() {
        let total: u64 = lengths.iter().map(|&l| u64::from(l)).sum();
        println!(
            "  {name}: {} chunk lengths observed (sum {total} B, mean {} B)",
            lengths.len(),
            total / lengths.len().max(1) as u64
        );
    }
    let target = observed.latest().unwrap();
    let aux = &snapshots[2].plain; // the adversary's auxiliary: an older plaintext snapshot
    let params = LocalityParams::default();
    for (policy, inference) in
        attacks::run_ciphertext_only_both_policies(AttackKind::Locality, target, aux, &params)
    {
        let report = score(&inference, target, &truth);
        println!(
            "locality attack on live traffic ({policy:?} ties): \
             {}/{} unique ciphertext chunks inferred correctly — {:.1}% inference rate",
            report.correct,
            report.total_unique,
            100.0 * report.rate
        );
    }
    println!(
        "\n(the tap is the provider's own manifest catalog — serving restores and \
              leaking rankings are the same metadata)"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
