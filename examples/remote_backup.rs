//! A complete *networked* encrypted-deduplication workflow on loopback
//! (127.0.0.1 only — CI-safe):
//!
//! 1. start the dedup service on a durable store directory;
//! 2. two clients concurrently upload an evolving backup series of
//!    MLE-encrypted chunks (batched, pipelined) and commit manifests;
//! 3. restart the server — graceful shutdown checkpointed everything, so
//!    recovery needs no crash repair — and run a **verified restore** of
//!    every backup plus one post-restart incremental upload;
//! 4. play the adversary: load the provider-side tap (`tap.fqdt`, the
//!    per-session observed ciphertext streams) and run the locality
//!    attack against the live traffic, scoring it against ground truth.
//!
//! Run with: `cargo run --release --example remote_backup`

use freqdedup::core::attacks::locality::LocalityParams;
use freqdedup::core::attacks::{self, AttackKind};
use freqdedup::core::metrics::score;
use freqdedup::datasets::fsl::{generate, FslConfig};
use freqdedup::mle::trace_enc::{DeterministicTraceEncryptor, GroundTruth};
use freqdedup::server::client::{synthetic_payload, Client};
use freqdedup::server::server::{Server, ServerConfig, TAP_FILE};
use freqdedup::server::tap::AdversaryTap;
use freqdedup::store::engine::DedupConfig;
use freqdedup::store::persist::{FsyncPolicy, PersistConfig};
use freqdedup::trace::{BackupSeries, ChunkRecord};

fn server_config(store_dir: &std::path::Path, log: &std::path::Path) -> ServerConfig {
    ServerConfig {
        workers: 4,
        shards: 4,
        engine: DedupConfig {
            container_bytes: 64 * 1024,
            persist: Some(PersistConfig::new(store_dir).fsync(FsyncPolicy::Never)),
            ..DedupConfig::paper(8 * 1024 * 1024, 1_000_000)
        },
        log_file: Some(log.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn start(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<freqdedup::server::server::ServeSummary>,
) {
    let server = Server::bind(config).expect("bind loopback server");
    let addr = server.local_addr().expect("local addr");
    (
        addr,
        std::thread::spawn(move || server.run().expect("serve")),
    )
}

fn payload(rec: &ChunkRecord) -> Vec<u8> {
    synthetic_payload(rec.fp, rec.size)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("freqdedup-remote-backup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store_dir = dir.join("store");

    // An evolving FSL-like series, encrypted in fingerprint space — the
    // clients upload only ciphertext; the ground truth stays with us for
    // scoring the adversary at the end.
    let plain = generate(&FslConfig {
        users: 2,
        backups: 5,
        ..FslConfig::scaled(1500)
    });
    let enc = DeterministicTraceEncryptor::new(b"remote-backup-demo-secret");
    let mut cipher = BackupSeries::new("cipher");
    let mut truth = GroundTruth::new();
    for backup in &plain {
        let out = enc.encrypt_backup(backup);
        truth.merge(&out.truth);
        cipher.push(out.backup);
    }
    println!(
        "series: {} backups, {} logical chunks ({} in the latest)",
        cipher.len(),
        cipher.logical_chunks(),
        cipher.latest().unwrap().len()
    );

    // ---- Phase 1: serve, two concurrent clients, commit 4 backups. ----
    let (addr, handle) = start(server_config(&store_dir, &dir.join("server1.log")));
    println!("\nserver up on {addr} (store: {})", store_dir.display());
    std::thread::scope(|scope| {
        for c in 0..2usize {
            let cipher = &cipher;
            scope.spawn(move || {
                let mut client = Client::connect(addr, &format!("client-{c}")).unwrap();
                for (i, backup) in cipher.iter().take(4).enumerate() {
                    if i % 2 == c {
                        let up = client.upload_backup_payloads(backup, payload).unwrap();
                        client.commit(&backup.label).unwrap();
                        println!(
                            "client-{c}: committed {:?} — {} chunks ({} unique, {} dedup'd) in {} batches",
                            backup.label, up.chunks, up.unique, up.duplicate, up.batches
                        );
                    }
                }
            });
        }
    });
    let mut closer = Client::connect(addr, "closer").unwrap();
    let stats = closer.stats().unwrap();
    println!(
        "service: {} logical / {} unique chunks, {} containers sealed, {} manifests",
        stats.logical_chunks, stats.unique_chunks, stats.containers_sealed, stats.committed_backups
    );
    closer.shutdown().unwrap();
    let summary = handle.join().unwrap();
    println!(
        "graceful shutdown: drained {} sessions, checkpointed {} unique chunks",
        summary.sessions, summary.stats.unique_chunks
    );

    // ---- Phase 2: restart, verified restore, incremental upload. ----
    let (addr, handle) = start(server_config(&store_dir, &dir.join("server2.log")));
    println!("\nserver restarted on {addr} (recovered, no crash repair needed)");
    let mut client = Client::connect(addr, "client-0").unwrap();
    let recovered = client.stats().unwrap();
    assert_eq!(recovered.unique_chunks, stats.unique_chunks);
    for backup in cipher.iter().take(4) {
        client.verify_restore(backup, Some(&payload)).unwrap();
        println!(
            "verified restore of {:?} ({} chunks)",
            backup.label,
            backup.len()
        );
    }
    let latest = cipher.latest().unwrap();
    let up = client.upload_backup_payloads(latest, payload).unwrap();
    client.commit(&latest.label).unwrap();
    println!(
        "incremental {:?}: {} chunks, {:.1}% deduplicated against pre-restart state",
        latest.label,
        up.chunks,
        100.0 * up.duplicate as f64 / up.chunks.max(1) as f64
    );
    client.verify_restore(latest, Some(&payload)).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();

    // ---- Phase 3: the adversary reads its tap. ----
    // The provider-side tap was persisted beside the store; it holds the
    // observed per-session ciphertext streams — the exact §3 adversary
    // view — as ordinary backups the attacks run on unchanged.
    let tap = AdversaryTap::load(&store_dir.join(TAP_FILE)).unwrap();
    let observed = tap.series("tapped");
    println!(
        "\nadversary tap: {} committed manifests, {} observed chunks",
        observed.len(),
        tap.observed_chunks()
    );
    let target = observed.latest().unwrap();
    let aux = plain.get(3).unwrap(); // the adversary's auxiliary: an older plaintext backup
    let params = LocalityParams::default();
    for (policy, inference) in
        attacks::run_ciphertext_only_both_policies(AttackKind::Locality, target, aux, &params)
    {
        let report = score(&inference, target, &truth);
        println!(
            "locality attack on live traffic ({policy:?} ties): \
             {}/{} unique ciphertext chunks inferred correctly — {:.1}% inference rate",
            report.correct,
            report.total_unique,
            100.0 * report.rate
        );
    }
    println!(
        "\n(the tap is the provider's own manifest catalog — serving restores and \
              leaking rankings are the same metadata)"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
