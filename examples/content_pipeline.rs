//! End-to-end content pipeline on real bytes: synthetic disk-image
//! snapshots → Rabin content-defined chunking → fingerprints → known-
//! plaintext attack with the initial snapshot as *public* auxiliary
//! information (the paper's synthetic-dataset scenario, §5.1).
//!
//! Run with: `cargo run --release --example content_pipeline`

use freqdedup::chunking::cdc::CdcParams;
use freqdedup::core::attacks::{self, AttackKind};
use freqdedup::core::metrics;
use freqdedup::datasets::synthetic::{SyntheticConfig, SyntheticSnapshots};
use freqdedup::mle::trace_enc::DeterministicTraceEncryptor;

fn main() {
    // A ~8 MiB synthetic "disk image" evolved for 6 snapshots by the
    // Lillibridge method: 2% of files modified in 2.5% of their content,
    // plus new data, per snapshot.
    let mut config = SyntheticConfig::scaled(8 * 1024 * 1024);
    config.snapshots = 6;
    let cdc = CdcParams::paper_8kb();

    let mut state = SyntheticSnapshots::new(config.clone());
    let public_image = state.to_backup(&cdc); // snapshot 0 is public
    println!(
        "initial snapshot: {} files, {} chunks",
        state.files().len(),
        public_image.len()
    );

    for _ in 1..config.snapshots {
        state.advance();
    }
    let latest = state.to_backup(&cdc);
    println!(
        "latest snapshot:  {} files, {} chunks",
        state.files().len(),
        latest.len()
    );

    // Deterministic MLE on the latest snapshot; adversary taps ciphertext.
    let mle = DeterministicTraceEncryptor::new(b"secret");
    let observed = mle.encrypt_backup(&latest);

    // Ciphertext-only attack using the PUBLIC initial image as auxiliary
    // information (no private leak needed at all).
    let params = attacks::locality::LocalityParams::default();
    for kind in [
        AttackKind::Basic,
        AttackKind::Locality,
        AttackKind::Advanced,
    ] {
        let inferred = attacks::run_ciphertext_only(kind, &observed.backup, &public_image, &params);
        let report = metrics::score(&inferred, &observed.backup, &observed.truth);
        println!(
            "{kind:<24} infers {:6.2}% of the latest snapshot from the public image",
            report.rate * 100.0
        );
    }

    // Known-plaintext mode: a 0.1% leak (e.g. a few known files).
    let leaked = metrics::leak_pairs(&observed.backup, &observed.truth, 0.001, 99);
    let inferred = attacks::run_known_plaintext(
        AttackKind::Advanced,
        &observed.backup,
        &public_image,
        &leaked,
        &attacks::locality::LocalityParams::known_plaintext_default(),
    );
    let report = metrics::score(&inferred, &observed.backup, &observed.truth);
    println!(
        "advanced + 0.1% leakage  infers {:6.2}%",
        report.rate * 100.0
    );
}
