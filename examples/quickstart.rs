//! Quickstart: the paper's core result in ~60 lines.
//!
//! Generates an FSL-like backup series, encrypts the latest backup with
//! deterministic MLE, runs all three inference attacks using a prior backup
//! as auxiliary information, then applies the combined MinHash + scrambling
//! defense and shows the attack collapsing.
//!
//! Run with: `cargo run --release --example quickstart`

use freqdedup::chunking::segment::SegmentParams;
use freqdedup::core::attacks::{self, AttackKind};
use freqdedup::core::defense::MinHashScrambleScheme;
use freqdedup::core::metrics;
use freqdedup::datasets::fsl::{generate, FslConfig};
use freqdedup::mle::trace_enc::DeterministicTraceEncryptor;

fn main() {
    // 1. A backup workload: 6 users, 5 monthly full backups.
    let series = generate(&FslConfig::scaled(5_000));
    let aux = series.get(3).expect("prior backup"); // the adversary's knowledge
    let target = series.latest().expect("latest backup");
    println!(
        "auxiliary backup: {} ({} chunks) -> target: {} ({} chunks)",
        aux.label,
        aux.len(),
        target.label,
        target.len()
    );

    // 2. The storage system encrypts deterministically (MLE); the adversary
    //    taps the ciphertext chunk stream before deduplication.
    let mle = DeterministicTraceEncryptor::new(b"system-wide secret");
    let observed = mle.encrypt_backup(target);

    // 3. Frequency-analysis attacks (ciphertext-only mode).
    let params = attacks::locality::LocalityParams::default();
    println!("\nagainst deterministic MLE:");
    for kind in AttackKind::ALL {
        let inferred = attacks::run_ciphertext_only(kind, &observed.backup, aux, &params);
        let report = metrics::score(&inferred, &observed.backup, &observed.truth);
        println!(
            "  {kind:<24} inference rate {:6.2}%  ({} of {} unique chunks)",
            report.rate * 100.0,
            report.correct,
            report.total_unique
        );
    }

    // 4. The defense: MinHash encryption + scrambling (§6).
    let scheme = MinHashScrambleScheme::combined(SegmentParams::paper_default(8192), 7);
    let defended = scheme.encrypt_backup(target);
    println!("\nagainst the combined MinHash + scrambling defense:");
    for kind in [AttackKind::Locality, AttackKind::Advanced] {
        let inferred = attacks::run_ciphertext_only(kind, &defended.backup, aux, &params);
        let report = metrics::score(&inferred, &defended.backup, &defended.truth);
        println!("  {kind:<24} inference rate {:6.3}%", report.rate * 100.0);
    }
}
