//! The defense trade-off in one screen: inference suppression vs storage
//! cost vs metadata overhead for MinHash-only and the combined scheme
//! (condenses Figures 10, 11 and 13 into one run).
//!
//! Run with: `cargo run --release --example defense_tradeoff`

use freqdedup::chunking::segment::SegmentParams;
use freqdedup::core::attacks::{self, AttackKind};
use freqdedup::core::defense::MinHashScrambleScheme;
use freqdedup::core::metrics;
use freqdedup::datasets::fsl::{generate, FslConfig};
use freqdedup::mle::trace_enc::DeterministicTraceEncryptor;
use freqdedup::store::engine::{DedupConfig, DedupEngine};
use freqdedup::trace::stats::DedupAccumulator;
use freqdedup::trace::BackupSeries;

fn attack_rate(series: &BackupSeries, scheme: Option<&MinHashScrambleScheme>) -> f64 {
    let aux = series.get(2).unwrap();
    let target = series.latest().unwrap();
    let observed = match scheme {
        Some(s) => s.encrypt_backup(target),
        None => DeterministicTraceEncryptor::new(b"secret").encrypt_backup(target),
    };
    let leaked = metrics::leak_pairs(&observed.backup, &observed.truth, 0.0005, 7);
    let inferred = attacks::run_known_plaintext(
        AttackKind::Advanced,
        &observed.backup,
        aux,
        &leaked,
        &attacks::locality::LocalityParams::known_plaintext_default(),
    );
    metrics::score(&inferred, &observed.backup, &observed.truth).rate
}

fn storage_saving(series: &BackupSeries, scheme: Option<&MinHashScrambleScheme>) -> f64 {
    let mut acc = DedupAccumulator::new();
    match scheme {
        Some(s) => {
            let (enc, _) = s.encrypt_series(series);
            for b in &enc {
                acc.add_backup(b);
            }
        }
        None => {
            for b in series {
                acc.add_backup(b);
            }
        }
    }
    acc.storage_saving()
}

fn metadata_bytes(series: &BackupSeries, scheme: Option<&MinHashScrambleScheme>) -> u64 {
    let stream = match scheme {
        Some(s) => s.encrypt_series(series).0,
        None => series.clone(),
    };
    let mut engine = DedupEngine::new(DedupConfig::paper(2 * 1024 * 1024, 400_000)).unwrap();
    for b in &stream {
        engine.ingest_backup(b);
    }
    engine.finish();
    engine.metadata_access().total_bytes()
}

fn main() {
    let series = generate(&FslConfig::scaled(5_000));
    let params = SegmentParams::paper_default(8192);
    let minhash = MinHashScrambleScheme::minhash_only(params.clone());
    let combined = MinHashScrambleScheme::combined(params, 7);

    println!(
        "{:<18} {:>12} {:>14} {:>14}",
        "scheme", "inference_%", "saving_%", "metadata_MiB"
    );
    for (name, scheme) in [
        ("MLE (undefended)", None),
        ("MinHash only", Some(&minhash)),
        ("Combined", Some(&combined)),
    ] {
        println!(
            "{:<18} {:>12.3} {:>14.1} {:>14.1}",
            name,
            attack_rate(&series, scheme) * 100.0,
            storage_saving(&series, scheme) * 100.0,
            metadata_bytes(&series, scheme) as f64 / (1024.0 * 1024.0),
        );
    }
    println!("\n(advanced attack, known-plaintext mode, 0.05% leakage; FSL-like workload)");
}
