#!/usr/bin/env python3
"""Bench-regression guard for perf_report artifacts.

Compares a freshly produced BENCH_attack.json against the committed
baseline and fails (exit 1) when the sequential dense path's COUNT or
end-to-end *throughput* (logical chunks per millisecond) regresses by more
than the threshold.

Throughput, not wall-time, is compared so a --quick fresh run can be held
against the committed full-size baseline: chunk counts normalize out,
while a real slowdown of the hot path still shows. The default threshold
is deliberately loose (30%) because CI runners and the recording machine
are different hardware generations; the guard is meant to catch
order-of-magnitude regressions (an accidental O(n^2), a lost fast path),
not single-digit drift.

Usage:
    python3 ci/bench_guard.py --baseline BENCH_attack.json \
        --fresh fresh.json [--threshold 0.30]
"""

import argparse
import json
import sys


def throughput(report: dict, metric: str) -> float:
    """Logical chunks per millisecond for a sequential-path metric."""
    chunks = report["logical_chunks_per_backup"]
    ms = report["sequential"][metric]
    if ms <= 0:
        raise SystemExit(f"bench_guard: non-positive {metric} in report")
    return chunks / ms


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed BENCH_attack.json")
    ap.add_argument("--fresh", required=True, help="freshly produced report")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional throughput regression (default 0.30)",
    )
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    if not fresh.get("identical_inference", False):
        print("bench_guard: FAIL — fresh report flags divergent inference")
        return 1

    failed = False
    print(f"bench_guard: threshold {args.threshold:.0%} throughput regression")
    print(f"{'metric':<16} {'baseline':>12} {'fresh':>12} {'ratio':>8}")
    for label, metric in (("COUNT", "count_ms"), ("end-to-end", "end_to_end_ms")):
        base_tp = throughput(baseline, metric)
        fresh_tp = throughput(fresh, metric)
        ratio = fresh_tp / base_tp
        verdict = ""
        if ratio < 1.0 - args.threshold:
            verdict = "  <-- REGRESSION"
            failed = True
        print(
            f"{label:<16} {base_tp:>9.1f}/ms {fresh_tp:>9.1f}/ms {ratio:>7.2f}x{verdict}"
        )

    if failed:
        print("bench_guard: FAIL — throughput regressed beyond the threshold")
        return 1
    print("bench_guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
