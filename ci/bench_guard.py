#!/usr/bin/env python3
"""Bench-regression guard for perf_report artifacts.

Compares a freshly produced BENCH_attack.json against the committed
baseline and fails (exit 1) when the sequential dense path's COUNT or
end-to-end *throughput* (logical chunks per millisecond) regresses by more
than the threshold. When both reports carry a `serve` section
(perf_report --serve), the loopback service numbers are guarded at the
same threshold: per-client-count ingest throughput and restore
throughput. When both reports carry a `streaming` section (perf_report
--streaming), the incremental attack engine's amortized update throughput
is guarded at the same threshold; worst-case and compaction-stall rows
print informationally (a single commit's latency is dominated by whether
it happens to land on a deep segment merge, which depends on epoch count,
not on a code regression). When both reports carry a `faults` section
(perf_report --faults), the retry-overhead and reconnect-latency rows
print informationally (a seeded fault schedule's cost is timing-dependent
by construction), but a fresh report flagging `divergence` — a committed
stream restoring differently from what its client sent, or a retried
batch double-ingesting — hard-fails: the exactly-once contract is
correctness, not performance. When both reports carry a `chunking`
section (perf_report --chunking), the gear-hash fastcdc throughput in
MB/s is guarded at the same threshold — it is the engine the client
pipeline rides — while the rabin-cdc and parallel rows print
informationally; a fresh report whose `par_identical` flag is false
hard-fails, since parallel chunking diverging from sequential is a
correctness bug. When both reports carry a `lifecycle` section
(perf_report --lifecycle), the GC compaction's reclaim throughput in
MB/s is guarded at the same threshold — it normalizes across chunk
counts — while the delete/rekey latency and churned-attack rows print
informationally; a fresh report whose `recipes_intact` flag is false
hard-fails, since a compaction or rekey that corrupts a surviving
backup recipe is data loss.

When both reports carry a `defense` section (the `tournament` binary),
every scheme's encryption throughput is guarded at the same threshold —
the defense layer is the client upload hot path. The per-scheme leakage
rates and storage blowups are checked by *exact equality*: the
tournament sweep is deterministic, so any drift in an inference rate is
a correctness bug in an attack or defense, not noise, and hard-fails.
Both defense comparisons use a size-matched reference (the committed
baseline for full-size runs, the committed
`ci/defense_leakage_baseline.json` for --quick runs) because neither
inference rates nor TED/PFSE encryption throughput normalize across
chunk counts.

Throughput, not wall-time, is compared so a --quick fresh run can be held
against the committed full-size baseline: chunk counts normalize out,
while a real slowdown of the hot path still shows. The default threshold
is deliberately loose (30%) because CI runners and the recording machine
are different hardware generations; the guard is meant to catch
order-of-magnitude regressions (an accidental O(n^2), a lost fast path),
not single-digit drift.

Usage:
    python3 ci/bench_guard.py --baseline BENCH_attack.json \
        --fresh fresh.json [--threshold 0.30]
"""

import argparse
import json
import sys


def throughput(report: dict, metric: str) -> float:
    """Logical chunks per millisecond for a sequential-path metric."""
    chunks = report["logical_chunks_per_backup"]
    ms = report["sequential"][metric]
    if ms <= 0:
        raise SystemExit(f"bench_guard: non-positive {metric} in report")
    return chunks / ms


def serve_rows(baseline: dict, fresh: dict) -> list:
    """(label, baseline_tput, fresh_tput, gated) rows for the serve section.

    Guarded only when *both* reports carry it, so a fresh report produced
    without --serve (or an old baseline) degrades to the classic guard
    instead of failing on a missing key. Only the single-client ingest and
    the restore rows *gate*: multi-client throughput depends on the
    machine's core count (the same reason the parallel attack section is
    not guarded), so those rows print informationally.
    """
    base, new = baseline.get("serve"), fresh.get("serve")
    if not base or not new:
        print("bench_guard: no serve section in both reports, skipping serve guard")
        return []
    rows = []
    fresh_by_n = {row["n"]: row for row in new.get("clients", [])}
    for row in base.get("clients", []):
        other = fresh_by_n.get(row["n"])
        if other is None:
            continue
        rows.append(
            (
                f"serve x{row['n']}",
                row["chunks_per_ms"],
                other["chunks_per_ms"],
                row["n"] == 1,
            )
        )
    if base.get("restore_ms", 0) > 0 and new.get("restore_ms", 0) > 0:
        rows.append(
            (
                "serve restore",
                base["restore_chunks"] / base["restore_ms"],
                new["restore_chunks"] / new["restore_ms"],
                True,
            )
        )
    return rows


def streaming_rows(baseline: dict, fresh: dict) -> list:
    """(label, baseline_tput, fresh_tput, gated) rows for the streaming
    section.

    Guarded only when *both* reports carry it, like the serve section. The
    amortized update throughput (chunks folded per millisecond across the
    whole tape) *gates*: it is what O(delta) buys and a lost incremental
    path shows up here as an order-of-magnitude drop. The worst-case
    single-commit and worst-compaction rows are info-only — which commit
    absorbs the deepest segment merge is a function of the epoch count and
    merge schedule, so their latency is lumpy by design.
    """
    base, new = baseline.get("streaming"), fresh.get("streaming")
    if not base or not new:
        print(
            "bench_guard: no streaming section in both reports, skipping streaming guard"
        )
        return []
    if not new.get("identical_inference", False):
        raise SystemExit(
            "bench_guard: FAIL — fresh streaming inference diverged from batch"
        )
    rows = [
        ("stream update", base["update_chunks_per_ms"], new["update_chunks_per_ms"], True)
    ]
    for label, key, invert in (
        ("stream 2nd half", "second_half_chunks_per_ms", False),
        ("stream worst", "update_worst_ms", True),
        ("stream compact", "worst_compaction_ms", True),
    ):
        if base.get(key, 0) > 0 and new.get(key, 0) > 0:
            if invert:
                # Latency rows: invert into a pseudo-throughput so "lower
                # ratio = worse" holds uniformly in the table below.
                rows.append((label, 1.0 / base[key], 1.0 / new[key], False))
            else:
                rows.append((label, base[key], new[key], False))
    return rows


def faults_rows(baseline: dict, fresh: dict) -> list:
    """(label, baseline_tput, fresh_tput, gated) rows for the faults
    section.

    The fresh report's `divergence` flag hard-fails first: a committed
    stream that restores differently from what its client sent, or a
    retried batch that double-ingested, is a broken exactly-once protocol
    regardless of speed. Every timing row is info-only — the retry
    overhead factor and reconnect latency measure a *seeded fault
    schedule*, whose cost moves with socket timing and scheduler
    interleaving, not with hot-path code quality.
    """
    new = fresh.get("faults")
    if new and new.get("divergence", False):
        raise SystemExit(
            "bench_guard: FAIL — fresh faults section flags exactly-once divergence"
        )
    base = baseline.get("faults")
    if not base or not new:
        print("bench_guard: no faults section in both reports, skipping faults rows")
        return []
    rows = []
    # Overhead factor and reconnect latency: invert into pseudo-throughput
    # so "lower ratio = worse" holds uniformly in the table below.
    for label, key in (
        ("faults overhead", "overhead"),
        ("faults reconnect", "reconnect_mean_us"),
    ):
        if base.get(key, 0) > 0 and new.get(key, 0) > 0:
            rows.append((label, 1.0 / base[key], 1.0 / new[key], False))
    if base.get("faulted_ms", 0) > 0 and new.get("faulted_ms", 0) > 0:
        rows.append(
            (
                "faults ingest",
                1.0 / base["faulted_ms"],
                1.0 / new["faulted_ms"],
                False,
            )
        )
    return rows


def chunking_rows(baseline: dict, fresh: dict) -> list:
    """(label, baseline_tput, fresh_tput, gated) rows for the chunking
    section.

    The fresh report's `par_identical` flag hard-fails first: parallel
    chunking that produces different spans than sequential corrupts every
    downstream dedup ratio, so it is correctness, not performance. Of the
    throughput rows only sequential fastcdc *gates* — it is the hot loop
    the gear-hash rewrite exists for and a lost fast path shows up there
    directly. Rabin is the legacy engine (info-only) and the parallel
    rows depend on the runner's core count, like every other parallel
    section.
    """
    new = fresh.get("chunking")
    if new and not new.get("par_identical", True):
        raise SystemExit(
            "bench_guard: FAIL — fresh chunking section flags parallel/sequential divergence"
        )
    base = baseline.get("chunking")
    if not base or not new:
        print("bench_guard: no chunking section in both reports, skipping chunking rows")
        return []
    rows = []
    for label, key, gated in (
        ("fastcdc seq", "fastcdc_seq_mbps", True),
        ("fastcdc par", "fastcdc_par_mbps", False),
        ("rabin seq", "rabin_seq_mbps", False),
        ("rabin par", "rabin_par_mbps", False),
    ):
        if base.get(key, 0) > 0 and new.get(key, 0) > 0:
            rows.append((label, base[key], new[key], gated))
    return rows


def lifecycle_rows(baseline: dict, fresh: dict) -> list:
    """(label, baseline_tput, fresh_tput, gated) rows for the lifecycle
    section.

    The fresh report's `recipes_intact` flag hard-fails first: a GC
    compaction or rekey that corrupts a surviving backup recipe is data
    loss, not a performance number. Of the throughput rows only the GC
    reclaim rate in MB/s *gates* — it normalizes across chunk counts
    (bytes reclaimed per wall-second of compaction) and a lost fast path
    in the container rewrite loop shows up there directly. The delete and
    rekey latency rows and the churned-attack row are info-only: their
    wall-time scales with the generation count and container population
    of the specific run.
    """
    new = fresh.get("lifecycle")
    if new and not new.get("recipes_intact", True):
        raise SystemExit(
            "bench_guard: FAIL — fresh lifecycle section flags corrupted recipes"
        )
    base = baseline.get("lifecycle")
    if not base or not new:
        print("bench_guard: no lifecycle section in both reports, skipping lifecycle rows")
        return []
    rows = []
    if base.get("reclaim_mb_per_s", 0) > 0 and new.get("reclaim_mb_per_s", 0) > 0:
        rows.append(
            ("gc reclaim", base["reclaim_mb_per_s"], new["reclaim_mb_per_s"], True)
        )
    # Latency rows: invert into pseudo-throughput so "lower ratio = worse"
    # holds uniformly in the table below.
    for label, key in (
        ("lc delete", "delete_ms"),
        ("lc rekey", "rekey_ms"),
        ("lc churned atk", "attack_churned_ms"),
    ):
        if base.get(key, 0) > 0 and new.get(key, 0) > 0:
            rows.append((label, 1.0 / base[key], 1.0 / new[key], False))
    return rows


RATE_KEYS = (
    "basic_stream",
    "basic_key",
    "locality_stream",
    "locality_key",
    "advanced_stream",
    "advanced_key",
)


def defense_row_id(row: dict):
    return (row["scheme"], row.get("budget"))


def defense_reference(baseline: dict, fresh: dict, leakage_baseline: str):
    """Selects the size-matched defense reference for the fresh report.

    Per-scheme inference rates do not normalize across chunk counts, and
    neither does TED/PFSE encryption throughput (their per-chunk cost
    depends on the pair's frequency histogram), so every defense
    comparison needs a reference recorded at the *same* chunk count: the
    committed baseline when the fresh run is full-size, else the
    committed quick-size leakage baseline (`--leakage-baseline`,
    recorded by `tournament --quick`). Returns `(section, label)` or
    `(None, None)` when no size-matched reference exists.
    """
    new = fresh.get("defense")
    if not new:
        return None, None
    base = baseline.get("defense")
    if base and base.get("chunks") == new.get("chunks"):
        return base, "committed baseline"
    if leakage_baseline:
        try:
            with open(leakage_baseline) as f:
                cand = json.load(f).get("defense")
        except OSError:
            cand = None
        if cand and cand.get("chunks") == new.get("chunks"):
            return cand, leakage_baseline
    return None, None


def defense_leakage_check(fresh: dict, ref: dict, src: str) -> None:
    """Hard-fails on any leakage-metric drift in the defense section.

    The tournament sweep is deterministic end to end — fixed FSL pair,
    fixed key context, fixed epoching — so the per-scheme inference rates
    and storage blowups are exact constants at a given chunk count. Any
    change is a correctness bug in an attack or a defense, never noise,
    so unlike every throughput row this comparison is exact equality
    against the size-matched reference from `defense_reference`.
    """
    new = fresh.get("defense")
    if not new:
        print("bench_guard: no defense section in fresh report, skipping leakage check")
        return
    if ref is None:
        print(
            "bench_guard: no size-matched defense leakage reference, "
            "skipping leakage check"
        )
        return
    ref_rows = {defense_row_id(r): r for r in ref["rows"]}
    new_ids = {defense_row_id(r) for r in new["rows"]}
    missing = sorted(str(i) for i in set(ref_rows) - new_ids)
    if missing:
        raise SystemExit(
            f"bench_guard: FAIL — defense rows missing from fresh report: {missing}"
        )
    for row in new["rows"]:
        other = ref_rows.get(defense_row_id(row))
        if other is None:
            raise SystemExit(
                f"bench_guard: FAIL — defense row {defense_row_id(row)} "
                f"absent from {src}; re-record the leakage baseline"
            )
        for key in RATE_KEYS + ("blowup",):
            if row.get(key) != other.get(key):
                raise SystemExit(
                    f"bench_guard: FAIL — defense leakage drift in "
                    f"{row['scheme']}: {key} {other.get(key)} -> {row.get(key)} "
                    "(the sweep is deterministic; drift is a correctness bug)"
                )
    print(
        f"bench_guard: defense leakage rates identical to {src} "
        f"({len(new['rows'])} rows)"
    )


def defense_rows(fresh: dict, ref: dict) -> list:
    """(label, baseline_tput, fresh_tput, gated) rows for the defense
    section.

    Every scheme's encryption throughput (logical chunks per millisecond)
    *gates* at the common threshold — the defense layer sits on the
    client's upload hot path, so a lost fast path in any scheme is a
    real regression. Unlike the other sections this throughput does NOT
    normalize across chunk counts (TED's threshold search and PFSE's
    partitioning cost scale with the frequency histogram, not per chunk),
    so the rows compare against the same size-matched reference the
    leakage check uses — a --quick fresh run is held against the
    committed quick-size leakage baseline, never the full-size one.
    """
    base, new = ref, fresh.get("defense")
    if not base or not new:
        print(
            "bench_guard: no size-matched defense reference, skipping defense rows"
        )
        return []
    fresh_by_id = {defense_row_id(r): r for r in new["rows"]}
    rows = []
    for r in base["rows"]:
        other = fresh_by_id.get(defense_row_id(r))
        if (
            other
            and r.get("enc_chunks_per_ms", 0) > 0
            and other.get("enc_chunks_per_ms", 0) > 0
        ):
            rows.append(
                (
                    f"enc {r['scheme']}",
                    r["enc_chunks_per_ms"],
                    other["enc_chunks_per_ms"],
                    True,
                )
            )
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed BENCH_attack.json")
    ap.add_argument("--fresh", required=True, help="freshly produced report")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional throughput regression (default 0.30)",
    )
    ap.add_argument(
        "--leakage-baseline",
        default="ci/defense_leakage_baseline.json",
        help="size-matched defense leakage reference for --quick fresh runs "
        "(default ci/defense_leakage_baseline.json)",
    )
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    if not fresh.get("identical_inference", False):
        print("bench_guard: FAIL — fresh report flags divergent inference")
        return 1

    defense_ref, defense_src = defense_reference(baseline, fresh, args.leakage_baseline)
    defense_leakage_check(fresh, defense_ref, defense_src)

    failed = False
    print(f"bench_guard: threshold {args.threshold:.0%} throughput regression")
    print(f"{'metric':<16} {'baseline':>12} {'fresh':>12} {'ratio':>8}")

    rows = []
    for label, metric in (("COUNT", "count_ms"), ("end-to-end", "end_to_end_ms")):
        rows.append((label, throughput(baseline, metric), throughput(fresh, metric), True))
    rows.extend(serve_rows(baseline, fresh))
    rows.extend(streaming_rows(baseline, fresh))
    rows.extend(faults_rows(baseline, fresh))
    rows.extend(chunking_rows(baseline, fresh))
    rows.extend(lifecycle_rows(baseline, fresh))
    rows.extend(defense_rows(fresh, defense_ref))

    for label, base_tp, fresh_tp, gated in rows:
        ratio = fresh_tp / base_tp
        verdict = ""
        if ratio < 1.0 - args.threshold:
            if gated:
                verdict = "  <-- REGRESSION"
                failed = True
            else:
                verdict = "  (info only: machine/schedule dependent)"
        print(
            f"{label:<16} {base_tp:>9.1f}/ms {fresh_tp:>9.1f}/ms {ratio:>7.2f}x{verdict}"
        )

    if failed:
        print("bench_guard: FAIL — throughput regressed beyond the threshold")
        return 1
    print("bench_guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
