//! # freqdedup — umbrella crate
//!
//! Re-exports the whole workspace so examples, integration tests and
//! downstream users can depend on a single crate.
//!
//! See the README for the architecture overview and DESIGN.md for the
//! per-experiment index.

#![forbid(unsafe_code)]

pub use freqdedup_chunking as chunking;
pub use freqdedup_core as core;
pub use freqdedup_crypto as crypto;
pub use freqdedup_datasets as datasets;
pub use freqdedup_mle as mle;
pub use freqdedup_server as server;
pub use freqdedup_store as store;
pub use freqdedup_trace as trace;
