//! The shared-content pool: "common files" whose chunk sequences recur
//! across users and backups.
//!
//! Duplicate content in real storage appears as repeated *files*, i.e.
//! repeated chunk **sequences**, not isolated chunks. This is what gives hot
//! chunks stable neighbour statistics (the locality attack's seed anchors)
//! and what produces the frequency skew of Fig. 1: popularity over files is
//! Zipf-distributed, so the chunks of the most popular files occur orders of
//! magnitude more often than the long tail.

use freqdedup_trace::ChunkRecord;
use rand::Rng;

use crate::util::{run_length, FingerprintAllocator, SizeModel, Zipf};

/// A pool of common files with Zipf popularity.
#[derive(Clone, Debug)]
pub struct SharedPool {
    files: Vec<Vec<ChunkRecord>>,
    popularity: Zipf,
}

impl SharedPool {
    /// Generates `n_files` common files whose lengths are geometric with the
    /// given mean (capped at `max_len`), drawing fingerprints from `alloc`
    /// and sizes from `sizes`. Popularity follows Zipf(`zipf_s`).
    ///
    /// # Panics
    ///
    /// Panics if `n_files == 0` (via the Zipf constructor).
    #[must_use]
    pub fn generate(
        n_files: usize,
        mean_len: f64,
        max_len: usize,
        zipf_s: f64,
        alloc: &mut FingerprintAllocator,
        sizes: &SizeModel,
        rng: &mut impl Rng,
    ) -> Self {
        let files = (0..n_files)
            .map(|_| {
                let len = run_length(rng, mean_len, max_len);
                (0..len).map(|_| sizes.record(alloc.next_fp())).collect()
            })
            .collect();
        SharedPool {
            files,
            popularity: Zipf::new(n_files, zipf_s),
        }
    }

    /// Samples a file by popularity and returns its chunk sequence.
    pub fn sample<'a>(&'a self, rng: &mut impl Rng) -> &'a [ChunkRecord] {
        &self.files[self.popularity.sample(rng)]
    }

    /// Samples a file by popularity and returns a run of it: the whole file,
    /// or (with probability `partial_prob`) a non-empty prefix.
    ///
    /// Partial occurrences model truncated/older versions of a common file.
    /// Crucially, they give the chunks of one file *nested, strictly
    /// decreasing* occurrence counts instead of an exact frequency tie — the
    /// structure that makes top-frequency ranks stable and unambiguous,
    /// which the paper relies on for seeding ("the top-frequent chunks have
    /// significantly higher frequencies than the other chunks, and their
    /// frequency ranks are stable across different backups", §4.2).
    pub fn sample_run<'a>(&'a self, rng: &mut impl Rng, partial_prob: f64) -> &'a [ChunkRecord] {
        let file = self.sample(rng);
        if file.len() > 1 && rng.gen::<f64>() < partial_prob {
            let len = rng.gen_range(1..file.len());
            &file[..len]
        } else {
            file
        }
    }

    /// Returns file `idx` (uniform access, used for cold shared content).
    #[must_use]
    pub fn file(&self, idx: usize) -> &[ChunkRecord] {
        &self.files[idx % self.files.len()]
    }

    /// Number of files in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total chunks across all files.
    #[must_use]
    pub fn total_chunks(&self) -> usize {
        self.files.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pool(seed: u64) -> SharedPool {
        let mut alloc = FingerprintAllocator::new(9);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SharedPool::generate(
            200,
            6.0,
            32,
            1.1,
            &mut alloc,
            &SizeModel::Variable(8192),
            &mut rng,
        )
    }

    #[test]
    fn files_nonempty_and_bounded() {
        let p = pool(1);
        assert_eq!(p.len(), 200);
        for i in 0..p.len() {
            let f = p.file(i);
            assert!((1..=32).contains(&f.len()));
        }
    }

    #[test]
    fn sampling_is_skewed_toward_low_ranks() {
        let p = pool(2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first_file = p.file(0).to_vec();
        let hits = (0..10_000)
            .filter(|_| p.sample(&mut rng) == first_file.as_slice())
            .count();
        assert!(hits > 300, "rank-0 file sampled {hits} times of 10,000");
    }

    #[test]
    fn chunks_unique_across_files() {
        let p = pool(4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..p.len() {
            for rec in p.file(i) {
                assert!(seen.insert(rec.fp), "duplicate chunk across pool files");
            }
        }
        assert_eq!(seen.len(), p.total_chunks());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = pool(7);
        let b = pool(7);
        for i in 0..a.len() {
            assert_eq!(a.file(i), b.file(i));
        }
    }
}
