//! Shared generator machinery: unique fingerprint allocation, deterministic
//! chunk sizes, Zipf and geometric sampling.

use freqdedup_trace::{ChunkRecord, Fingerprint};
use rand::Rng;

/// The splitmix64 bijection — used to turn sequential counters into
/// uniformly-scattered, collision-free fingerprints.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Issues fresh, globally unique fingerprints. Each allocator owns a
/// namespace (high bits), so independent allocators never collide; within a
/// namespace, splitmix64 is a bijection, so fingerprints never repeat.
#[derive(Clone, Debug)]
pub struct FingerprintAllocator {
    namespace: u64,
    counter: u64,
}

impl FingerprintAllocator {
    /// Creates an allocator for namespace id `namespace` (< 2^16).
    ///
    /// # Panics
    ///
    /// Panics if the namespace exceeds 16 bits.
    #[must_use]
    pub fn new(namespace: u16) -> Self {
        FingerprintAllocator {
            namespace: u64::from(namespace) << 48,
            counter: 0,
        }
    }

    /// Returns the next fresh fingerprint.
    pub fn next_fp(&mut self) -> Fingerprint {
        let fp = splitmix64(self.namespace | self.counter);
        self.counter += 1;
        Fingerprint(fp)
    }

    /// How many fingerprints have been issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.counter
    }
}

/// Chunk-size model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeModel {
    /// Every chunk has the same size (the VM dataset's 4 KB chunks).
    Fixed(u32),
    /// Content-defined-chunking sizes: shifted geometric with minimum
    /// `avg/4`, mean `avg` and maximum `4·avg` — the distribution an actual
    /// Rabin chunker with those parameters produces. Deterministic per
    /// fingerprint. Sizes concentrate near the mode (weakly discriminating
    /// classes) with a thin exponential tail (strongly discriminating),
    /// exactly the balance the advanced attack exploits.
    Variable(u32),
}

impl SizeModel {
    /// The size of the chunk with fingerprint `fp` under this model.
    /// Deterministic: identical content ⇒ identical size.
    #[must_use]
    pub fn size_of(&self, fp: Fingerprint) -> u32 {
        match *self {
            SizeModel::Fixed(s) => s,
            SizeModel::Variable(avg) => {
                let min = avg / 4;
                let max = avg * 4;
                let mean_gap = f64::from(avg - min);
                // Uniform in (0,1] from the fingerprint, then exponential.
                let h = splitmix64(fp.value() ^ 0x5173_0f1c_a11b_5eed);
                let u = ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
                let gap = (-u.ln() * mean_gap) as u32;
                (min + gap).min(max)
            }
        }
    }

    /// Builds a [`ChunkRecord`] for `fp` under this model.
    #[must_use]
    pub fn record(&self, fp: Fingerprint) -> ChunkRecord {
        ChunkRecord::new(fp, self.size_of(fp))
    }
}

/// A Zipf(s) sampler over ranks `0..n` (rank 0 is the most popular).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0`.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true — kept for API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Samples a geometric-ish run length in `[1, cap]` with the given mean.
pub fn run_length(rng: &mut impl Rng, mean: f64, cap: usize) -> usize {
    debug_assert!(mean >= 1.0);
    let p = 1.0 / mean;
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let len = (u.ln() / (1.0 - p).ln()).ceil() as usize;
    len.clamp(1, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn allocator_unique_within_and_across_namespaces() {
        let mut a = FingerprintAllocator::new(1);
        let mut b = FingerprintAllocator::new(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(a.next_fp()));
            assert!(seen.insert(b.next_fp()));
        }
        assert_eq!(a.issued(), 10_000);
    }

    #[test]
    fn size_model_deterministic_and_bounded() {
        let m = SizeModel::Variable(8192);
        for i in 0..1000u64 {
            let fp = Fingerprint(splitmix64(i));
            let s = m.size_of(fp);
            assert_eq!(s, m.size_of(fp));
            assert!((2048..=32768).contains(&s), "size {s}");
        }
        assert_eq!(SizeModel::Fixed(4096).size_of(Fingerprint(7)), 4096);
    }

    #[test]
    fn size_model_mean_near_avg() {
        let m = SizeModel::Variable(8192);
        let total: u64 = (0..20_000u64)
            .map(|i| u64::from(m.size_of(Fingerprint(splitmix64(i)))))
            .sum();
        let mean = total as f64 / 20_000.0;
        // Mean of min + Exp(avg - min), slightly reduced by the max clamp.
        assert!((7200.0..8600.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn zipf_is_skewed_and_complete() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
        // Rank 0 should take a few percent at s=1.1 over 1000 items.
        assert!(counts[0] > 5_000, "top rank count {}", counts[0]);
    }

    #[test]
    fn zipf_single_item() {
        let z = Zipf::new(1, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn run_length_bounds_and_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut total = 0usize;
        for _ in 0..10_000 {
            let l = run_length(&mut rng, 16.0, 200);
            assert!((1..=200).contains(&l));
            total += l;
        }
        let mean = total as f64 / 10_000.0;
        assert!((13.0..19.0).contains(&mean), "mean run length {mean}");
    }
}
