//! Version evolution: clustered edits over a chunk stream.
//!
//! Backups change in **few clustered regions** while the rest of the stream
//! keeps its order (§1: "changes to backups often appear in few clustered
//! regions of chunks, while the remaining regions of chunks will appear in
//! the same order in previous backups"). This module applies that model:
//! a configurable fraction of chunks is covered by contiguous edit regions;
//! within a region each chunk is replaced by fresh content, deleted, or
//! kept.

use freqdedup_chunking::segment::{segment_spans, SegmentParams};
use freqdedup_trace::ChunkRecord;
use rand::Rng;

use crate::util::{run_length, FingerprintAllocator, SizeModel};

/// Parameters of the clustered-edit model.
#[derive(Clone, Copy, Debug)]
pub struct EditModel {
    /// Fraction of the stream covered by edit regions per version step.
    pub edit_frac: f64,
    /// Mean edit-region length in chunks.
    pub mean_region: f64,
    /// Probability a chunk inside a region is replaced by fresh content.
    pub replace_p: f64,
    /// Probability a chunk inside a region is deleted.
    pub delete_p: f64,
    /// Fraction of file-sized stream segments relocated per version step
    /// (directory churn: created/renamed/moved files change the snapshot
    /// traversal order without changing content).
    pub reorder_frac: f64,
    /// Average chunk size hint for the content-defined reorder granularity.
    pub avg_chunk_size: u32,
}

impl EditModel {
    /// A light monthly-churn model (FSL-like): whole-file-sized edit regions
    /// (users rewrite files, not 100-KB patches).
    #[must_use]
    pub fn light(edit_frac: f64) -> Self {
        EditModel {
            edit_frac,
            mean_region: 64.0,
            replace_p: 0.7,
            delete_p: 0.15,
            reorder_frac: 0.0,
            avg_chunk_size: 8192,
        }
    }

    /// Adds segment-relocation churn (builder style).
    #[must_use]
    pub fn with_reorder(mut self, reorder_frac: f64) -> Self {
        self.reorder_frac = reorder_frac;
        self
    }
}

/// Relocates a fraction of blocks of the stream to random positions
/// (directory churn: files move as wholes).
///
/// Blocks are cut at **content-defined segment boundaries** (the same
/// fingerprint-driven rule the MinHash defense segments with, §7.1). Because
/// segmentation is a pure function of the fingerprint stream, a moved block
/// re-segments identically at its new position — so relocation is invisible
/// to MinHash encryption's key derivation (it neither splits segments nor
/// changes minima), exactly like a real file move is invisible to
/// content-defined deduplication. What it *does* change is the global
/// stream-order alignment the locality attack leans on.
#[must_use]
pub fn reorder_segments(
    chunks: Vec<ChunkRecord>,
    reorder_frac: f64,
    avg_chunk_size: u32,
    rng: &mut impl Rng,
) -> Vec<ChunkRecord> {
    if reorder_frac <= 0.0 || chunks.len() < 2 {
        return chunks;
    }
    let params = SegmentParams::paper_default(avg_chunk_size);
    let spans = segment_spans(&chunks, &params);
    let mut segments: Vec<&[ChunkRecord]> = spans.iter().map(|s| &chunks[s.clone()]).collect();

    // Pull out a fraction of segments and reinsert them at random slots.
    let n_move = ((segments.len() as f64) * reorder_frac).round() as usize;
    let mut moved = Vec::with_capacity(n_move);
    for _ in 0..n_move.min(segments.len().saturating_sub(1)) {
        let idx = rng.gen_range(0..segments.len());
        moved.push(segments.remove(idx));
    }
    for seg in moved {
        let idx = rng.gen_range(0..=segments.len());
        segments.insert(idx, seg);
    }
    segments.into_iter().flatten().copied().collect()
}

/// Applies one round of clustered edits, returning the next version of the
/// stream. Deterministic in `rng`.
#[must_use]
pub fn evolve(
    chunks: &[ChunkRecord],
    model: &EditModel,
    alloc: &mut FingerprintAllocator,
    sizes: &SizeModel,
    rng: &mut impl Rng,
) -> Vec<ChunkRecord> {
    if chunks.is_empty() {
        return Vec::new();
    }
    if model.edit_frac <= 0.0 {
        return reorder_segments(
            chunks.to_vec(),
            model.reorder_frac,
            model.avg_chunk_size,
            rng,
        );
    }
    let n = chunks.len();
    let target_edited = (n as f64 * model.edit_frac).round() as usize;
    // Mark edited positions via randomly placed regions.
    let mut edited = vec![false; n];
    let mut covered = 0usize;
    let mut guard = 0;
    while covered < target_edited && guard < 10 * n {
        let start = rng.gen_range(0..n);
        let len = run_length(rng, model.mean_region, 4 * model.mean_region as usize);
        for flag in edited.iter_mut().skip(start).take(len) {
            if !*flag {
                *flag = true;
                covered += 1;
            }
        }
        guard += 1;
    }

    let mut out = Vec::with_capacity(n);
    for (i, &rec) in chunks.iter().enumerate() {
        if !edited[i] {
            out.push(rec);
            continue;
        }
        let roll: f64 = rng.gen();
        if roll < model.replace_p {
            out.push(sizes.record(alloc.next_fp()));
        } else if roll < model.replace_p + model.delete_p {
            // deleted: skip
        } else {
            out.push(rec);
        }
    }
    reorder_segments(out, model.reorder_frac, model.avg_chunk_size, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::{stats, Backup};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn base_stream(n: usize) -> Vec<ChunkRecord> {
        let mut alloc = FingerprintAllocator::new(1);
        (0..n)
            .map(|_| SizeModel::Variable(8192).record(alloc.next_fp()))
            .collect()
    }

    #[test]
    fn edit_fraction_respected() {
        let stream = base_stream(50_000);
        let mut alloc = FingerprintAllocator::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let next = evolve(
            &stream,
            &EditModel::light(0.05),
            &mut alloc,
            &SizeModel::Variable(8192),
            &mut rng,
        );
        let old = Backup::from_chunks("a", stream);
        let new = Backup::from_chunks("b", next);
        let overlap = stats::content_overlap(&old, &new);
        assert!(
            (0.90..0.99).contains(&overlap),
            "content overlap {overlap} for 5% edits"
        );
    }

    #[test]
    fn locality_mostly_preserved() {
        let stream = base_stream(50_000);
        let mut alloc = FingerprintAllocator::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let next = evolve(
            &stream,
            &EditModel::light(0.05),
            &mut alloc,
            &SizeModel::Variable(8192),
            &mut rng,
        );
        let old = Backup::from_chunks("a", stream);
        let new = Backup::from_chunks("b", next);
        let loc = stats::locality_overlap(&old, &new);
        assert!(loc > 0.85, "locality overlap {loc}");
    }

    #[test]
    fn zero_edit_is_identity() {
        let stream = base_stream(100);
        let mut alloc = FingerprintAllocator::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let next = evolve(
            &stream,
            &EditModel::light(0.0),
            &mut alloc,
            &SizeModel::Variable(8192),
            &mut rng,
        );
        assert_eq!(next, stream);
    }

    #[test]
    fn heavy_edit_replaces_most() {
        let stream = base_stream(10_000);
        let mut alloc = FingerprintAllocator::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = EditModel {
            edit_frac: 0.9,
            mean_region: 32.0,
            replace_p: 0.9,
            delete_p: 0.05,
            reorder_frac: 0.0,
            avg_chunk_size: 8192,
        };
        let next = evolve(
            &stream,
            &model,
            &mut alloc,
            &SizeModel::Variable(8192),
            &mut rng,
        );
        let old = Backup::from_chunks("a", stream);
        let new = Backup::from_chunks("b", next);
        assert!(stats::content_overlap(&old, &new) < 0.3);
    }

    #[test]
    fn reorder_preserves_multiset_and_intra_segment_order() {
        let stream = base_stream(20_000);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let moved = reorder_segments(stream.clone(), 0.2, 8192, &mut rng);
        assert_eq!(moved.len(), stream.len());
        let mut a: Vec<u64> = stream.iter().map(|c| c.fp.value()).collect();
        let mut b: Vec<u64> = moved.iter().map(|c| c.fp.value()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Most adjacencies survive (only segment boundaries break).
        let old = Backup::from_chunks("a", stream);
        let new = Backup::from_chunks("b", moved);
        let loc = stats::locality_overlap(&old, &new);
        assert!(loc > 0.95, "locality after reorder {loc}");
    }

    #[test]
    fn reorder_changes_global_order() {
        let stream = base_stream(20_000);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let moved = reorder_segments(stream.clone(), 0.3, 8192, &mut rng);
        assert_ne!(moved, stream);
    }

    #[test]
    fn reorder_zero_is_identity() {
        let stream = base_stream(100);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        assert_eq!(
            reorder_segments(stream.clone(), 0.0, 8192, &mut rng),
            stream
        );
    }

    #[test]
    fn empty_stream_ok() {
        let mut alloc = FingerprintAllocator::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let next = evolve(
            &[],
            &EditModel::light(0.5),
            &mut alloc,
            &SizeModel::Fixed(4096),
            &mut rng,
        );
        assert!(next.is_empty());
    }
}
