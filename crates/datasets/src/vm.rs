//! VM-like backup series generator (§5.1, "VM" dataset).
//!
//! Models the course VM-image workload: every student's weekly image
//! snapshot is chunked at a fixed 4 KB (so the advanced attack degenerates
//! to the locality attack), zero chunks are already removed, and cross-user
//! redundancy is extreme because all images start from the same base
//! installation.
//!
//! The paper's trace shows two distinctive behaviours that this generator
//! reproduces:
//!
//! * a **heavy-activity window** mid-course (weeks 5–8) where students churn
//!   their images heavily, followed by a **phase change** (week 9) where
//!   most content is replaced (new course phase / reinstalls). Backups taken
//!   before the phase change share almost nothing with the final weeks,
//!   which collapses the inference rate of attacks using them as auxiliary
//!   information (Fig. 5c) and dents the storage saving (Fig. 11c);
//! * light churn elsewhere, keeping weeks 9–13 highly redundant.

use freqdedup_trace::{Backup, BackupSeries, ChunkRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::evolve::{evolve, EditModel};
use crate::pool::SharedPool;
use crate::util::{FingerprintAllocator, SizeModel};

/// Configuration of the VM-like generator.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Number of students (paper: 156; default scaled to 20).
    pub users: usize,
    /// Number of weekly backups (paper: 13).
    pub weeks: usize,
    /// Chunks of the shared base image.
    pub base_chunks: usize,
    /// Per-user private chunks on top of the base image.
    pub user_chunks: usize,
    /// Per-week churn outside the heavy window.
    pub light_edit_frac: f64,
    /// Per-week churn inside the heavy window.
    pub heavy_edit_frac: f64,
    /// 1-indexed week range `[start, end]` of the heavy-activity window.
    pub heavy_weeks: (usize, usize),
    /// 1-indexed week at which the course phase changes (most content
    /// replaced); `0` disables the event.
    pub phase_change_week: usize,
    /// Fraction of content that survives the phase change.
    pub phase_survival: f64,
    /// Master seed.
    pub seed: u64,
}

impl VmConfig {
    /// Default reproduction scale: 20 users × 13 weeks, 4 KB fixed chunks,
    /// heavy window weeks 5–8, phase change at week 9.
    #[must_use]
    pub fn scaled(base_chunks: usize, user_chunks: usize) -> Self {
        VmConfig {
            users: 20,
            weeks: 13,
            base_chunks,
            user_chunks,
            light_edit_frac: 0.015,
            heavy_edit_frac: 0.12,
            heavy_weeks: (5, 8),
            phase_change_week: 9,
            phase_survival: 0.08,
            seed: 0x7a3,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.users == 0 || self.weeks == 0 || self.base_chunks == 0 {
            return Err("users, weeks and base_chunks must be positive".into());
        }
        if self.heavy_weeks.0 > self.heavy_weeks.1 {
            return Err("heavy_weeks range is inverted".into());
        }
        if !(0.0..=1.0).contains(&self.phase_survival) {
            return Err("phase_survival must be in [0, 1]".into());
        }
        Ok(())
    }
}

impl Default for VmConfig {
    fn default() -> Self {
        Self::scaled(12_000, 3_000)
    }
}

/// Label of week `i` (0-indexed).
#[must_use]
pub fn label(i: usize) -> String {
    format!("week-{:02}", i + 1)
}

/// Builds a base-image chunk stream of roughly `target` chunks: unique runs
/// interleaved with package-pool insertions (with partial prefixes).
fn build_base(
    target: usize,
    packages: &SharedPool,
    fresh: &mut FingerprintAllocator,
    rng: &mut impl Rng,
) -> Vec<ChunkRecord> {
    let mut base = Vec::with_capacity(target + 64);
    while base.len() < target {
        if rng.gen::<f64>() < 0.2 {
            base.extend_from_slice(packages.sample_run(rng, 0.4));
        } else {
            let run = crate::util::run_length(rng, 48.0, 200);
            base.extend((0..run).map(|_| SIZE.record(fresh.next_fp())));
        }
    }
    base.truncate(target);
    base
}

const SIZE: SizeModel = SizeModel::Fixed(4096);

/// Generates a VM-like [`BackupSeries`].
///
/// # Panics
///
/// Panics on an invalid configuration.
#[must_use]
pub fn generate(config: &VmConfig) -> BackupSeries {
    config.validate().expect("invalid VM configuration");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut fresh = FingerprintAllocator::new(0x07a3);
    let mut pool_alloc = FingerprintAllocator::new(0x17a3);

    // Package pool: hot shared files inside images, giving intra-backup
    // frequency variation (the same library/package blob occurs at several
    // paths of one image and across all images).
    let packages = SharedPool::generate(150, 12.0, 64, 1.5, &mut pool_alloc, &SIZE, &mut rng);

    // The shared base image: unique runs interleaved with package
    // insertions, so some chunks occur several times *within* one image —
    // their total frequency (multiplicity × users) rises above the
    // once-per-user tie and gives frequency analysis a stable top rank.
    let base = build_base(config.base_chunks, &packages, &mut fresh, &mut rng);

    // Each user image = a copy of the base plus a private data stream.
    // They are tracked separately because students churn their *own files*
    // far more than the OS installation: edits land mostly in the data
    // stream, keeping the base copies near-identical across users (which is
    // also what preserves cross-user deduplication under MinHash encryption).
    let mut images: Vec<UserImage> = (0..config.users)
        .map(|_| UserImage {
            base: base.clone(),
            data: build_user_data(config.user_chunks, &packages, &mut fresh, &mut rng),
        })
        .collect();

    let mut series = BackupSeries::new("vm");
    for week in 1..=config.weeks {
        if week > 1 {
            let heavy = week >= config.heavy_weeks.0 && week <= config.heavy_weeks.1;
            let frac = if heavy {
                config.heavy_edit_frac
            } else {
                config.light_edit_frac
            };
            let data_model = EditModel {
                edit_frac: frac,
                mean_region: 24.0,
                replace_p: 0.75,
                delete_p: 0.10,
                reorder_frac: if heavy { 0.30 } else { 0.10 },
                avg_chunk_size: 4096,
            };
            // OS files churn an order of magnitude less than user files.
            let base_model = EditModel {
                edit_frac: frac * 0.1,
                reorder_frac: 0.02,
                ..data_model
            };
            if week == config.phase_change_week {
                // Course phase change: every image is rebuilt around a fresh
                // shared base (the package pool persists — common software
                // survives); only a small fraction of user data is kept.
                let new_base = build_base(config.base_chunks, &packages, &mut fresh, &mut rng);
                for image in &mut images {
                    let keep = ((image.data.len() as f64) * config.phase_survival) as usize;
                    let mut data: Vec<ChunkRecord> =
                        image.data[..keep.min(image.data.len())].to_vec();
                    data.extend(build_user_data(
                        config.user_chunks / 2,
                        &packages,
                        &mut fresh,
                        &mut rng,
                    ));
                    image.base = new_base.clone();
                    image.data = data;
                }
            } else {
                for image in &mut images {
                    image.base = evolve(&image.base, &base_model, &mut fresh, &SIZE, &mut rng);
                    image.data = evolve(&image.data, &data_model, &mut fresh, &SIZE, &mut rng);
                }
            }
        }
        let mut backup = Backup::new(label(week - 1));
        for image in &images {
            backup.extend(image.base.iter().copied());
            backup.extend(image.data.iter().copied());
        }
        series.push(backup);
    }
    series
}

/// One student's image: the base-installation copy plus private data.
#[derive(Clone, Debug)]
struct UserImage {
    base: Vec<ChunkRecord>,
    data: Vec<ChunkRecord>,
}

/// Builds a user-data stream: unique runs interleaved with package files.
fn build_user_data(
    target: usize,
    packages: &SharedPool,
    fresh: &mut FingerprintAllocator,
    rng: &mut impl Rng,
) -> Vec<ChunkRecord> {
    let mut data = Vec::with_capacity(target + 64);
    while data.len() < target {
        if rng.gen::<f64>() < 0.25 {
            data.extend_from_slice(packages.sample_run(rng, 0.4));
        } else {
            let run = crate::util::run_length(rng, 32.0, 160);
            data.extend((0..run).map(|_| SIZE.record(fresh.next_fp())));
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::stats;

    fn small() -> BackupSeries {
        generate(&VmConfig::scaled(3000, 800))
    }

    #[test]
    fn shape_counts() {
        let s = small();
        assert_eq!(s.len(), 13);
        assert_eq!(s.get(0).unwrap().label, "week-01");
        assert_eq!(s.latest().unwrap().label, "week-13");
    }

    #[test]
    fn all_chunks_fixed_size() {
        let s = small();
        assert!(s.latest().unwrap().iter().all(|c| c.size == 4096));
    }

    #[test]
    fn extreme_dedup_ratio() {
        let s = small();
        let ratio = stats::dedup_ratio(&s);
        // Scaled from the paper's 47.6x at 156 users; at 20 users the
        // cross-user multiplier is proportionally smaller.
        assert!(ratio > 10.0, "VM-like dedup ratio {ratio}");
    }

    #[test]
    fn phase_change_separates_eras() {
        let s = small();
        // Before the phase change vs the final week: little shared content.
        let early_vs_last = stats::content_overlap(s.get(3).unwrap(), s.get(12).unwrap());
        assert!(early_vs_last < 0.15, "early/late overlap {early_vs_last}");
        // After the phase change: high redundancy again.
        let late_vs_last = stats::content_overlap(s.get(11).unwrap(), s.get(12).unwrap());
        assert!(late_vs_last > 0.8, "late overlap {late_vs_last}");
    }

    #[test]
    fn heavy_window_reduces_week_to_week_overlap() {
        let s = small();
        let calm = stats::content_overlap(s.get(1).unwrap(), s.get(2).unwrap());
        let heavy = stats::content_overlap(s.get(5).unwrap(), s.get(6).unwrap());
        assert!(
            heavy < calm,
            "heavy-week overlap {heavy} not below calm-week {calm}"
        );
    }

    #[test]
    fn cross_user_redundancy_within_backup() {
        let s = small();
        let first = s.get(0).unwrap();
        // Base chunks occur once per user.
        let freq = stats::frequency_map(first);
        let max = freq.values().copied().max().unwrap();
        assert!(max >= 20, "max frequency {max} — base not shared?");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate(&VmConfig::scaled(500, 100)),
            generate(&VmConfig::scaled(500, 100))
        );
    }

    #[test]
    fn validation() {
        let mut c = VmConfig::scaled(10, 10);
        c.heavy_weeks = (8, 5);
        assert!(c.validate().is_err());
        let mut c = VmConfig::scaled(10, 10);
        c.phase_survival = 2.0;
        assert!(c.validate().is_err());
    }
}
