//! Seeded workload generators reproducing the statistical shape of the
//! paper's three evaluation datasets (§5.1).
//!
//! The original traces are not redistributable, so each generator synthesizes
//! a workload with the properties the attacks and defenses actually depend on
//! (see DESIGN.md §2 for the substitution argument):
//!
//! * **skewed chunk frequencies** (Fig. 1) — a Zipf-weighted pool of shared
//!   "common files" whose chunks recur massively;
//! * **chunk locality** — duplicate content appears as repeated chunk
//!   *sequences* and version-to-version changes are clustered edits, so
//!   neighbouring chunks stay neighbours across backups;
//! * **realistic deduplication ratios** — calibrated per dataset and asserted
//!   by tests.
//!
//! | module | models | chunking | key traits |
//! |---|---|---|---|
//! | [`fsl`] | FSL Fslhomes: 6 users × 5 monthly fulls | variable 8 KB | 7.6× dedup, moderate churn |
//! | [`vm`] | VM course images: N users × 13 weekly fulls | fixed 4 KB | 47.6× dedup, heavy-churn window (weeks 5–8) |
//! | [`synthetic`] | Lillibridge-style snapshot chain from one disk image | content-level → CDC | 2% files modified at 2.5%, ~0.9% new data per snapshot |
//!
//! All generators are deterministic in their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evolve;
pub mod fsl;
pub mod pool;
pub mod synthetic;
pub mod util;
pub mod vm;
