//! The synthetic snapshot dataset (§5.1, "Synthetic"), generated at the
//! **content level** following Lillibridge et al.'s method:
//!
//! > "We create a sequence of snapshots starting from the initial snapshot,
//! > such that each snapshot is created from the previous one by randomly
//! > picking 2% of files and modifying 2.5% of their content, and also
//! > adding 10 MB of new data."
//!
//! The paper's initial snapshot is a public Ubuntu 14.04 disk image; we
//! substitute a deterministic, seed-reproducible synthetic file tree of the
//! same structure (the "publicly available" auxiliary information is then
//! simply the seed — see DESIGN.md §2). Unlike the trace-level FSL/VM
//! generators, this dataset produces **real bytes**, exercising the full
//! chunking + fingerprinting pipeline end to end.

use freqdedup_chunking::cdc::CdcParams;
use freqdedup_chunking::records_from_bytes;
use freqdedup_trace::{Backup, BackupSeries};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::util::Zipf;

/// Configuration of the synthetic content generator.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Approximate total bytes of the initial snapshot (paper: 1.1 GB,
    /// scaled down by default).
    pub total_bytes: usize,
    /// Number of snapshots to produce, including the initial one
    /// (paper: 10).
    pub snapshots: usize,
    /// Fraction of files modified per snapshot (paper: 2%).
    pub modify_file_frac: f64,
    /// Fraction of a modified file's content that changes (paper: 2.5%).
    pub modify_content_frac: f64,
    /// New data added per snapshot, as a fraction of the initial volume
    /// (paper: 10 MB on 1.1 GB ≈ 0.9%).
    pub new_data_frac: f64,
    /// Fraction of file content drawn from shared filler patterns
    /// (models the intra-image duplication of real disk images).
    pub common_block_frac: f64,
    /// Master seed; the initial snapshot is a pure function of it (the
    /// "public image").
    pub seed: u64,
}

impl SyntheticConfig {
    /// A scaled configuration with the paper's mutation rates.
    #[must_use]
    pub fn scaled(total_bytes: usize) -> Self {
        SyntheticConfig {
            total_bytes,
            snapshots: 10,
            modify_file_frac: 0.02,
            modify_content_frac: 0.025,
            new_data_frac: 0.009,
            common_block_frac: 0.15,
            seed: 0x5717,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_bytes < 64 * 1024 {
            return Err("total_bytes must be at least 64 KiB".into());
        }
        if self.snapshots == 0 {
            return Err("snapshots must be positive".into());
        }
        for (name, v) in [
            ("modify_file_frac", self.modify_file_frac),
            ("modify_content_frac", self.modify_content_frac),
            ("new_data_frac", self.new_data_frac),
            ("common_block_frac", self.common_block_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1]"));
            }
        }
        Ok(())
    }
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self::scaled(32 * 1024 * 1024)
    }
}

/// One synthetic file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthFile {
    /// Stable file identifier.
    pub id: u64,
    /// File contents.
    pub data: Vec<u8>,
}

/// The evolving snapshot state: holds the current file tree and advances it
/// snapshot by snapshot (only one snapshot is materialized at a time).
#[derive(Debug)]
pub struct SyntheticSnapshots {
    config: SyntheticConfig,
    files: Vec<SynthFile>,
    patterns: Vec<Vec<u8>>,
    pattern_popularity: Zipf,
    rng: ChaCha8Rng,
    next_file_id: u64,
    snapshot_index: usize,
    initial_bytes: usize,
}

impl SyntheticSnapshots {
    /// Generates the initial snapshot (index 0, the "public image").
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    #[must_use]
    pub fn new(config: SyntheticConfig) -> Self {
        config.validate().expect("invalid synthetic configuration");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        // Shared filler patterns (16–64 KiB each), reused with Zipf
        // popularity — the most popular patterns recur many times, like
        // common headers/padding/library blobs in a real disk image.
        let patterns: Vec<Vec<u8>> = (0..24)
            .map(|_| {
                let len = rng.gen_range(16 * 1024..64 * 1024);
                let mut buf = vec![0u8; len];
                rng.fill_bytes(&mut buf);
                buf
            })
            .collect();

        let mut state = SyntheticSnapshots {
            pattern_popularity: Zipf::new(patterns.len(), 1.2),
            files: Vec::new(),
            patterns,
            next_file_id: 0,
            snapshot_index: 0,
            initial_bytes: config.total_bytes,
            rng,
            config,
        };
        let mut total = 0usize;
        while total < state.initial_bytes {
            let file = state.fresh_file();
            total += file.data.len();
            state.files.push(file);
        }
        state
    }

    fn fresh_file(&mut self) -> SynthFile {
        // File sizes: 8 KiB · 2^k, k geometric — a heavy-ish tail like real
        // file systems.
        let mut size = 8 * 1024usize;
        while self.rng.gen::<f64>() < 0.5 && size < 512 * 1024 {
            size *= 2;
        }
        let mut data = Vec::with_capacity(size);
        while data.len() < size {
            if self.rng.gen::<f64>() < self.config.common_block_frac {
                let p = self.pattern_popularity.sample(&mut self.rng);
                let pattern = &self.patterns[p];
                // Often only a prefix of the pattern occurs (older/truncated
                // copies), giving the pattern's chunks nested, distinct
                // frequencies instead of an exact tie — real images show the
                // same structure, and stable top ranks are what frequency
                // analysis seeds on (§4.2).
                let take = if self.rng.gen::<f64>() < 0.5 {
                    self.rng.gen_range(pattern.len() / 4..=pattern.len())
                } else {
                    pattern.len()
                };
                data.extend_from_slice(&pattern[..take]);
            } else {
                let seg = self.rng.gen_range(8 * 1024..32 * 1024);
                let start = data.len();
                data.resize(start + seg, 0);
                self.rng.fill_bytes(&mut data[start..]);
            }
        }
        data.truncate(size);
        let id = self.next_file_id;
        self.next_file_id += 1;
        SynthFile { id, data }
    }

    /// The current snapshot's files, in stable order.
    #[must_use]
    pub fn files(&self) -> &[SynthFile] {
        &self.files
    }

    /// Index of the current snapshot (0 = initial).
    #[must_use]
    pub fn snapshot_index(&self) -> usize {
        self.snapshot_index
    }

    /// Advances to the next snapshot: modifies 2% of files in 2.5% of their
    /// content and adds the configured amount of new data.
    pub fn advance(&mut self) {
        let n_modify = ((self.files.len() as f64) * self.config.modify_file_frac).ceil() as usize;
        for _ in 0..n_modify {
            let idx = self.rng.gen_range(0..self.files.len());
            let len = self.files[idx].data.len();
            let region = ((len as f64) * self.config.modify_content_frac).ceil() as usize;
            let region = region.clamp(1, len);
            let start = self.rng.gen_range(0..=len - region);
            let file = &mut self.files[idx];
            self.rng.fill_bytes(&mut file.data[start..start + region]);
        }
        let new_bytes = ((self.initial_bytes as f64) * self.config.new_data_frac) as usize;
        let mut added = 0usize;
        while added < new_bytes {
            let f = self.fresh_file();
            added += f.data.len();
            self.files.push(f);
        }
        self.snapshot_index += 1;
    }

    /// Chunks the current snapshot into a [`Backup`] (files chunked
    /// independently, concatenated in file order).
    #[must_use]
    pub fn to_backup(&self, cdc: &CdcParams) -> Backup {
        let mut backup = Backup::new(label(self.snapshot_index));
        for file in &self.files {
            backup.extend(records_from_bytes(&file.data, cdc));
        }
        backup
    }
}

/// Label of snapshot `i` (0 = the public initial image).
#[must_use]
pub fn label(i: usize) -> String {
    format!("snap-{i:02}")
}

/// Generates the whole series as fingerprint backups (the common entry point
/// for the trace-driven experiments).
///
/// # Panics
///
/// Panics on an invalid configuration.
#[must_use]
pub fn generate_series(config: &SyntheticConfig, cdc: &CdcParams) -> BackupSeries {
    let mut state = SyntheticSnapshots::new(config.clone());
    let mut series = BackupSeries::new("synthetic");
    series.push(state.to_backup(cdc));
    for _ in 1..config.snapshots {
        state.advance();
        series.push(state.to_backup(cdc));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::stats;

    fn tiny_config() -> SyntheticConfig {
        let mut c = SyntheticConfig::scaled(2 * 1024 * 1024);
        c.snapshots = 3;
        c
    }

    fn cdc() -> CdcParams {
        CdcParams::with_avg_size(4096).expect("valid test parameters")
    }

    #[test]
    fn initial_snapshot_deterministic() {
        let a = SyntheticSnapshots::new(tiny_config());
        let b = SyntheticSnapshots::new(tiny_config());
        assert_eq!(a.files(), b.files());
    }

    #[test]
    fn total_bytes_close_to_target() {
        let s = SyntheticSnapshots::new(tiny_config());
        let total: usize = s.files().iter().map(|f| f.data.len()).sum();
        assert!(total >= 2 * 1024 * 1024);
        assert!(total < 3 * 1024 * 1024, "overshoot: {total}");
    }

    #[test]
    fn advance_modifies_and_grows() {
        let mut s = SyntheticSnapshots::new(tiny_config());
        let before: usize = s.files().iter().map(|f| f.data.len()).sum();
        let n_before = s.files().len();
        s.advance();
        let after: usize = s.files().iter().map(|f| f.data.len()).sum();
        assert!(s.files().len() > n_before, "no new files added");
        assert!(after > before, "no new bytes added");
        assert_eq!(s.snapshot_index(), 1);
    }

    #[test]
    fn adjacent_snapshots_highly_redundant() {
        let mut s = SyntheticSnapshots::new(tiny_config());
        let b0 = s.to_backup(&cdc());
        s.advance();
        let b1 = s.to_backup(&cdc());
        let overlap = stats::content_overlap(&b0, &b1);
        assert!(overlap > 0.9, "snapshot overlap {overlap}");
        let loc = stats::locality_overlap(&b0, &b1);
        assert!(loc > 0.85, "snapshot locality {loc}");
    }

    #[test]
    fn series_dedup_ratio_near_snapshot_count() {
        // Nearly identical snapshots: dedup ratio approaches the number of
        // snapshots (the paper reports ~10x for 10 snapshots).
        let series = generate_series(&tiny_config(), &cdc());
        assert_eq!(series.len(), 3);
        let ratio = stats::dedup_ratio(&series);
        assert!((2.0..3.2).contains(&ratio), "ratio {ratio} for 3 snapshots");
    }

    #[test]
    fn common_patterns_create_intra_snapshot_duplicates() {
        let s = SyntheticSnapshots::new(tiny_config());
        let b = s.to_backup(&cdc());
        let cdf = stats::FrequencyCdf::from_backups([&b], true);
        assert!(!cdf.is_empty(), "no duplicate chunks within snapshot");
        assert!(cdf.max_frequency() >= 2, "max {}", cdf.max_frequency());
    }

    #[test]
    fn labels() {
        assert_eq!(label(0), "snap-00");
        assert_eq!(label(9), "snap-09");
    }

    #[test]
    fn validation() {
        let mut c = tiny_config();
        c.total_bytes = 1;
        assert!(c.validate().is_err());
        let mut c = tiny_config();
        c.modify_file_frac = 1.5;
        assert!(c.validate().is_err());
    }
}
