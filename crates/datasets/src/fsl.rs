//! FSL-like backup series generator (§5.1, "FSL" dataset).
//!
//! Models the Fslhomes workload: six users' home directories snapshotted as
//! five monthly full backups, variable-size chunks of 8 KB average. Each
//! user's stream interleaves:
//!
//! * **unique runs** — user-private file data (once-occurring chunks);
//! * **cold shared files** — a corpus shared across users (cross-user
//!   deduplication);
//! * **hot files** — a small Zipf-popular pool (the frequency skew of
//!   Fig. 1 and the stable top-frequency anchors the attack seeds on).
//!
//! Months evolve by clustered edits plus appended growth, preserving chunk
//! locality exactly as backup workloads do.

use freqdedup_trace::{Backup, BackupSeries, ChunkRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::evolve::{evolve, EditModel};
use crate::pool::SharedPool;
use crate::util::{run_length, FingerprintAllocator, SizeModel};

/// Configuration of the FSL-like generator.
#[derive(Clone, Debug)]
pub struct FslConfig {
    /// Number of users (paper: 6).
    pub users: usize,
    /// Number of monthly full backups (paper: 5).
    pub backups: usize,
    /// Approximate chunks per user per backup (scale knob).
    pub chunks_per_user: usize,
    /// Chunk size model (paper: variable, 8 KB average).
    pub size_model: SizeModel,
    /// Probability that a generated run is a hot (Zipf) shared file.
    pub hot_run_prob: f64,
    /// Probability that a generated run is a cold shared-corpus file.
    pub cold_run_prob: f64,
    /// Fraction of each stream touched by clustered edits per month.
    pub edit_frac: f64,
    /// Appended new data per month, as a fraction of the stream.
    pub growth_frac: f64,
    /// Master seed.
    pub seed: u64,
}

impl FslConfig {
    /// The default reproduction scale: 6 users × 5 backups, ~20k chunks per
    /// user per backup (≈ 120k logical chunks per backup).
    #[must_use]
    pub fn scaled(chunks_per_user: usize) -> Self {
        FslConfig {
            users: 6,
            backups: 5,
            chunks_per_user,
            size_model: SizeModel::Variable(8 * 1024),
            hot_run_prob: 0.10,
            cold_run_prob: 0.03,
            edit_frac: 0.05,
            growth_frac: 0.015,
            seed: 0xf51,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.users == 0 || self.backups == 0 || self.chunks_per_user == 0 {
            return Err("users, backups and chunks_per_user must be positive".into());
        }
        if self.hot_run_prob + self.cold_run_prob >= 1.0 {
            return Err("hot_run_prob + cold_run_prob must be < 1".into());
        }
        Ok(())
    }
}

impl Default for FslConfig {
    fn default() -> Self {
        Self::scaled(20_000)
    }
}

/// The paper's monthly backup labels.
const LABELS: [&str; 5] = ["Jan 22", "Feb 22", "Mar 22", "Apr 21", "May 21"];

/// Label of backup `i` in an FSL-like series.
#[must_use]
pub fn label(i: usize) -> String {
    LABELS
        .get(i)
        .map_or_else(|| format!("month-{:02}", i + 1), |s| (*s).to_string())
}

/// Generates an FSL-like [`BackupSeries`].
///
/// # Panics
///
/// Panics on an invalid configuration.
///
/// # Example
///
/// ```
/// use freqdedup_datasets::fsl::{generate, FslConfig};
///
/// let series = generate(&FslConfig::scaled(2000));
/// assert_eq!(series.len(), 5);
/// assert!(series.latest().unwrap().len() > 10_000); // 6 users x 2000
/// ```
#[must_use]
pub fn generate(config: &FslConfig) -> BackupSeries {
    config.validate().expect("invalid FSL configuration");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut fresh = FingerprintAllocator::new(0x0f51);
    let mut pool_alloc = FingerprintAllocator::new(0x1f51);

    // Hot pool: small files, Zipf popularity (frequency skew).
    let hot = SharedPool::generate(
        300,
        8.0,
        32,
        1.05,
        &mut pool_alloc,
        &config.size_model,
        &mut rng,
    );
    // Filler chunks: the extreme tail of Fig. 1 — a handful of chunks
    // (zero-filled blocks, common headers/padding) that occur orders of
    // magnitude more often than anything else, with strictly decreasing
    // weights. Their stable, well-separated top ranks are what the
    // ciphertext-only attack seeds on (§4.2).
    let fillers: Vec<ChunkRecord> = (0..8)
        .map(|_| config.size_model.record(pool_alloc.next_fp()))
        .collect();
    // Cold corpus: *large* shared directory trees (multi-megabyte chunk
    // sequences), reused across users. Real duplicate content is dominated
    // by whole copied directories/archives — long runs much bigger than a
    // dedup segment, so their interior segments re-form identically in any
    // context (this is what keeps MinHash encryption's storage loss small,
    // §7.3).
    let cold = SharedPool::generate(
        16,
        600.0,
        1500,
        1.0,
        &mut pool_alloc,
        &config.size_model,
        &mut rng,
    );

    // Initial user streams.
    let mut streams: Vec<Vec<ChunkRecord>> = (0..config.users)
        .map(|_| {
            let mut stream = Vec::with_capacity(config.chunks_per_user + 64);
            while stream.len() < config.chunks_per_user {
                append_run(
                    &mut stream,
                    config,
                    &hot,
                    &cold,
                    &fillers,
                    &mut fresh,
                    &mut rng,
                );
            }
            stream
        })
        .collect();

    // Monthly churn: clustered edits plus directory-churn reordering (files
    // created/renamed between months change the snapshot traversal order).
    let edit_model = EditModel::light(config.edit_frac).with_reorder(0.25);
    let mut series = BackupSeries::new("fsl");
    for b in 0..config.backups {
        if b > 0 {
            for stream in &mut streams {
                let mut next = evolve(
                    stream,
                    &edit_model,
                    &mut fresh,
                    &config.size_model,
                    &mut rng,
                );
                let grow_target =
                    next.len() + (config.growth_frac * next.len() as f64).round() as usize;
                while next.len() < grow_target {
                    append_run(
                        &mut next, config, &hot, &cold, &fillers, &mut fresh, &mut rng,
                    );
                }
                *stream = next;
            }
        }
        let mut backup = Backup::new(label(b));
        for stream in &streams {
            backup.extend(stream.iter().copied());
        }
        series.push(backup);
    }
    series
}

/// Probability that a run is a filler-chunk run (zero-chunk analogue).
const FILLER_RUN_PROB: f64 = 0.06;

/// Appends one run to a stream: a filler run, a hot file, a cold corpus
/// file, or a run of fresh unique chunks.
fn append_run(
    stream: &mut Vec<ChunkRecord>,
    config: &FslConfig,
    hot: &SharedPool,
    cold: &SharedPool,
    fillers: &[ChunkRecord],
    fresh: &mut FingerprintAllocator,
    rng: &mut impl Rng,
) {
    let roll: f64 = rng.gen();
    if roll < FILLER_RUN_PROB {
        // A short run of one filler chunk repeated (like a zero-filled
        // region). Filler index ~ geometric: strictly decreasing, well
        // separated frequencies.
        push_filler(stream, fillers, rng);
    } else if roll < FILLER_RUN_PROB + config.hot_run_prob {
        // Filler padding frequently sits right before file content; these
        // recurring filler→file-head adjacencies give the top-frequency
        // chunks *count-dominant* neighbours and are exactly how the
        // locality crawl bridges from its frequency-analysis seed into the
        // file sequences (§4.2's iterated inference).
        if rng.gen::<f64>() < 0.5 {
            push_filler(stream, fillers, rng);
        }
        stream.extend_from_slice(hot.sample_run(rng, 0.4));
    } else if roll < FILLER_RUN_PROB + config.hot_run_prob + config.cold_run_prob {
        if rng.gen::<f64>() < 0.5 {
            push_filler(stream, fillers, rng);
        }
        let idx = rng.gen_range(0..cold.len());
        stream.extend_from_slice(cold.file(idx));
    } else {
        let len = run_length(rng, 24.0, 120);
        stream.extend((0..len).map(|_| config.size_model.record(fresh.next_fp())));
    }
}

/// Appends a short filler run (one filler chunk, geometric index, repeated
/// 1–4 times).
fn push_filler(stream: &mut Vec<ChunkRecord>, fillers: &[ChunkRecord], rng: &mut impl Rng) {
    let mut idx = 0usize;
    while idx + 1 < fillers.len() && rng.gen::<f64>() < 0.45 {
        idx += 1;
    }
    let reps = rng.gen_range(1..=4);
    stream.extend(std::iter::repeat_n(fillers[idx], reps));
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::stats;

    fn small() -> BackupSeries {
        generate(&FslConfig::scaled(5000))
    }

    #[test]
    fn shape_counts() {
        let s = small();
        assert_eq!(s.len(), 5);
        assert_eq!(s.get(0).unwrap().label, "Jan 22");
        assert_eq!(s.latest().unwrap().label, "May 21");
        let latest = s.latest().unwrap();
        assert!(
            latest.len() >= 6 * 5000,
            "latest has {} chunks",
            latest.len()
        );
    }

    #[test]
    fn dedup_ratio_in_band() {
        let s = small();
        let ratio = stats::dedup_ratio(&s);
        assert!(
            (4.5..10.5).contains(&ratio),
            "FSL-like dedup ratio {ratio}, paper reports 7.6x"
        );
    }

    #[test]
    fn adjacent_versions_highly_redundant() {
        let s = small();
        let overlap = stats::content_overlap(s.get(3).unwrap(), s.get(4).unwrap());
        assert!(overlap > 0.85, "version content overlap {overlap}");
    }

    #[test]
    fn chunk_locality_preserved_across_versions() {
        let s = small();
        let loc = stats::locality_overlap(s.get(3).unwrap(), s.get(4).unwrap());
        assert!(loc > 0.7, "locality overlap {loc}");
    }

    #[test]
    fn frequency_distribution_skewed() {
        let s = small();
        let cdf = stats::FrequencyCdf::from_backups(s.iter(), false);
        // The vast majority of chunks occur rarely...
        assert!(cdf.fraction_above(100) < 0.01);
        // ...but a heavy tail of hot chunks exists (scales with the
        // configured chunks_per_user; at full scale it reaches thousands).
        assert!(cdf.max_frequency() > 80, "max freq {}", cdf.max_frequency());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&FslConfig::scaled(1000));
        let b = generate(&FslConfig::scaled(1000));
        assert_eq!(a, b);
        let mut cfg = FslConfig::scaled(1000);
        cfg.seed = 99;
        assert_ne!(generate(&cfg), a);
    }

    #[test]
    fn variable_sizes_produce_many_block_classes() {
        let s = small();
        let classes: std::collections::HashSet<u32> = s
            .latest()
            .unwrap()
            .iter()
            .map(ChunkRecord::blocks)
            .collect();
        assert!(classes.len() > 100, "{} block classes", classes.len());
    }

    #[test]
    fn labels_extend_beyond_five() {
        assert_eq!(label(0), "Jan 22");
        assert_eq!(label(5), "month-06");
    }

    #[test]
    fn validation() {
        let mut c = FslConfig::scaled(100);
        c.users = 0;
        assert!(c.validate().is_err());
        let mut c = FslConfig::scaled(100);
        c.hot_run_prob = 0.6;
        c.cold_run_prob = 0.5;
        assert!(c.validate().is_err());
    }
}
