//! Networked encrypted-deduplication service.
//!
//! Every experiment before this crate ran in one process; the paper's
//! adversary, however, sits at the *storage provider* — it observes the
//! ciphertext chunk stream that clients upload to an encrypted-dedup
//! service (§3: the logical order of ciphertext chunks of the latest
//! backup before deduplication). This crate builds that vantage point:
//!
//! * [`frame`] — length-prefixed, CRC-32-checked wire frames;
//! * [`proto`] — the message set (HELLO version negotiation,
//!   PUT-CHUNK-BATCH, COMMIT-MANIFEST, GET-CHUNK, RESTORE-BACKUP, STATS,
//!   SHUTDOWN) and its binary encoding;
//! * [`pool`] — a bounded connection worker pool built on the scoped
//!   deterministic primitives of [`freqdedup_core::par`];
//! * [`server`] — the TCP service: a [`freqdedup_store::sharded::ShardedDedupEngine`]
//!   (optionally durable via the PR 4 persistence layer) behind an accept
//!   loop and N session workers, with graceful drain-and-checkpoint
//!   shutdown;
//! * [`session`] — the per-connection protocol state machine;
//! * [`client`] — the client library: batched, pipelined uploads and
//!   verified restore, plus [`client::ResilientClient`] — deadlines,
//!   seeded-backoff reconnects, and resumable exactly-once commits;
//! * [`fault`] — deterministic network fault injection: a seeded,
//!   frame-aware TCP proxy ([`fault::FaultProxy`]) for the chaos suite;
//! * [`tap`] — the provider-side adversary tap: the per-session observed
//!   ciphertext fingerprint streams, re-materialized as ordinary
//!   [`freqdedup_trace::Backup`]s so `LocalityAttack` / `AdvancedAttack`
//!   run unchanged against live traffic.
//!
//! The wire format byte layout, the threading model and the tap's
//! threat-surface mapping to the paper's adversary models are documented
//! in `DESIGN.md` §8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod frame;
pub mod pool;
pub mod proto;
pub mod server;
pub mod session;
pub mod tap;
