//! The wire message set and its binary encoding.
//!
//! One encoded message per [frame](crate::frame). The first payload byte
//! is the message tag; all integers are little-endian; strings are
//! `u16` length + UTF-8 bytes. See `DESIGN.md` §8 for the full byte
//! layout of every message.
//!
//! The protocol is deliberately session-oriented: a connection performs
//! `HELLO` version negotiation once, then uploads chunk batches that the
//! server both deduplicates *and* taps (the provider observes the
//! pre-dedup logical stream — exactly the paper's adversary model), and
//! finally commits the stream as a named backup manifest.

use freqdedup_trace::{ChunkRecord, Fingerprint};

use crate::frame::{WireError, MAX_FRAME_BYTES};

/// Current wire protocol version. Version 2 added the session-resume
/// handshake ([`Message::Resume`] / [`Message::ResumeAck`]), the
/// idempotent-commit id on [`Message::CommitManifest`], and the
/// `tap_warnings` counter in [`ServerStats`]. Version 3 added the
/// storage-lifecycle messages ([`Message::DeleteBackup`],
/// [`Message::Gc`], [`Message::Rekey`] and their acks) and the
/// [`code::STALE_EPOCH`] refusal for readers that negotiated before a
/// rekey.
pub const WIRE_VERSION: u16 = 3;
/// Oldest wire protocol version this implementation still accepts.
pub const MIN_WIRE_VERSION: u16 = 2;

/// Upper bound on chunks per PUT batch (keeps frames well under
/// [`MAX_FRAME_BYTES`] even with payloads).
pub const MAX_BATCH_CHUNKS: usize = 65_536;

const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_PUT_BATCH: u8 = 0x03;
const TAG_PUT_ACK: u8 = 0x04;
const TAG_COMMIT: u8 = 0x05;
const TAG_COMMIT_ACK: u8 = 0x06;
const TAG_GET_CHUNK: u8 = 0x07;
const TAG_CHUNK_RESP: u8 = 0x08;
const TAG_RESTORE: u8 = 0x09;
const TAG_RESTORE_HEADER: u8 = 0x0a;
const TAG_STATS: u8 = 0x0b;
const TAG_STATS_RESP: u8 = 0x0c;
const TAG_SHUTDOWN: u8 = 0x0d;
const TAG_SHUTDOWN_ACK: u8 = 0x0e;
const TAG_ERROR: u8 = 0x0f;
const TAG_RESUME: u8 = 0x10;
const TAG_RESUME_ACK: u8 = 0x11;
const TAG_DELETE_BACKUP: u8 = 0x12;
const TAG_DELETE_BACKUP_ACK: u8 = 0x13;
const TAG_GC: u8 = 0x14;
const TAG_GC_ACK: u8 = 0x15;
const TAG_REKEY: u8 = 0x16;
const TAG_REKEY_ACK: u8 = 0x17;

/// Protocol error codes carried by [`Message::ErrorResp`].
pub mod code {
    /// The client's protocol version is unsupported.
    pub const BAD_VERSION: u16 = 1;
    /// Message invalid in the current session state (e.g. before HELLO).
    pub const BAD_STATE: u16 = 2;
    /// Payload-bearing and metadata-only uploads were mixed.
    pub const MIXED_MODE: u16 = 3;
    /// RESTORE-BACKUP named an unknown manifest label.
    pub const UNKNOWN_LABEL: u16 = 4;
    /// A batch was structurally invalid (counts or sizes disagree).
    pub const BAD_BATCH: u16 = 5;
    /// The store was rekeyed to a newer key epoch after this session
    /// negotiated; reads under the old epoch are refused — reconnect to
    /// pick up the current epoch.
    pub const STALE_EPOCH: u16 = 6;
}

/// How a [`Message::ChunkResp`] relates to stored payload bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkStatus {
    /// The fingerprint is not stored.
    Missing,
    /// Stored with payload bytes (content mode); the response carries them.
    Payload,
    /// Stored metadata-only (trace mode); the response carries no bytes.
    Metadata,
}

/// What the server knows about the commit named by a [`Message::Resume`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResumeState {
    /// Nothing uploaded yet under this (client, commit id): start at
    /// batch 0.
    Fresh,
    /// A previous session uploaded `acked_batches` batches toward this
    /// commit before disconnecting; continue from there.
    InProgress,
    /// The commit id was already applied: do not re-upload anything —
    /// the ack carries the recorded manifest size.
    Committed,
}

impl ResumeState {
    fn to_byte(self) -> u8 {
        match self {
            ResumeState::Fresh => 0,
            ResumeState::InProgress => 1,
            ResumeState::Committed => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(ResumeState::Fresh),
            1 => Ok(ResumeState::InProgress),
            2 => Ok(ResumeState::Committed),
            _ => Err(WireError::Malformed("resume state")),
        }
    }
}

impl ChunkStatus {
    fn to_byte(self) -> u8 {
        match self {
            ChunkStatus::Missing => 0,
            ChunkStatus::Payload => 1,
            ChunkStatus::Metadata => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(ChunkStatus::Missing),
            1 => Ok(ChunkStatus::Payload),
            2 => Ok(ChunkStatus::Metadata),
            _ => Err(WireError::Malformed("chunk status")),
        }
    }
}

/// Aggregate service counters returned by STATS.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Logical chunks ingested (duplicates included).
    pub logical_chunks: u64,
    /// Logical bytes ingested.
    pub logical_bytes: u64,
    /// Unique chunks stored.
    pub unique_chunks: u64,
    /// Unique bytes stored.
    pub unique_bytes: u64,
    /// S1 duplicate hits (fingerprint cache).
    pub dup_cache_hits: u64,
    /// Open-container buffer duplicate hits.
    pub dup_buffer_hits: u64,
    /// S4 duplicate hits (on-disk index).
    pub dup_index_hits: u64,
    /// Containers sealed across all shards.
    pub containers_sealed: u64,
    /// Backup manifests committed since the service started.
    pub committed_backups: u64,
    /// Sessions served since the service started.
    pub sessions_served: u64,
    /// Tap-degradation warnings: streaming-state rebuilds forced by a
    /// corrupt/inconsistent `tap.fqis`, plus tap persistence failures
    /// survived at shutdown.
    pub tap_warnings: u64,
}

/// One wire protocol message (both directions share the message space).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Client → server: open a session, negotiate the protocol version.
    Hello {
        /// Highest version the client speaks.
        version: u16,
        /// Client name (diagnostics / server log only).
        client: String,
    },
    /// Server → client: session accepted at the given version
    /// (`min(client, server)`; the server rejects versions below
    /// [`MIN_WIRE_VERSION`] with [`code::BAD_VERSION`]).
    HelloAck {
        /// Negotiated protocol version.
        version: u16,
    },
    /// Client → server: a batch of MLE-encrypted chunks in logical
    /// (pre-dedup) stream order. `payloads`, when present, carries the
    /// ciphertext bytes of every chunk in the batch (all-or-none per
    /// batch; a service instance must not mix modes).
    PutChunkBatch {
        /// Client-assigned batch sequence number (echoed by the ack).
        seq: u32,
        /// `(fingerprint, size)` records in stream order.
        chunks: Vec<ChunkRecord>,
        /// Ciphertext payloads, parallel to `chunks` (content mode).
        payloads: Option<Vec<Vec<u8>>>,
    },
    /// Server → client: batch processed.
    PutAck {
        /// Echo of the batch sequence number.
        seq: u32,
        /// Chunks stored as unique.
        unique: u32,
        /// Chunks deduplicated.
        duplicate: u32,
    },
    /// Client → server: re-attach to an interrupted upload. Sent at most
    /// once per session, after HELLO and before any PUT; the server
    /// matches the (client name, commit id) pair against its parked
    /// uploads and applied-commit registry.
    Resume {
        /// Client-chosen idempotent commit id (nonzero).
        commit_id: u64,
    },
    /// Server → client: what the server knows about that commit.
    ResumeAck {
        /// Where the upload stands.
        state: ResumeState,
        /// Batches already processed toward this commit
        /// ([`ResumeState::InProgress`]; 0 otherwise).
        acked_batches: u32,
        /// Logical chunks recorded ([`ResumeState::Committed`]: the
        /// committed manifest size; [`ResumeState::InProgress`]: chunks
        /// pending so far).
        chunks: u64,
    },
    /// Client → server: commit everything uploaded on this session since
    /// the last commit as one named backup manifest.
    CommitManifest {
        /// Backup label (unique per backup; reused labels shadow).
        label: String,
        /// Client-chosen idempotent commit id; `0` opts out of
        /// idempotence tracking. A nonzero id that was already applied is
        /// *not* re-ingested — the server replays the recorded ack.
        commit_id: u64,
    },
    /// Server → client: manifest committed.
    CommitAck {
        /// Echo of the label.
        label: String,
        /// Logical chunks in the committed manifest.
        chunks: u64,
    },
    /// Client → server: fetch one stored chunk by fingerprint.
    GetChunk {
        /// Fingerprint to fetch.
        fp: u64,
    },
    /// Server → client: one chunk (also the per-chunk unit of a
    /// RESTORE-BACKUP stream).
    ChunkResp {
        /// Fingerprint of the chunk.
        fp: u64,
        /// Whether the chunk exists and carries payload bytes.
        status: ChunkStatus,
        /// Chunk size in bytes (0 when missing).
        size: u32,
        /// Payload bytes ([`ChunkStatus::Payload`] only, else empty).
        payload: Vec<u8>,
    },
    /// Client → server: stream back a committed backup.
    RestoreBackup {
        /// Manifest label to restore.
        label: String,
    },
    /// Server → client: restore accepted; exactly `count`
    /// [`Message::ChunkResp`] frames follow, in logical stream order.
    RestoreHeader {
        /// Echo of the label.
        label: String,
        /// Number of chunk frames that follow.
        count: u64,
    },
    /// Client → server: delete a committed backup manifest. Deletion is
    /// logical — chunk references are released and the manifest stops
    /// being restorable; container space is reclaimed by a later
    /// [`Message::Gc`].
    DeleteBackup {
        /// Manifest label to delete.
        label: String,
        /// Client-chosen idempotent operation id; `0` opts out. A nonzero
        /// id that was already applied replays the recorded ack instead
        /// of deleting twice.
        commit_id: u64,
    },
    /// Server → client: backup deleted.
    DeleteBackupAck {
        /// Echo of the label.
        label: String,
        /// Chunk references released by the deletion.
        chunks: u64,
        /// Logical bytes those references covered.
        logical_bytes: u64,
    },
    /// Client → server: run garbage collection — rewrite live chunks out
    /// of mostly-dead containers and drop the dead containers.
    Gc {
        /// A container is collected when at most this many live chunks
        /// per thousand remain in it (1000 collects everything not fully
        /// live; 0 collects only fully dead containers).
        threshold_permille: u32,
        /// Idempotent operation id (`0` opts out), as on
        /// [`Message::DeleteBackup`].
        commit_id: u64,
    },
    /// Server → client: garbage collection finished.
    GcAck {
        /// Containers dropped.
        containers_dropped: u64,
        /// Physical container bytes reclaimed.
        reclaimed_bytes: u64,
        /// Live chunks rewritten into fresh containers to free their
        /// old homes.
        moved_chunks: u64,
    },
    /// Client → server: REED-style rekeying — re-encrypt all stored
    /// containers under the next key epoch derived from `secret`,
    /// preserving dedup structure. After the ack, sessions that
    /// negotiated before the rekey are refused reads with
    /// [`code::STALE_EPOCH`].
    Rekey {
        /// The new epoch's secret key material.
        secret: Vec<u8>,
        /// Idempotent operation id (`0` opts out), as on
        /// [`Message::DeleteBackup`].
        commit_id: u64,
    },
    /// Server → client: rekey committed.
    RekeyAck {
        /// The key epoch now in force.
        epoch: u64,
        /// Containers rewritten under the new epoch.
        containers_rewritten: u64,
    },
    /// Client → server: request aggregate service counters.
    StatsReq,
    /// Server → client: aggregate service counters.
    StatsResp(ServerStats),
    /// Client → server: drain in-flight sessions, checkpoint the store,
    /// stop the service.
    Shutdown,
    /// Server → client: shutdown initiated.
    ShutdownAck,
    /// Server → client: request failed.
    ErrorResp {
        /// One of the [`code`] constants.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Longest string (label, client name, error detail) a message carries.
pub const MAX_STR_BYTES: usize = u16::MAX as usize;

fn put_str(out: &mut Vec<u8>, s: &str) {
    // Over-length strings are clipped at a char boundary so the frame
    // always decodes; callers that must not silently clip (the client's
    // manifest labels) validate against MAX_STR_BYTES before encoding.
    let mut len = s.len().min(MAX_STR_BYTES);
    while !s.is_char_boundary(len) {
        len -= 1;
    }
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len]);
}

impl Message {
    /// Encodes the message into one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Hello { version, client } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
                put_str(&mut out, client);
            }
            Message::HelloAck { version } => {
                out.push(TAG_HELLO_ACK);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Message::PutChunkBatch {
                seq,
                chunks,
                payloads,
            } => {
                out.push(TAG_PUT_BATCH);
                out.extend_from_slice(&seq.to_le_bytes());
                out.push(u8::from(payloads.is_some()));
                out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
                for (i, rec) in chunks.iter().enumerate() {
                    out.extend_from_slice(&rec.fp.value().to_le_bytes());
                    out.extend_from_slice(&rec.size.to_le_bytes());
                    if let Some(p) = payloads {
                        let bytes: &[u8] = p.get(i).map_or(&[], Vec::as_slice);
                        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                        out.extend_from_slice(bytes);
                    }
                }
            }
            Message::PutAck {
                seq,
                unique,
                duplicate,
            } => {
                out.push(TAG_PUT_ACK);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&unique.to_le_bytes());
                out.extend_from_slice(&duplicate.to_le_bytes());
            }
            Message::Resume { commit_id } => {
                out.push(TAG_RESUME);
                out.extend_from_slice(&commit_id.to_le_bytes());
            }
            Message::ResumeAck {
                state,
                acked_batches,
                chunks,
            } => {
                out.push(TAG_RESUME_ACK);
                out.push(state.to_byte());
                out.extend_from_slice(&acked_batches.to_le_bytes());
                out.extend_from_slice(&chunks.to_le_bytes());
            }
            Message::CommitManifest { label, commit_id } => {
                out.push(TAG_COMMIT);
                put_str(&mut out, label);
                out.extend_from_slice(&commit_id.to_le_bytes());
            }
            Message::CommitAck { label, chunks } => {
                out.push(TAG_COMMIT_ACK);
                put_str(&mut out, label);
                out.extend_from_slice(&chunks.to_le_bytes());
            }
            Message::GetChunk { fp } => {
                out.push(TAG_GET_CHUNK);
                out.extend_from_slice(&fp.to_le_bytes());
            }
            Message::ChunkResp {
                fp,
                status,
                size,
                payload,
            } => {
                out.push(TAG_CHUNK_RESP);
                out.extend_from_slice(&fp.to_le_bytes());
                out.push(status.to_byte());
                out.extend_from_slice(&size.to_le_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(payload);
            }
            Message::RestoreBackup { label } => {
                out.push(TAG_RESTORE);
                put_str(&mut out, label);
            }
            Message::RestoreHeader { label, count } => {
                out.push(TAG_RESTORE_HEADER);
                put_str(&mut out, label);
                out.extend_from_slice(&count.to_le_bytes());
            }
            Message::DeleteBackup { label, commit_id } => {
                out.push(TAG_DELETE_BACKUP);
                put_str(&mut out, label);
                out.extend_from_slice(&commit_id.to_le_bytes());
            }
            Message::DeleteBackupAck {
                label,
                chunks,
                logical_bytes,
            } => {
                out.push(TAG_DELETE_BACKUP_ACK);
                put_str(&mut out, label);
                out.extend_from_slice(&chunks.to_le_bytes());
                out.extend_from_slice(&logical_bytes.to_le_bytes());
            }
            Message::Gc {
                threshold_permille,
                commit_id,
            } => {
                out.push(TAG_GC);
                out.extend_from_slice(&threshold_permille.to_le_bytes());
                out.extend_from_slice(&commit_id.to_le_bytes());
            }
            Message::GcAck {
                containers_dropped,
                reclaimed_bytes,
                moved_chunks,
            } => {
                out.push(TAG_GC_ACK);
                out.extend_from_slice(&containers_dropped.to_le_bytes());
                out.extend_from_slice(&reclaimed_bytes.to_le_bytes());
                out.extend_from_slice(&moved_chunks.to_le_bytes());
            }
            Message::Rekey { secret, commit_id } => {
                out.push(TAG_REKEY);
                // Secrets ride as u16-length raw bytes (same bound as
                // strings, no UTF-8 requirement).
                let len = secret.len().min(MAX_STR_BYTES);
                out.extend_from_slice(&(len as u16).to_le_bytes());
                out.extend_from_slice(&secret[..len]);
                out.extend_from_slice(&commit_id.to_le_bytes());
            }
            Message::RekeyAck {
                epoch,
                containers_rewritten,
            } => {
                out.push(TAG_REKEY_ACK);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&containers_rewritten.to_le_bytes());
            }
            Message::StatsReq => out.push(TAG_STATS),
            Message::StatsResp(s) => {
                out.push(TAG_STATS_RESP);
                for v in [
                    s.logical_chunks,
                    s.logical_bytes,
                    s.unique_chunks,
                    s.unique_bytes,
                    s.dup_cache_hits,
                    s.dup_buffer_hits,
                    s.dup_index_hits,
                    s.containers_sealed,
                    s.committed_backups,
                    s.sessions_served,
                    s.tap_warnings,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Message::Shutdown => out.push(TAG_SHUTDOWN),
            Message::ShutdownAck => out.push(TAG_SHUTDOWN_ACK),
            Message::ErrorResp { code, message } => {
                out.push(TAG_ERROR);
                out.extend_from_slice(&code.to_le_bytes());
                put_str(&mut out, message);
            }
        }
        debug_assert!(out.len() <= MAX_FRAME_BYTES, "message exceeds frame bound");
        out
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on unknown tags, truncated fields, or
    /// structurally invalid batches.
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        let mut r = Cursor { buf: payload };
        let tag = r.u8()?;
        let msg = match tag {
            TAG_HELLO => Message::Hello {
                version: r.u16()?,
                client: r.str()?,
            },
            TAG_HELLO_ACK => Message::HelloAck { version: r.u16()? },
            TAG_PUT_BATCH => {
                let seq = r.u32()?;
                let has_payloads = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("payload flag")),
                };
                let count = r.u32()? as usize;
                if count > MAX_BATCH_CHUNKS {
                    return Err(WireError::Malformed("batch chunk count"));
                }
                let mut chunks = Vec::with_capacity(count);
                let mut payloads = has_payloads.then(|| Vec::with_capacity(count));
                for _ in 0..count {
                    let fp = r.u64()?;
                    let size = r.u32()?;
                    chunks.push(ChunkRecord::new(Fingerprint(fp), size));
                    if let Some(p) = &mut payloads {
                        let n = r.u32()? as usize;
                        p.push(r.bytes(n)?.to_vec());
                    }
                }
                r.finish()?;
                Message::PutChunkBatch {
                    seq,
                    chunks,
                    payloads,
                }
            }
            TAG_PUT_ACK => Message::PutAck {
                seq: r.u32()?,
                unique: r.u32()?,
                duplicate: r.u32()?,
            },
            TAG_RESUME => Message::Resume {
                commit_id: r.u64()?,
            },
            TAG_RESUME_ACK => Message::ResumeAck {
                state: ResumeState::from_byte(r.u8()?)?,
                acked_batches: r.u32()?,
                chunks: r.u64()?,
            },
            TAG_COMMIT => Message::CommitManifest {
                label: r.str()?,
                commit_id: r.u64()?,
            },
            TAG_COMMIT_ACK => Message::CommitAck {
                label: r.str()?,
                chunks: r.u64()?,
            },
            TAG_GET_CHUNK => Message::GetChunk { fp: r.u64()? },
            TAG_CHUNK_RESP => {
                let fp = r.u64()?;
                let status = ChunkStatus::from_byte(r.u8()?)?;
                let size = r.u32()?;
                let n = r.u32()? as usize;
                let payload = r.bytes(n)?.to_vec();
                Message::ChunkResp {
                    fp,
                    status,
                    size,
                    payload,
                }
            }
            TAG_RESTORE => Message::RestoreBackup { label: r.str()? },
            TAG_RESTORE_HEADER => Message::RestoreHeader {
                label: r.str()?,
                count: r.u64()?,
            },
            TAG_DELETE_BACKUP => Message::DeleteBackup {
                label: r.str()?,
                commit_id: r.u64()?,
            },
            TAG_DELETE_BACKUP_ACK => Message::DeleteBackupAck {
                label: r.str()?,
                chunks: r.u64()?,
                logical_bytes: r.u64()?,
            },
            TAG_GC => Message::Gc {
                threshold_permille: r.u32()?,
                commit_id: r.u64()?,
            },
            TAG_GC_ACK => Message::GcAck {
                containers_dropped: r.u64()?,
                reclaimed_bytes: r.u64()?,
                moved_chunks: r.u64()?,
            },
            TAG_REKEY => {
                let n = r.u16()? as usize;
                let secret = r.bytes(n)?.to_vec();
                Message::Rekey {
                    secret,
                    commit_id: r.u64()?,
                }
            }
            TAG_REKEY_ACK => Message::RekeyAck {
                epoch: r.u64()?,
                containers_rewritten: r.u64()?,
            },
            TAG_STATS => Message::StatsReq,
            TAG_STATS_RESP => Message::StatsResp(ServerStats {
                logical_chunks: r.u64()?,
                logical_bytes: r.u64()?,
                unique_chunks: r.u64()?,
                unique_bytes: r.u64()?,
                dup_cache_hits: r.u64()?,
                dup_buffer_hits: r.u64()?,
                dup_index_hits: r.u64()?,
                containers_sealed: r.u64()?,
                committed_backups: r.u64()?,
                sessions_served: r.u64()?,
                tap_warnings: r.u64()?,
            }),
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_SHUTDOWN_ACK => Message::ShutdownAck,
            TAG_ERROR => Message::ErrorResp {
                code: r.u16()?,
                message: r.str()?,
            },
            _ => return Err(WireError::Malformed("unknown message tag")),
        };
        // Batches already drained their cursor; for everything else,
        // trailing garbage means a codec mismatch.
        if !matches!(msg, Message::PutChunkBatch { .. }) {
            r.finish()?;
        }
        Ok(msg)
    }
}

/// Bounds-checked little-endian reader over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Malformed("field truncated"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.bytes(len)?)
            .map(str::to_owned)
            .map_err(|_| WireError::Malformed("string not utf-8"))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let bytes = msg.encode();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Message::Hello {
            version: WIRE_VERSION,
            client: "client-a".into(),
        });
        round_trip(Message::HelloAck {
            version: WIRE_VERSION,
        });
        round_trip(Message::PutChunkBatch {
            seq: 7,
            chunks: vec![ChunkRecord::new(1u64, 100), ChunkRecord::new(2u64, 50)],
            payloads: None,
        });
        round_trip(Message::PutChunkBatch {
            seq: 8,
            chunks: vec![ChunkRecord::new(9u64, 3)],
            payloads: Some(vec![vec![1, 2, 3]]),
        });
        round_trip(Message::PutAck {
            seq: 7,
            unique: 1,
            duplicate: 1,
        });
        round_trip(Message::Resume { commit_id: 77 });
        round_trip(Message::ResumeAck {
            state: ResumeState::Fresh,
            acked_batches: 0,
            chunks: 0,
        });
        round_trip(Message::ResumeAck {
            state: ResumeState::InProgress,
            acked_batches: 3,
            chunks: 1536,
        });
        round_trip(Message::ResumeAck {
            state: ResumeState::Committed,
            acked_batches: 0,
            chunks: 4096,
        });
        round_trip(Message::CommitManifest {
            label: "week-01".into(),
            commit_id: 0,
        });
        round_trip(Message::CommitManifest {
            label: "week-01".into(),
            commit_id: u64::MAX,
        });
        round_trip(Message::CommitAck {
            label: "week-01".into(),
            chunks: 1234,
        });
        round_trip(Message::GetChunk { fp: 42 });
        round_trip(Message::ChunkResp {
            fp: 42,
            status: ChunkStatus::Payload,
            size: 3,
            payload: vec![4, 5, 6],
        });
        round_trip(Message::ChunkResp {
            fp: 43,
            status: ChunkStatus::Missing,
            size: 0,
            payload: Vec::new(),
        });
        round_trip(Message::RestoreBackup {
            label: "week-01".into(),
        });
        round_trip(Message::RestoreHeader {
            label: "week-01".into(),
            count: 99,
        });
        round_trip(Message::DeleteBackup {
            label: "week-01".into(),
            commit_id: 5,
        });
        round_trip(Message::DeleteBackupAck {
            label: "week-01".into(),
            chunks: 1234,
            logical_bytes: 99_000,
        });
        round_trip(Message::Gc {
            threshold_permille: 300,
            commit_id: 6,
        });
        round_trip(Message::GcAck {
            containers_dropped: 4,
            reclaimed_bytes: 16_384,
            moved_chunks: 12,
        });
        round_trip(Message::Rekey {
            secret: b"epoch-one-secret".to_vec(),
            commit_id: 7,
        });
        round_trip(Message::Rekey {
            secret: Vec::new(),
            commit_id: 0,
        });
        round_trip(Message::RekeyAck {
            epoch: 1,
            containers_rewritten: 9,
        });
        round_trip(Message::StatsReq);
        round_trip(Message::StatsResp(ServerStats {
            logical_chunks: 1,
            logical_bytes: 2,
            unique_chunks: 3,
            unique_bytes: 4,
            dup_cache_hits: 5,
            dup_buffer_hits: 6,
            dup_index_hits: 7,
            containers_sealed: 8,
            committed_backups: 9,
            sessions_served: 10,
            tap_warnings: 11,
        }));
        round_trip(Message::Shutdown);
        round_trip(Message::ShutdownAck);
        round_trip(Message::ErrorResp {
            code: code::BAD_STATE,
            message: "nope".into(),
        });
    }

    #[test]
    fn rejects_unknown_tag() {
        assert!(matches!(
            Message::decode(&[0xee]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_truncated_fields() {
        let full = Message::CommitAck {
            label: "x".into(),
            chunks: 5,
        }
        .encode();
        for cut in 1..full.len() {
            assert!(
                Message::decode(&full[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = Message::Shutdown.encode();
        bytes.push(0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Malformed("trailing bytes"))
        ));
    }

    #[test]
    fn rejects_oversize_batch_count() {
        let mut bytes = vec![TAG_PUT_BATCH];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_bad_payload_flag() {
        let mut bytes = vec![TAG_PUT_BATCH];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(7);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Malformed("payload flag"))
        ));
    }
}
