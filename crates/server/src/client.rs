//! Client library: batched, pipelined uploads and verified restore.
//!
//! [`Client`] speaks the [`crate::proto`] message set over one TCP
//! connection. Uploads are *pipelined*: up to [`Client::window`] PUT
//! batches are in flight before the client starts consuming acks, so a
//! loopback round-trip never serializes the stream (acks are tiny and
//! cannot back up the socket buffers against the much larger data
//! direction). Acks arrive strictly in batch order — the server handles
//! a session sequentially — so matching them is a simple window drain.
//!
//! The client never sends plaintext: it uploads `(fingerprint, size)`
//! records of **MLE-encrypted** chunks (and, in content mode, the
//! ciphertext bytes). What the provider can nevertheless infer from that
//! stream is exactly what the rest of this workspace measures.

use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use freqdedup_chunking::{chunk_stream_par, content_fingerprint, Chunker};
use freqdedup_core::defense::{DefenseScheme, KeyContext};
use freqdedup_mle::{ChunkKey, Mle, MleError};
use freqdedup_trace::par::{par_map, ParConfig};
use freqdedup_trace::{Backup, ChunkRecord, Fingerprint};

use crate::fault::SplitMix64;
use crate::frame::{read_frame, write_frame, WireError};
use crate::proto::{ChunkStatus, Message, ResumeState, ServerStats, WIRE_VERSION};

/// A ciphertext-payload provider: maps a chunk record to its exact
/// `record.size` ciphertext bytes.
pub type PayloadFn<'a> = &'a dyn Fn(&ChunkRecord) -> Vec<u8>;

/// Default chunks per PUT batch.
pub const DEFAULT_BATCH: usize = 512;
/// Default pipeline window (unacked batches in flight).
pub const DEFAULT_WINDOW: usize = 8;

/// Errors surfaced by the client library.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Wire(WireError),
    /// The server answered with a protocol error.
    Server {
        /// One of the [`crate::proto::code`] constants.
        code: u16,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with the wrong message type, or restore
    /// verification failed.
    Protocol(String),
    /// A [`ResilientClient`] ran out of attempts; carries the error of
    /// the final attempt.
    Exhausted {
        /// Connection attempts made before giving up.
        attempts: u32,
        /// The error that ended the final attempt.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// Totals of one [`Client::upload_backup`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UploadSummary {
    /// Logical chunks sent.
    pub chunks: u64,
    /// Chunks the server stored as unique.
    pub unique: u64,
    /// Chunks the server deduplicated.
    pub duplicate: u64,
    /// PUT batches sent.
    pub batches: u32,
}

/// What one server-side GC pass did, as acknowledged over the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcSummary {
    /// Containers dropped.
    pub containers_dropped: u64,
    /// Physical container bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Live chunks rewritten into fresh containers.
    pub moved_chunks: u64,
}

/// A backup streamed back by [`Client::restore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestoredBackup {
    /// The restored record stream (label = manifest label).
    pub backup: Backup,
    /// Ciphertext payloads parallel to `backup.chunks` (content-mode
    /// stores only).
    pub payloads: Option<Vec<Vec<u8>>>,
}

/// One client session against a [`crate::server::Server`].
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Negotiated protocol version.
    version: u16,
    next_seq: u32,
    batch: usize,
    window: usize,
}

impl Client {
    /// Connects and performs HELLO version negotiation.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on connect failure, [`ClientError::Server`]
    /// when the server refuses the protocol version.
    pub fn connect(addr: impl ToSocketAddrs, name: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            stream,
            version: WIRE_VERSION,
            next_seq: 0,
            batch: DEFAULT_BATCH,
            window: DEFAULT_WINDOW,
        };
        let reply = client.call(&Message::Hello {
            version: WIRE_VERSION,
            client: name.to_string(),
        })?;
        match reply {
            Message::HelloAck { version } => {
                client.version = version;
                Ok(client)
            }
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// The negotiated protocol version.
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Sets the PUT batch size (builder style; clamped to ≥ 1).
    #[must_use]
    pub fn batch(mut self, chunks: usize) -> Self {
        self.batch = chunks.max(1);
        self
    }

    /// Sets the pipeline window in batches (builder style; clamped to ≥ 1).
    #[must_use]
    pub fn window(mut self, batches: usize) -> Self {
        self.window = batches.max(1);
        self
    }

    /// Uploads a backup's chunk stream metadata-only (trace mode), in
    /// logical order, pipelined.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; the session should be dropped afterwards.
    pub fn upload_backup(&mut self, backup: &Backup) -> Result<UploadSummary, ClientError> {
        self.upload_inner(backup, None::<fn(&ChunkRecord) -> Vec<u8>>)
    }

    /// Uploads a backup with ciphertext payload bytes (content mode);
    /// `payload_of` supplies the MLE ciphertext of each record and must
    /// return exactly `record.size` bytes.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; the session should be dropped afterwards.
    pub fn upload_backup_payloads(
        &mut self,
        backup: &Backup,
        payload_of: impl Fn(&ChunkRecord) -> Vec<u8>,
    ) -> Result<UploadSummary, ClientError> {
        self.upload_inner(backup, Some(payload_of))
    }

    /// Sets (or clears) the per-operation socket deadline: both the read
    /// and the write timeout. With a deadline set, a server that stops
    /// answering surfaces as a wire error instead of blocking forever.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Declares an idempotent upload (RESUME): asks the server what it
    /// already knows about `commit_id`. Returns the state plus the
    /// already-ingested batch count and chunk count.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn resume(&mut self, commit_id: u64) -> Result<(ResumeState, u32, u64), ClientError> {
        match self.call(&Message::Resume { commit_id })? {
            Message::ResumeAck {
                state,
                acked_batches,
                chunks,
            } => Ok((state, acked_batches, chunks)),
            other => Err(unexpected("ResumeAck", &other)),
        }
    }

    fn upload_inner(
        &mut self,
        backup: &Backup,
        payload_of: Option<impl Fn(&ChunkRecord) -> Vec<u8>>,
    ) -> Result<UploadSummary, ClientError> {
        self.upload_from(backup, payload_of, 0)
    }

    /// [`Self::upload_inner`] starting at batch index `skip` (resume
    /// path: the server already ingested the first `skip` batches of the
    /// deterministic `self.batch`-sized split).
    fn upload_from(
        &mut self,
        backup: &Backup,
        payload_of: Option<impl Fn(&ChunkRecord) -> Vec<u8>>,
        skip: u32,
    ) -> Result<UploadSummary, ClientError> {
        let mut summary = UploadSummary::default();
        let mut inflight: u32 = 0;
        for chunk_batch in backup.chunks.chunks(self.batch).skip(skip as usize) {
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            let payloads = payload_of
                .as_ref()
                .map(|f| chunk_batch.iter().map(f).collect());
            self.send(&Message::PutChunkBatch {
                seq,
                chunks: chunk_batch.to_vec(),
                payloads,
            })?;
            summary.batches += 1;
            summary.chunks += chunk_batch.len() as u64;
            inflight += 1;
            if inflight as usize >= self.window {
                self.drain_ack(&mut summary)?;
                inflight -= 1;
            }
        }
        while inflight > 0 {
            self.drain_ack(&mut summary)?;
            inflight -= 1;
        }
        Ok(summary)
    }

    fn drain_ack(&mut self, summary: &mut UploadSummary) -> Result<(), ClientError> {
        match self.recv()? {
            Message::PutAck {
                unique, duplicate, ..
            } => {
                summary.unique += u64::from(unique);
                summary.duplicate += u64::from(duplicate);
                Ok(())
            }
            other => Err(unexpected("PutAck", &other)),
        }
    }

    /// Commits everything uploaded since the last commit as one backup
    /// manifest; returns the committed chunk count.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; [`ClientError::Protocol`] when `label`
    /// exceeds the wire limit (it would otherwise be silently clipped,
    /// committing under a different name than requested).
    pub fn commit(&mut self, label: &str) -> Result<u64, ClientError> {
        self.commit_with_id(label, 0)
    }

    /// [`Self::commit`] with an idempotent commit id: a nonzero id that
    /// the server already applied is *not* re-ingested — the recorded
    /// ack is replayed (exactly-once commit). Id `0` opts out.
    ///
    /// # Errors
    ///
    /// As [`Self::commit`].
    pub fn commit_with_id(&mut self, label: &str, commit_id: u64) -> Result<u64, ClientError> {
        check_label(label)?;
        match self.call(&Message::CommitManifest {
            label: label.to_string(),
            commit_id,
        })? {
            Message::CommitAck { chunks, .. } => Ok(chunks),
            other => Err(unexpected("CommitAck", &other)),
        }
    }

    /// Fetches one stored chunk's ciphertext payload (`None` when the
    /// fingerprint is unknown or the store is metadata-only).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn get_chunk(&mut self, fp: Fingerprint) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(&Message::GetChunk { fp: fp.value() })? {
            Message::ChunkResp {
                status, payload, ..
            } => Ok((status == ChunkStatus::Payload).then_some(payload)),
            other => Err(unexpected("ChunkResp", &other)),
        }
    }

    /// Restores a committed backup: the full record stream in logical
    /// order, plus payload bytes when the store holds content.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`crate::proto::code::UNKNOWN_LABEL`]
    /// for unknown manifests; [`ClientError::Protocol`] if the stream
    /// contains missing chunks.
    pub fn restore(&mut self, label: &str) -> Result<RestoredBackup, ClientError> {
        check_label(label)?;
        let count = match self.call(&Message::RestoreBackup {
            label: label.to_string(),
        })? {
            Message::RestoreHeader { count, .. } => count,
            other => return Err(unexpected("RestoreHeader", &other)),
        };
        let mut backup = Backup::new(label);
        let mut payloads: Option<Vec<Vec<u8>>> = None;
        for i in 0..count {
            match self.recv()? {
                Message::ChunkResp {
                    fp,
                    status,
                    size,
                    payload,
                } => match status {
                    ChunkStatus::Missing => {
                        return Err(ClientError::Protocol(format!(
                            "restore {label:?}: chunk {i} (fp {fp:016x}) missing from store"
                        )))
                    }
                    ChunkStatus::Payload => {
                        backup.push(ChunkRecord::new(Fingerprint(fp), size));
                        payloads.get_or_insert_with(Vec::new).push(payload);
                    }
                    ChunkStatus::Metadata => {
                        backup.push(ChunkRecord::new(Fingerprint(fp), size));
                    }
                },
                other => return Err(unexpected("ChunkResp", &other)),
            }
        }
        Ok(RestoredBackup { backup, payloads })
    }

    /// Restores `original.label` and verifies it: record stream equal to
    /// `original`, and — when `payload_of` is given — every payload byte
    /// equal to the recomputed ciphertext.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] describing the first divergence.
    pub fn verify_restore(
        &mut self,
        original: &Backup,
        payload_of: Option<PayloadFn<'_>>,
    ) -> Result<(), ClientError> {
        let restored = self.restore(&original.label)?;
        if restored.backup.chunks != original.chunks {
            return Err(ClientError::Protocol(format!(
                "restore {:?}: record stream diverges (got {} chunks, want {})",
                original.label,
                restored.backup.len(),
                original.len()
            )));
        }
        if let Some(payload_of) = payload_of {
            let Some(payloads) = &restored.payloads else {
                return Err(ClientError::Protocol(format!(
                    "restore {:?}: expected payloads, store is metadata-only",
                    original.label
                )));
            };
            for (i, (rec, bytes)) in original.chunks.iter().zip(payloads).enumerate() {
                if *bytes != payload_of(rec) {
                    return Err(ClientError::Protocol(format!(
                        "restore {:?}: payload {i} (fp {}) diverges",
                        original.label, rec.fp
                    )));
                }
            }
        }
        Ok(())
    }

    /// Fetches the aggregate service counters.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Message::StatsReq)? {
            Message::StatsResp(stats) => Ok(stats),
            other => Err(unexpected("StatsResp", &other)),
        }
    }

    /// Deletes a committed backup manifest; returns `(chunk references
    /// released, logical bytes released)`. Deletion is logical — space
    /// comes back with a later [`Self::gc`]. A nonzero `commit_id` makes
    /// the operation idempotent (a replayed delete returns the recorded
    /// ack).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`crate::proto::code::UNKNOWN_LABEL`]
    /// for unknown manifests; any other [`ClientError`].
    pub fn delete_backup(
        &mut self,
        label: &str,
        commit_id: u64,
    ) -> Result<(u64, u64), ClientError> {
        check_label(label)?;
        match self.call(&Message::DeleteBackup {
            label: label.to_string(),
            commit_id,
        })? {
            Message::DeleteBackupAck {
                chunks,
                logical_bytes,
                ..
            } => Ok((chunks, logical_bytes)),
            other => Err(unexpected("DeleteBackupAck", &other)),
        }
    }

    /// Asks the server to garbage-collect: rewrite live chunks out of
    /// containers whose live fraction is at most `threshold_permille`
    /// per thousand, and drop the dead containers. A nonzero `commit_id`
    /// makes the pass idempotent.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn gc(
        &mut self,
        threshold_permille: u32,
        commit_id: u64,
    ) -> Result<GcSummary, ClientError> {
        match self.call(&Message::Gc {
            threshold_permille,
            commit_id,
        })? {
            Message::GcAck {
                containers_dropped,
                reclaimed_bytes,
                moved_chunks,
            } => Ok(GcSummary {
                containers_dropped,
                reclaimed_bytes,
                moved_chunks,
            }),
            other => Err(unexpected("GcAck", &other)),
        }
    }

    /// Asks the server to rekey all stored containers under the next key
    /// epoch derived from `secret` (REED-style re-encryption under
    /// churn); returns `(epoch now in force, containers rewritten)`.
    /// Other open sessions' reads turn
    /// [`crate::proto::code::STALE_EPOCH`] afterwards. A nonzero
    /// `commit_id` makes the operation idempotent.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn rekey(&mut self, secret: &[u8], commit_id: u64) -> Result<(u64, u64), ClientError> {
        match self.call(&Message::Rekey {
            secret: secret.to_vec(),
            commit_id,
        })? {
            Message::RekeyAck {
                epoch,
                containers_rewritten,
            } => Ok((epoch, containers_rewritten)),
            other => Err(unexpected("RekeyAck", &other)),
        }
    }

    /// Asks the server to drain, checkpoint and stop.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Message::Shutdown)? {
            Message::ShutdownAck => Ok(()),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }

    fn send(&mut self, msg: &Message) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &msg.encode())?;
        Ok(())
    }

    /// Receives one message, surfacing server-side errors as
    /// [`ClientError::Server`].
    fn recv(&mut self) -> Result<Message, ClientError> {
        let payload = read_frame(&mut self.stream)?.ok_or(WireError::Truncated)?;
        match Message::decode(&payload)? {
            Message::ErrorResp { code, message } => Err(ClientError::Server { code, message }),
            msg => Ok(msg),
        }
    }

    fn call(&mut self, msg: &Message) -> Result<Message, ClientError> {
        self.send(msg)?;
        self.recv()
    }
}

/// Tuning for [`ResilientClient`] reconnect/retry behaviour.
#[derive(Clone, Copy, Debug)]
pub struct RetryOptions {
    /// Connection attempts per operation before giving up.
    pub max_attempts: u32,
    /// First retry backoff; doubles per retry (capped at `max_backoff`).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Per-operation socket deadline (read and write).
    pub op_timeout: Duration,
    /// Deterministic PUT batch size — **must be stable across attempts**:
    /// resume skips server-acked batches by index of this fixed split.
    pub batch: usize,
}

impl Default for RetryOptions {
    fn default() -> Self {
        RetryOptions {
            max_attempts: 8,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
            op_timeout: Duration::from_secs(10),
            batch: DEFAULT_BATCH,
        }
    }
}

/// What a [`ResilientClient`] did to get its operations through
/// (diagnostics; drives the `--faults` bench section).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Operation attempts (first try + retries).
    pub attempts: u64,
    /// Failed attempts that were retried.
    pub retries: u64,
    /// TCP connections established.
    pub connects: u64,
    /// PUT batches skipped because RESUME reported them already
    /// ingested (work saved by the exactly-once protocol).
    pub batches_skipped: u64,
    /// Total time slept in backoff, in microseconds.
    pub backoff_micros: u64,
    /// Connect + HELLO + RESUME handshake latency of each connection,
    /// in microseconds.
    pub connect_micros: Vec<u64>,
}

/// A self-healing client: wraps [`Client`] with per-operation deadlines,
/// capped-exponential-backoff reconnects (deterministic jitter, seeded
/// from the client name), and **resumable, exactly-once uploads**.
///
/// [`Self::upload_commit`] survives any number of mid-stream connection
/// failures up to [`RetryOptions::max_attempts`]: each reconnect opens
/// with a RESUME handshake, the server reports how many deterministic
/// batches it already ingested toward the commit id, and the client
/// continues from there. A commit whose ack was lost is never re-applied
/// — the server replays the recorded ack. The result is that a completed
/// `upload_commit` leaves store, stats and adversary tap **bit-identical**
/// to a fault-free run, no matter where connections broke.
#[derive(Debug)]
pub struct ResilientClient {
    addr: String,
    name: String,
    opts: RetryOptions,
    rng: SplitMix64,
    inner: Option<Client>,
    report: ResilienceReport,
}

impl ResilientClient {
    /// Creates a resilient client for `addr`; nothing connects until the
    /// first operation. The backoff jitter stream is seeded from `name`,
    /// so a given client name retries on a reproducible schedule.
    pub fn new(addr: impl Into<String>, name: impl Into<String>, opts: RetryOptions) -> Self {
        let name = name.into();
        ResilientClient {
            addr: addr.into(),
            rng: SplitMix64::from_name(&name),
            name,
            opts,
            inner: None,
            report: ResilienceReport::default(),
        }
    }

    /// What this client did so far (attempts, reconnects, backoff time).
    #[must_use]
    pub fn report(&self) -> &ResilienceReport {
        &self.report
    }

    /// Uploads `backup` metadata-only and commits it under the nonzero
    /// idempotent `commit_id`, surviving connection failures; returns the
    /// committed chunk count.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] after `max_attempts` transport
    /// failures; any non-retryable [`ClientError`] immediately.
    pub fn upload_commit(&mut self, backup: &Backup, commit_id: u64) -> Result<u64, ClientError> {
        self.run_upload(backup, None, commit_id)
    }

    /// [`Self::upload_commit`] with ciphertext payload bytes
    /// (content mode); `payload_of` must be deterministic — it is
    /// re-invoked for re-sent batches after a reconnect.
    ///
    /// # Errors
    ///
    /// As [`Self::upload_commit`].
    pub fn upload_commit_payloads(
        &mut self,
        backup: &Backup,
        payload_of: PayloadFn<'_>,
        commit_id: u64,
    ) -> Result<u64, ClientError> {
        self.run_upload(backup, Some(payload_of), commit_id)
    }

    fn run_upload(
        &mut self,
        backup: &Backup,
        payload_of: Option<PayloadFn<'_>>,
        commit_id: u64,
    ) -> Result<u64, ClientError> {
        if commit_id == 0 {
            return Err(ClientError::Protocol(
                "resumable uploads need a nonzero commit id".into(),
            ));
        }
        check_label(&backup.label)?;
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.opts.max_attempts {
            if attempt > 0 {
                self.backoff(attempt);
            }
            self.report.attempts += 1;
            match self.attempt(backup, payload_of, commit_id) {
                Ok(chunks) => return Ok(chunks),
                // Transport failures retry on a fresh connection; server
                // verdicts and protocol violations do not.
                Err(e @ ClientError::Wire(_)) => {
                    self.inner = None;
                    self.report.retries += 1;
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.opts.max_attempts,
            last: Box::new(last.expect("at least one attempt ran")),
        })
    }

    /// One attempt: (re)connect if needed, RESUME, upload the batches the
    /// server does not already have, commit.
    fn attempt(
        &mut self,
        backup: &Backup,
        payload_of: Option<PayloadFn<'_>>,
        commit_id: u64,
    ) -> Result<u64, ClientError> {
        let connected = Instant::now();
        let fresh = self.inner.is_none();
        if fresh {
            let mut client =
                Client::connect(self.addr.as_str(), &self.name)?.batch(self.opts.batch);
            client.set_op_timeout(Some(self.opts.op_timeout))?;
            self.inner = Some(client);
            self.report.connects += 1;
        }
        let client = self.inner.as_mut().expect("connected above");
        let (state, acked, chunks) = client.resume(commit_id)?;
        if fresh {
            self.report
                .connect_micros
                .push(u64::try_from(connected.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        let skip = match state {
            // Finished before we asked — the previous ack was lost.
            ResumeState::Committed => return Ok(chunks),
            ResumeState::InProgress => acked,
            ResumeState::Fresh => 0,
        };
        self.report.batches_skipped += u64::from(skip);
        match payload_of {
            Some(f) => client.upload_from(backup, Some(f), skip)?,
            None => client.upload_from(backup, None::<fn(&ChunkRecord) -> Vec<u8>>, skip)?,
        };
        client.commit_with_id(&backup.label, commit_id)
    }

    /// Sleeps `min(base · 2^(attempt-1), max)` half fixed, half
    /// deterministic jitter from the name-seeded stream.
    fn backoff(&mut self, attempt: u32) {
        let exp = attempt.saturating_sub(1).min(16);
        let ceiling = self
            .opts
            .base_backoff
            .saturating_mul(1 << exp)
            .min(self.opts.max_backoff);
        let half = ceiling.as_micros() as u64 / 2;
        let jitter = if half == 0 {
            0
        } else {
            self.rng.next_u64() % (half + 1)
        };
        let sleep = Duration::from_micros(half + jitter);
        self.report.backoff_micros += sleep.as_micros() as u64;
        std::thread::sleep(sleep);
    }
}

fn unexpected(wanted: &str, got: &Message) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}

/// Manifest labels must survive the wire verbatim — a label longer than
/// the `u16`-length string field would be silently clipped by the codec
/// and committed (or looked up) under a different name.
fn check_label(label: &str) -> Result<(), ClientError> {
    if label.len() > crate::proto::MAX_STR_BYTES {
        return Err(ClientError::Protocol(format!(
            "label of {} bytes exceeds the wire limit of {}",
            label.len(),
            crate::proto::MAX_STR_BYTES
        )));
    }
    Ok(())
}

/// A raw byte stream chunked and MLE-encrypted on the client, ready for
/// batched upload: the full client-side ingest pipeline
/// (chunk → encrypt → fingerprint), with the key store a real client
/// would persist locally.
///
/// Records carry **ciphertext** fingerprints — the server and its
/// [`crate::tap::AdversaryTap`] only ever see `(SHA-256-prefix(E(chunk)),
/// len)` pairs plus ciphertext bytes, exactly the paper's threat model.
/// MLE is deterministic and length-preserving, so equal ciphertext
/// fingerprints imply equal ciphertext bytes (deduplication works) and
/// `record.size` equals the plaintext chunk length (the boundary-leakage
/// observable survives encryption).
///
/// [`Self::decode`] inverts the pipeline: restored payloads are decrypted
/// with the stored keys and reassembled into the original bytes.
#[derive(Debug)]
pub struct EncodedStream {
    /// The upload stream: ciphertext-fingerprint records in chunk order.
    pub backup: Backup,
    /// Plaintext bytes consumed (the sum of chunk lengths).
    pub plain_bytes: u64,
    /// Ciphertext by ciphertext fingerprint (deterministic MLE: one
    /// ciphertext per fingerprint).
    payloads: HashMap<u64, Vec<u8>>,
    /// The client's key store: MLE key by ciphertext fingerprint.
    keys: HashMap<u64, ChunkKey>,
}

impl EncodedStream {
    /// Chunks `data` with `chunker` (in parallel per `par`; bit-identical
    /// to sequential at any thread count), encrypts every chunk with
    /// `mle`, and fingerprints the ciphertexts.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MleError`] from key derivation.
    pub fn encode<C, M>(
        label: &str,
        data: &[u8],
        chunker: &C,
        mle: &M,
        par: ParConfig,
    ) -> Result<EncodedStream, MleError>
    where
        C: Chunker + Sync + ?Sized,
        M: Mle + Sync,
    {
        let spans = chunk_stream_par(data, chunker, par);
        let encrypted = par_map(par.resolve(), &spans, |span| {
            mle.encrypt(&data[span.clone()])
        });
        let mut backup = Backup::new(label);
        let mut payloads = HashMap::new();
        let mut keys = HashMap::new();
        for result in encrypted {
            let (key, ciphertext) = result?;
            let fp = content_fingerprint(&ciphertext);
            backup.push(ChunkRecord::new(fp, ciphertext.len() as u32));
            payloads.entry(fp.value()).or_insert(ciphertext);
            keys.entry(fp.value()).or_insert(key);
        }
        Ok(EncodedStream {
            backup,
            plain_bytes: data.len() as u64,
            payloads,
            keys,
        })
    }

    /// The ciphertext of one record (for [`PayloadFn`] uploads).
    ///
    /// # Panics
    ///
    /// Panics when `rec` is not part of this stream.
    #[must_use]
    pub fn payload(&self, rec: &ChunkRecord) -> Vec<u8> {
        self.payloads
            .get(&rec.fp.value())
            .expect("record belongs to this stream")
            .clone()
    }

    /// Distinct ciphertext chunks in this stream.
    #[must_use]
    pub fn unique_chunks(&self) -> usize {
        self.payloads.len()
    }

    /// Decrypts and reassembles a [`Client::restore`] result back into
    /// the original plaintext bytes using the stream's key store.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the restore is metadata-only, a
    /// fingerprint has no stored key, or a payload does not decrypt back
    /// to a chunk of the recorded size.
    pub fn decode<M: Mle>(
        &self,
        restored: &RestoredBackup,
        mle: &M,
    ) -> Result<Vec<u8>, ClientError> {
        let Some(payloads) = &restored.payloads else {
            return Err(ClientError::Protocol(format!(
                "decode {:?}: restore carries no payloads (metadata-only store)",
                restored.backup.label
            )));
        };
        let mut out = Vec::with_capacity(usize::try_from(self.plain_bytes).unwrap_or(0));
        for (i, (rec, ciphertext)) in restored.backup.chunks.iter().zip(payloads).enumerate() {
            let Some(key) = self.keys.get(&rec.fp.value()) else {
                return Err(ClientError::Protocol(format!(
                    "decode {:?}: chunk {i} (fp {}) has no key in the client store",
                    restored.backup.label, rec.fp
                )));
            };
            let plaintext = mle.decrypt_with_key(key, ciphertext);
            if plaintext.len() != rec.size as usize {
                return Err(ClientError::Protocol(format!(
                    "decode {:?}: chunk {i} decrypts to {} bytes, recorded {}",
                    restored.backup.label,
                    plaintext.len(),
                    rec.size
                )));
            }
            out.extend_from_slice(&plaintext);
        }
        Ok(out)
    }
}

impl EncodedStream {
    /// Applies a [`DefenseScheme`] to this stream's ciphertext-fingerprint
    /// sequence, producing the **defended** upload view: the backup the
    /// server (and the adversary tap) will observe, plus the client-side
    /// recipe that maps every defended fingerprint back to its underlying
    /// MLE ciphertext. This is the content pipeline's scheme-selection
    /// point — the same trait object drives the trace experiments and the
    /// real client→server→tap route.
    ///
    /// Defenses operate in fingerprint space on top of the MLE layer:
    /// a scheme may *rename* ciphertexts (so the provider cannot match
    /// frequencies), *reorder* records within segments, or *split* one
    /// ciphertext into several variants (paying real storage blowup at
    /// the server, since each variant fingerprint stores its own payload
    /// copy). The recipe — the moral equivalent of the paper's encrypted
    /// file recipe — lets [`DefendedStream::decode`] undo all three.
    #[must_use]
    pub fn defend<'a>(
        &'a self,
        scheme: &dyn DefenseScheme,
        ctx: &KeyContext,
    ) -> DefendedStream<'a> {
        let enc = scheme.encrypt_backup(&self.backup, ctx);
        let mut recipe = HashMap::with_capacity(enc.truth.len());
        for (defended, inner) in enc.truth.iter() {
            recipe.insert(defended.value(), inner.value());
        }
        DefendedStream {
            inner: self,
            backup: enc.backup,
            recipe,
        }
    }
}

/// An [`EncodedStream`] with a [`DefenseScheme`] applied: the defended
/// record stream bound for the server, plus the recipe needed to invert
/// the defense on restore. Borrows the underlying stream — payload bytes
/// and the key store stay in one place.
#[derive(Debug)]
pub struct DefendedStream<'a> {
    inner: &'a EncodedStream,
    /// The defended upload stream (what the server and tap observe).
    pub backup: Backup,
    /// Defended fingerprint → underlying MLE ciphertext fingerprint.
    recipe: HashMap<u64, u64>,
}

impl DefendedStream<'_> {
    /// The ciphertext bytes of one defended record: every variant of an
    /// underlying ciphertext carries that ciphertext's exact bytes, so
    /// equal defended fingerprints still imply equal payloads and the
    /// server's dedup and restore invariants hold unchanged.
    ///
    /// # Panics
    ///
    /// Panics when `rec` is not part of this defended stream.
    #[must_use]
    pub fn payload(&self, rec: &ChunkRecord) -> Vec<u8> {
        let inner_fp = self
            .recipe
            .get(&rec.fp.value())
            .expect("record belongs to this defended stream");
        self.inner
            .payloads
            .get(inner_fp)
            .expect("recipe resolves to an encoded chunk")
            .clone()
    }

    /// Measured storage blowup of the defense on this stream: unique
    /// defended fingerprints per unique underlying ciphertext (1.0 for
    /// pure renaming/reordering schemes; up to the scheme's budget for
    /// splitting schemes).
    #[must_use]
    pub fn blowup(&self) -> f64 {
        if self.inner.unique_chunks() == 0 {
            return 1.0;
        }
        self.recipe.len() as f64 / self.inner.unique_chunks() as f64
    }

    /// Decrypts and reassembles a [`Client::restore`] of the *defended*
    /// backup into the original plaintext bytes: each restored payload is
    /// matched to its defended fingerprint, mapped through the recipe to
    /// the underlying ciphertext, decrypted with the stream's key store,
    /// and emitted in the **original chunk order** — undoing any
    /// scramble-style reordering the defense applied on upload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the restore is metadata-only, a
    /// restored fingerprint is not in the recipe, the restore is missing
    /// a variant for some chunk, or a payload does not decrypt back to a
    /// chunk of the recorded size.
    pub fn decode<M: Mle>(
        &self,
        restored: &RestoredBackup,
        mle: &M,
    ) -> Result<Vec<u8>, ClientError> {
        let label = &restored.backup.label;
        let Some(payloads) = &restored.payloads else {
            return Err(ClientError::Protocol(format!(
                "decode {label:?}: restore carries no payloads (metadata-only store)"
            )));
        };
        // One restored payload per underlying ciphertext (variants of the
        // same ciphertext carry identical bytes, so any variant serves).
        let mut by_inner: HashMap<u64, &Vec<u8>> = HashMap::new();
        for (rec, bytes) in restored.backup.chunks.iter().zip(payloads) {
            let Some(inner) = self.recipe.get(&rec.fp.value()) else {
                return Err(ClientError::Protocol(format!(
                    "decode {label:?}: restored fp {} is not in the recipe",
                    rec.fp
                )));
            };
            by_inner.insert(*inner, bytes);
        }
        let mut out = Vec::with_capacity(usize::try_from(self.inner.plain_bytes).unwrap_or(0));
        for (i, rec) in self.inner.backup.chunks.iter().enumerate() {
            let Some(ciphertext) = by_inner.get(&rec.fp.value()) else {
                return Err(ClientError::Protocol(format!(
                    "decode {label:?}: chunk {i} (fp {}) has no restored variant",
                    rec.fp
                )));
            };
            let Some(key) = self.inner.keys.get(&rec.fp.value()) else {
                return Err(ClientError::Protocol(format!(
                    "decode {label:?}: chunk {i} (fp {}) has no key in the client store",
                    rec.fp
                )));
            };
            let plaintext = mle.decrypt_with_key(key, ciphertext);
            if plaintext.len() != rec.size as usize {
                return Err(ClientError::Protocol(format!(
                    "decode {label:?}: chunk {i} decrypts to {} bytes, recorded {}",
                    plaintext.len(),
                    rec.size
                )));
            }
            out.extend_from_slice(&plaintext);
        }
        Ok(out)
    }
}

impl Client {
    /// Uploads an [`EncodedStream`] with its ciphertext payloads — the
    /// full client pipeline's network leg.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; the session should be dropped afterwards.
    pub fn upload_bytes(&mut self, stream: &EncodedStream) -> Result<UploadSummary, ClientError> {
        self.upload_backup_payloads(&stream.backup, |rec| stream.payload(rec))
    }

    /// Uploads a [`DefendedStream`] with its ciphertext payloads — the
    /// defended client pipeline's network leg.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; the session should be dropped afterwards.
    pub fn upload_defended(
        &mut self,
        stream: &DefendedStream<'_>,
    ) -> Result<UploadSummary, ClientError> {
        self.upload_backup_payloads(&stream.backup, |rec| stream.payload(rec))
    }
}

/// Deterministic synthetic ciphertext for trace-driven content uploads:
/// `size` pseudo-random bytes expanded from the (ciphertext) fingerprint
/// with SplitMix64. Models deterministic MLE at the byte level — equal
/// ciphertext fingerprints imply equal ciphertext bytes, so cross-client
/// deduplication behaves exactly like a real convergent-encryption
/// deployment, and a restore can be *verified* by recomputation.
#[must_use]
pub fn synthetic_payload(fp: Fingerprint, size: u32) -> Vec<u8> {
    let mut state = fp.value() ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(size as usize);
    while out.len() < size as usize {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let needed = (size as usize - out.len()).min(8);
        out.extend_from_slice(&z.to_le_bytes()[..needed]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_payload_deterministic_and_sized() {
        for size in [0u32, 1, 7, 8, 9, 4096] {
            let a = synthetic_payload(Fingerprint(42), size);
            let b = synthetic_payload(Fingerprint(42), size);
            assert_eq!(a, b);
            assert_eq!(a.len(), size as usize);
        }
        assert_ne!(
            synthetic_payload(Fingerprint(1), 64),
            synthetic_payload(Fingerprint(2), 64)
        );
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn encoded_stream_roundtrips_without_network() {
        use freqdedup_chunking::fastcdc::FastCdc;
        use freqdedup_mle::convergent::Convergent;

        let data = pseudo_random(200_000, 77);
        let chunker = FastCdc::with_avg_size(1024).unwrap();
        let mle = Convergent::new();
        let stream =
            EncodedStream::encode("rt", &data, &chunker, &mle, ParConfig::with_threads(4)).unwrap();

        // Sizes are plaintext chunk lengths (MLE is length-preserving)
        // and cover the input exactly.
        assert_eq!(stream.plain_bytes, data.len() as u64);
        let total: u64 = stream.backup.chunks.iter().map(|r| u64::from(r.size)).sum();
        assert_eq!(total, data.len() as u64);
        assert!(stream.unique_chunks() <= stream.backup.len());

        // Decode a simulated full restore back to the original bytes.
        let payloads: Vec<Vec<u8>> = stream
            .backup
            .chunks
            .iter()
            .map(|rec| stream.payload(rec))
            .collect();
        let restored = RestoredBackup {
            backup: stream.backup.clone(),
            payloads: Some(payloads),
        };
        assert_eq!(stream.decode(&restored, &mle).unwrap(), data);
    }

    #[test]
    fn defended_stream_roundtrips_under_every_scheme() {
        use freqdedup_chunking::fastcdc::FastCdc;
        use freqdedup_chunking::segment::SegmentParams;
        use freqdedup_core::defense::prelude::*;
        use freqdedup_mle::convergent::Convergent;

        let data = pseudo_random(200_000, 13);
        let chunker = FastCdc::with_avg_size(1024).unwrap();
        let mle = Convergent::new();
        let stream =
            EncodedStream::encode("rt", &data, &chunker, &mle, ParConfig::sequential()).unwrap();
        let ctx = KeyContext::new(b"client-secret", 7);
        let seg = SegmentParams::paper_default(1024);
        let schemes: Vec<Box<dyn DefenseScheme>> = vec![
            Box::new(NoDefense),
            Box::new(MinHashEncryption::new(seg.clone())),
            Box::new(ScrambleScheme::new(seg.clone())),
            Box::new(MinHashScrambleScheme::combined(seg, 3)),
            Box::new(TedScheme::new(1.5).unwrap()),
            Box::new(PartitionSmoothing::new(8, 1.5).unwrap()),
        ];
        for scheme in &schemes {
            let defended = stream.defend(scheme.as_ref(), &ctx);
            // The upload view preserves logical shape and honors the
            // configured blowup budget.
            assert_eq!(defended.backup.len(), stream.backup.len());
            if let Some(budget) = scheme.blowup_budget() {
                assert!(
                    defended.blowup() <= budget + 1e-9,
                    "{}: blowup {} over budget {budget}",
                    scheme.name(),
                    defended.blowup()
                );
            }
            // Simulate a full restore of the defended stream and decode
            // back to the original bytes through the key store.
            let payloads: Vec<Vec<u8>> = defended
                .backup
                .chunks
                .iter()
                .map(|rec| defended.payload(rec))
                .collect();
            let restored = RestoredBackup {
                backup: defended.backup.clone(),
                payloads: Some(payloads),
            };
            assert_eq!(
                defended.decode(&restored, &mle).unwrap(),
                data,
                "{}: defended restore diverged",
                scheme.name()
            );
        }
    }

    #[test]
    fn encoded_stream_deterministic_across_thread_counts() {
        use freqdedup_chunking::fastcdc::FastCdc;
        use freqdedup_mle::convergent::Convergent;

        let data = pseudo_random(120_000, 5);
        let chunker = FastCdc::with_avg_size(1024).unwrap();
        let mle = Convergent::new();
        let seq =
            EncodedStream::encode("d", &data, &chunker, &mle, ParConfig::sequential()).unwrap();
        let par =
            EncodedStream::encode("d", &data, &chunker, &mle, ParConfig::with_threads(8)).unwrap();
        assert_eq!(seq.backup, par.backup);
    }

    #[test]
    fn encoded_stream_hides_plaintext_fingerprints() {
        use freqdedup_chunking::fastcdc::FastCdc;
        use freqdedup_chunking::{records_from_bytes, Chunker as _};
        use freqdedup_mle::convergent::Convergent;

        let data = pseudo_random(80_000, 9);
        let chunker = FastCdc::with_avg_size(1024).unwrap();
        let stream = EncodedStream::encode(
            "h",
            &data,
            &chunker,
            &Convergent::new(),
            ParConfig::sequential(),
        )
        .unwrap();
        // Same boundaries, different (ciphertext) fingerprints.
        let plain = records_from_bytes(&data, &chunker);
        assert_eq!(plain.len(), stream.backup.len());
        let sizes_match = plain
            .iter()
            .zip(&stream.backup.chunks)
            .all(|(p, c)| p.size == c.size && p.fp != c.fp);
        assert!(sizes_match);
        assert_eq!(chunker.spans(&data).len(), stream.backup.len());
    }
}
