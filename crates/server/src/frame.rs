//! Length-prefixed, CRC-32-checked wire frames.
//!
//! Every protocol message travels in exactly one frame:
//!
//! ```text
//! len      u32 LE   payload byte length (0 < len <= MAX_FRAME_BYTES)
//! crc      u32 LE   CRC-32 (IEEE) of the payload bytes
//! payload  len bytes — one encoded [`crate::proto::Message`]
//! ```
//!
//! The length prefix bounds every allocation before it happens (an
//! oversize prefix is rejected without reading the body), and the CRC
//! rejects torn or corrupted frames before they reach the message
//! decoder. The CRC implementation is the workspace-wide
//! [`freqdedup_trace::io::Crc32`] — the same polynomial the trace format
//! and the durable store use.

use std::fmt;
use std::io::{Read, Write};

use freqdedup_trace::io::crc32;

/// Hard upper bound on a frame payload (32 MiB). Large enough for a
/// generously sized chunk batch, small enough that a corrupted length
/// prefix cannot drive an absurd allocation.
pub const MAX_FRAME_BYTES: usize = 32 << 20;

/// Errors produced by the wire layer (framing and message codec).
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket / stream failure.
    Io(std::io::Error),
    /// The connection ended mid-frame (a torn frame).
    Truncated,
    /// A length prefix exceeded [`MAX_FRAME_BYTES`] (or was zero).
    Oversize {
        /// The offending length prefix.
        len: u64,
    },
    /// The payload failed its CRC — corruption on the wire.
    BadCrc {
        /// CRC carried by the frame header.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// The payload did not decode as a well-formed message.
    Malformed(&'static str),
    /// The peer speaks an unsupported protocol version.
    BadVersion(u16),
    /// The peer stalled mid-frame past the stall cap (a half-open or
    /// wedged connection), or an operation exceeded its deadline.
    Timeout,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Truncated => write!(f, "connection closed mid-frame"),
            WireError::Oversize { len } => write!(f, "frame length {len} exceeds limits"),
            WireError::BadCrc { expected, actual } => write!(
                f,
                "frame checksum mismatch (expected {expected:#010x}, got {actual:#010x})"
            ),
            WireError::Malformed(what) => write!(f, "malformed message: {what}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Timeout => write!(f, "peer stalled past the mid-frame deadline"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame around `payload`.
///
/// # Errors
///
/// [`WireError::Oversize`] for empty or over-limit payloads,
/// [`WireError::Io`] on write failure.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.is_empty() || payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::Oversize {
            len: payload.len() as u64,
        });
    }
    let mut header = [0u8; 8];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..8].copy_from_slice(&crc32(payload).to_le_bytes());
    writer.write_all(&header)?;
    writer.write_all(payload)?;
    Ok(())
}

/// Reads one frame, verifying its length bound and CRC.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly *at a
/// frame boundary* (no bytes of a new frame had arrived); end-of-stream
/// anywhere inside a frame is [`WireError::Truncated`].
///
/// A read timeout (`WouldBlock` / `TimedOut`) **before the first byte**
/// of a frame surfaces as [`WireError::Io`] so a server session can poll
/// its stop flag between requests; once a frame has started, timeouts are
/// retried internally (the peer has committed to sending the rest).
///
/// # Errors
///
/// [`WireError::Oversize`], [`WireError::BadCrc`], [`WireError::Truncated`]
/// or [`WireError::Io`].
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 8];
    if !read_full(reader, &mut header)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let expected = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(WireError::Oversize { len: len as u64 });
    }
    let mut payload = vec![0u8; len];
    if !read_body(reader, &mut payload)? {
        return Err(WireError::Truncated);
    }
    let actual = crc32(&payload);
    if actual != expected {
        return Err(WireError::BadCrc { expected, actual });
    }
    Ok(Some(payload))
}

/// A peer that starts a frame but stalls is cut off after this many
/// consecutive timed-out reads. On server sessions (25 ms socket
/// timeout) that is ~30 s of mid-frame silence — without the cap, one
/// stalled client would pin its pool worker forever and a graceful
/// shutdown could never finish draining. Streams without a read timeout
/// (the client side) never hit this path.
const MAX_MID_FRAME_STALLS: u32 = 1200;

/// Fills `buf` completely. `Ok(false)` = clean EOF before the first byte;
/// EOF after at least one byte = [`WireError::Truncated`]. A timeout
/// before the first byte is surfaced as `Io`; after the first byte it is
/// retried (mid-frame data is in flight) up to [`MAX_MID_FRAME_STALLS`]
/// consecutive stalls, after which the read fails with the typed
/// [`WireError::Timeout`] (a half-open connection, not a torn frame).
fn read_full<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut got = 0;
    let mut stalls = 0u32;
    while got < buf.len() {
        match reader.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(false)
                } else {
                    Err(WireError::Truncated)
                }
            }
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if got > 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                stalls += 1;
                if stalls >= MAX_MID_FRAME_STALLS {
                    return Err(WireError::Timeout);
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// [`read_full`] for the body: a clean EOF here is always a tear, and
/// the same stall cap applies from the first byte.
fn read_body<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut got = 0;
    let mut stalls = 0u32;
    while got < buf.len() {
        match reader.read(&mut buf[got..]) {
            Ok(0) => return Ok(false),
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                stalls += 1;
                if stalls >= MAX_MID_FRAME_STALLS {
                    return Err(WireError::Timeout);
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        let mut cursor = &buf[..];
        let payload = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(payload, b"hello frame");
        // Clean EOF at the boundary after the frame.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn back_to_back_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"two");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn rejects_corrupt_payload() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::BadCrc { .. })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_point() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncate me").unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&mut &buf[..cut]);
            assert!(
                matches!(err, Err(WireError::Truncated)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_oversize_length_prefix() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::Oversize { .. })
        ));
        // Zero-length frames are equally invalid.
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::Oversize { len: 0 })
        ));
        assert!(write_frame(&mut Vec::new(), &[]).is_err());
    }

    /// Yields its bytes, then stalls forever with `WouldBlock` — the shape
    /// of a half-open connection under a socket read timeout.
    struct StallingReader {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for StallingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn mid_frame_stall_times_out_typed() {
        let mut full = Vec::new();
        write_frame(&mut full, b"stall victim").unwrap();
        // Stall mid-header and mid-body: both must surface as the typed
        // Timeout (the stall cap), never hang and never claim Truncated.
        for keep in [3, 10] {
            let mut r = StallingReader {
                data: full[..keep].to_vec(),
                pos: 0,
            };
            assert!(
                matches!(read_frame(&mut r), Err(WireError::Timeout)),
                "stall after {keep} bytes"
            );
        }
        // A stall before the first byte is Io (the idle-poll contract).
        let mut r = StallingReader {
            data: Vec::new(),
            pos: 0,
        };
        assert!(matches!(read_frame(&mut r), Err(WireError::Io(_))));
    }

    #[test]
    fn error_display_readable() {
        assert!(WireError::Truncated.to_string().contains("mid-frame"));
        assert!(WireError::BadCrc {
            expected: 1,
            actual: 2
        }
        .to_string()
        .contains("checksum"));
    }
}
