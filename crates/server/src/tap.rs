//! The provider-side adversary tap.
//!
//! The paper's adversary models (§3) give the attacker the storage
//! provider's view: the logical, pre-deduplication order of ciphertext
//! chunks of each uploaded backup. In a real deployment this view is not
//! hypothetical — it is the provider's *own metadata*: the per-session
//! upload stream the service must read anyway, and the backup manifests
//! it must keep to serve restores. [`AdversaryTap`] records exactly that:
//! every session's observed `(fingerprint, size)` stream, segmented at
//! COMMIT-MANIFEST boundaries into ordinary [`Backup`]s, so
//! `LocalityAttack` / `AdvancedAttack` run **unchanged** against live
//! traffic.
//!
//! Because a session is one TCP connection handled start-to-finish by one
//! worker, each committed stream is byte-identical to the order the
//! client sent — concurrent sessions never interleave *within* a tapped
//! backup. [`AdversaryTap::series`] therefore returns a deterministic
//! representation (sorted by label) regardless of which client's commit
//! raced ahead, which is what makes live-traffic attack output
//! reproducible against offline ingest.
//!
//! The tap doubles as the service's manifest catalog: RESTORE-BACKUP is
//! served from it. That is the threat model in one line — the metadata
//! the provider needs in order to function *is* the leak.

use std::path::Path;

use freqdedup_trace::io::{self, TraceIoError};
use freqdedup_trace::{Backup, BackupSeries};

/// Per-session observed ciphertext streams, segmented by commit.
#[derive(Clone, Debug, Default)]
pub struct AdversaryTap {
    /// Committed backups in commit order (racy across sessions; use
    /// [`Self::series`] for the deterministic view).
    committed: Vec<Backup>,
    /// Streams of sessions that disconnected without committing
    /// (observed but not restorable).
    abandoned: Vec<Backup>,
}

impl AdversaryTap {
    /// Creates an empty tap.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one committed manifest stream.
    pub fn record_commit(&mut self, backup: Backup) {
        self.committed.push(backup);
    }

    /// Records the un-committed tail stream of a closed session.
    pub fn record_abandoned(&mut self, backup: Backup) {
        if !backup.is_empty() {
            self.abandoned.push(backup);
        }
    }

    /// The committed backup with the given manifest label (most recent
    /// commit wins when a label was reused).
    #[must_use]
    pub fn backup(&self, label: &str) -> Option<&Backup> {
        self.committed.iter().rev().find(|b| b.label == label)
    }

    /// Number of committed manifests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// Whether nothing has been committed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Committed backups in commit order (nondeterministic across
    /// concurrent sessions — prefer [`Self::series`] for analysis).
    #[must_use]
    pub fn committed(&self) -> &[Backup] {
        &self.committed
    }

    /// Un-committed session tails (observed traffic that never became a
    /// manifest).
    #[must_use]
    pub fn abandoned(&self) -> &[Backup] {
        &self.abandoned
    }

    /// Total logical chunks observed across committed manifests.
    #[must_use]
    pub fn observed_chunks(&self) -> u64 {
        self.committed.iter().map(|b| b.len() as u64).sum()
    }

    /// The deterministic adversary view: committed backups **sorted by
    /// label** (commit order depends on client scheduling; label order
    /// does not). This is the series attacks and equivalence tests run
    /// on.
    #[must_use]
    pub fn series(&self, name: impl Into<String>) -> BackupSeries {
        let mut series = BackupSeries::new(name);
        let mut sorted = self.committed.clone();
        sorted.sort_by(|a, b| a.label.cmp(&b.label));
        for backup in sorted {
            series.push(backup);
        }
        series
    }

    /// Persists the deterministic view to the workspace trace format
    /// (used by the server to survive restarts: the tap is also the
    /// manifest catalog).
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] on write failure.
    pub fn save(&self, path: &Path) -> Result<(), TraceIoError> {
        let file = std::fs::File::create(path)?;
        let mut writer = std::io::BufWriter::new(file);
        io::write_series(&self.series("tap"), &mut writer)?;
        use std::io::Write;
        writer.flush()?;
        Ok(())
    }

    /// Reloads a tap saved by [`Self::save`] (abandoned streams are not
    /// persisted).
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] on read failure or corruption.
    pub fn load(path: &Path) -> Result<Self, TraceIoError> {
        let file = std::fs::File::open(path)?;
        let series = io::read_series(std::io::BufReader::new(file))?;
        Ok(AdversaryTap {
            committed: series.backups,
            abandoned: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::ChunkRecord;

    fn backup(label: &str, fps: &[u64]) -> Backup {
        Backup::from_chunks(label, fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
    }

    #[test]
    fn series_is_label_sorted_regardless_of_commit_order() {
        let mut a = AdversaryTap::new();
        a.record_commit(backup("b", &[1]));
        a.record_commit(backup("a", &[2]));
        let mut b = AdversaryTap::new();
        b.record_commit(backup("a", &[2]));
        b.record_commit(backup("b", &[1]));
        assert_eq!(a.series("t"), b.series("t"));
        assert_eq!(a.series("t").get(0).unwrap().label, "a");
    }

    #[test]
    fn label_lookup_prefers_latest() {
        let mut tap = AdversaryTap::new();
        tap.record_commit(backup("x", &[1]));
        tap.record_commit(backup("x", &[2, 3]));
        assert_eq!(tap.backup("x").unwrap().len(), 2);
        assert!(tap.backup("y").is_none());
        assert_eq!(tap.observed_chunks(), 3);
    }

    #[test]
    fn abandoned_streams_kept_separately() {
        let mut tap = AdversaryTap::new();
        tap.record_abandoned(backup("", &[]));
        tap.record_abandoned(backup("", &[9]));
        assert_eq!(tap.abandoned().len(), 1);
        assert!(tap.is_empty());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("freqdedup-tap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tap.fqdt");
        let mut tap = AdversaryTap::new();
        tap.record_commit(backup("m1", &[1, 2, 1]));
        tap.record_commit(backup("m0", &[7]));
        tap.save(&path).unwrap();
        let back = AdversaryTap::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.series("t"), tap.series("t"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
