//! The provider-side adversary tap.
//!
//! The paper's adversary models (§3) give the attacker the storage
//! provider's view: the logical, pre-deduplication order of ciphertext
//! chunks of each uploaded backup. In a real deployment this view is not
//! hypothetical — it is the provider's *own metadata*: the per-session
//! upload stream the service must read anyway, and the backup manifests
//! it must keep to serve restores. [`AdversaryTap`] records exactly that:
//! every session's observed `(fingerprint, size)` stream, segmented at
//! COMMIT-MANIFEST boundaries into ordinary [`Backup`]s, so
//! `LocalityAttack` / `AdvancedAttack` run **unchanged** against live
//! traffic.
//!
//! Because a session is one TCP connection handled start-to-finish by one
//! worker, each committed stream is byte-identical to the order the
//! client sent — concurrent sessions never interleave *within* a tapped
//! backup. [`AdversaryTap::series`] therefore returns a deterministic
//! representation (sorted by label) regardless of which client's commit
//! raced ahead, which is what makes live-traffic attack output
//! reproducible against offline ingest.
//!
//! The tap doubles as the service's manifest catalog: RESTORE-BACKUP is
//! served from it. That is the threat model in one line — the metadata
//! the provider needs in order to function *is* the leak.
//!
//! Since PR 6 the tap also keeps the adversary's **running attack
//! state**: a [`TapStreaming`] pair of
//! [`IncrementalStats`] (one per [`TiePolicy`])
//! folded forward on every [`AdversaryTap::record_commit`] in O(delta)
//! amortized — the attacker never rebuilds `COUNT` from the full tape.
//! The streaming state follows **commit order** (the order the provider
//! actually observed), and is bit-identical at every commit point to a
//! batch recompute over [`AdversaryTap::committed`]. It persists beside
//! the catalog (`tap.fqis` next to `tap.fqdt`), so a restarted tap
//! resumes the exact same state without replaying history; when only the
//! catalog survives, the state is rebuilt by replaying the label-sorted
//! series (deterministic, but equal to the live state only when commit
//! order matched label order — `StreamOrder` tie-breaks are
//! position-dependent).

use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;

use freqdedup_core::attacks::locality::LocalityParams;
use freqdedup_core::attacks::{self, AttackKind};
use freqdedup_core::counting::TiePolicy;
use freqdedup_core::{IncrementalStats, Inference};
use freqdedup_trace::io::{self, TraceIoError};
use freqdedup_trace::{Backup, BackupSeries};

/// The two tie-break policies the tap tracks, in storage order.
const POLICIES: [TiePolicy; 2] = [TiePolicy::StreamOrder, TiePolicy::KeyOrder];

/// The adversary's running attack state behind the tap: one
/// [`IncrementalStats`] per [`TiePolicy`], plus the per-commit update
/// latency log.
///
/// Equality ([`PartialEq`]) compares the attack state only — the latency
/// log is diagnostic, is not persisted, and resets on restart.
#[derive(Clone, Debug)]
pub struct TapStreaming {
    /// `[StreamOrder, KeyOrder]` running states (see [`POLICIES`]).
    stats: [IncrementalStats; 2],
    /// Wall-clock cost of each [`Self::commit`] (both policies), in
    /// microseconds. Diagnostic only; not persisted.
    update_micros: Vec<u64>,
}

impl Default for TapStreaming {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for TapStreaming {
    fn eq(&self, other: &Self) -> bool {
        self.stats == other.stats
    }
}

impl Eq for TapStreaming {}

impl TapStreaming {
    /// Creates empty running state for both policies.
    #[must_use]
    pub fn new() -> Self {
        TapStreaming {
            stats: POLICIES.map(IncrementalStats::new),
            update_micros: Vec::new(),
        }
    }

    /// Folds one committed backup into both policy states; returns the
    /// wall-clock cost in microseconds (also appended to
    /// [`Self::update_micros`]).
    pub fn commit(&mut self, backup: &Backup) -> u64 {
        let start = Instant::now();
        for stats in &mut self.stats {
            stats.commit(backup);
        }
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.update_micros.push(micros);
        micros
    }

    /// The running state under `policy`.
    #[must_use]
    pub fn stats(&self, policy: TiePolicy) -> &IncrementalStats {
        match policy {
            TiePolicy::StreamOrder => &self.stats[0],
            TiePolicy::KeyOrder => &self.stats[1],
        }
    }

    /// Per-commit update cost in microseconds since this state was
    /// constructed or loaded (restarts reset the log, not the state).
    #[must_use]
    pub fn update_micros(&self) -> &[u64] {
        &self.update_micros
    }

    /// Backups folded in so far.
    #[must_use]
    pub fn commits(&self) -> u64 {
        self.stats[0].commits()
    }

    /// Logical chunks folded in so far.
    #[must_use]
    pub fn logical_chunks(&self) -> u64 {
        self.stats[0].logical_chunks()
    }

    /// Rebuilds running state by replaying `committed` in the given
    /// order (the bootstrap path when no persisted state exists).
    #[must_use]
    pub fn rebuild(committed: &[Backup]) -> Self {
        let mut streaming = TapStreaming::new();
        for backup in committed {
            streaming.commit(backup);
        }
        streaming
    }

    /// Persists both policy states (two self-delimiting blobs in one
    /// file).
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] on write failure.
    pub fn save(&self, path: &Path) -> Result<(), TraceIoError> {
        let file = std::fs::File::create(path)?;
        let mut writer = std::io::BufWriter::new(file);
        for stats in &self.stats {
            stats.write_to(&mut writer)?;
        }
        use std::io::Write;
        writer.flush()?;
        Ok(())
    }

    /// Reloads state saved by [`Self::save`]. The result is
    /// bit-identical to the saved state (segment layout included); the
    /// latency log starts empty.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] on read failure, corruption, or when the
    /// file's policy pair is not `[StreamOrder, KeyOrder]`.
    pub fn load(path: &Path) -> Result<Self, TraceIoError> {
        let file = std::fs::File::open(path)?;
        let mut reader = std::io::BufReader::new(file);
        let first = IncrementalStats::read_from(&mut reader)?;
        let second = IncrementalStats::read_from(&mut reader)?;
        if first.policy() != TiePolicy::StreamOrder || second.policy() != TiePolicy::KeyOrder {
            return Err(TraceIoError::BadMagic);
        }
        Ok(TapStreaming {
            stats: [first, second],
            update_micros: Vec::new(),
        })
    }
}

/// One entry of the applied-commit registry: what a nonzero commit ID
/// already produced, so a client replaying the same operation after a
/// mid-operation disconnect gets the recorded acknowledgement instead of
/// a second application. Since PR 8 the registry covers the lifecycle
/// operations too (DELETE-BACKUP, GC, REKEY), which reuse the generic
/// `extra` slots for their ack fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppliedCommit {
    /// The manifest label the operation named (empty for GC/REKEY).
    pub label: String,
    /// Primary ack counter: logical chunks for COMMIT-MANIFEST, chunk
    /// references released for DELETE-BACKUP, containers dropped for GC,
    /// the committed epoch for REKEY.
    pub chunks: u64,
    /// Secondary ack counter: logical bytes for DELETE-BACKUP, reclaimed
    /// bytes for GC, containers rewritten for REKEY; 0 for commits.
    pub extra: u64,
    /// Tertiary ack counter: moved chunks for GC; 0 otherwise.
    pub extra2: u64,
}

impl AppliedCommit {
    /// Entry for an ordinary manifest commit (the extra slots unused).
    #[must_use]
    pub fn manifest(label: String, chunks: u64) -> Self {
        AppliedCommit {
            label,
            chunks,
            extra: 0,
            extra2: 0,
        }
    }
}

/// One lifecycle operation as the provider-side adversary observes it.
/// Deletion and GC are *events the provider performs* — they are part of
/// the observable record exactly like uploads: an attacker watching the
/// service learns which manifests churn and how much physical space each
/// collection freed, even though the running frequency state never
/// un-counts what was already observed (the provider cannot unsee an
/// upload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// A committed manifest was deleted.
    Delete {
        /// The deleted manifest's label.
        label: String,
        /// Logical chunks the deleted manifest carried.
        chunks: u64,
    },
    /// A garbage-collection pass ran.
    Gc {
        /// Containers dropped by the pass.
        containers_dropped: u64,
        /// Physical bytes reclaimed.
        reclaimed_bytes: u64,
    },
    /// The store was re-encrypted under a new key epoch.
    Rekey {
        /// The epoch now in force.
        epoch: u64,
    },
}

/// Magic bytes of the applied-commit registry file (`tap.cids`).
const CIDS_MAGIC: &[u8; 4] = b"FQCI";
/// Format version of the registry file. Version 2 added the two `extra`
/// ack slots per entry (lifecycle-operation replays); version-1 files are
/// rejected, which the server degrades to "no replay-suppression window".
const CIDS_VERSION: u16 = 2;
/// Sanity bound on a registry label length (matches the wire layer's
/// attitude: a corrupted length field must not drive an allocation).
const CIDS_MAX_LABEL: u64 = 1 << 20;

/// Per-session observed ciphertext streams, segmented by commit.
#[derive(Clone, Debug, Default)]
pub struct AdversaryTap {
    /// Committed backups in commit order (racy across sessions; use
    /// [`Self::series`] for the deterministic view).
    committed: Vec<Backup>,
    /// Streams of sessions that disconnected without committing
    /// (observed but not restorable).
    abandoned: Vec<Backup>,
    /// Running attack state, folded forward on every commit.
    streaming: TapStreaming,
    /// Exactly-once registry: nonzero commit IDs that already committed,
    /// with the ack the client should see on replay.
    applied: HashMap<u64, AppliedCommit>,
    /// Lifecycle operations observed in order (deletions, GC passes,
    /// rekeys) — adversary observables, like the committed streams.
    lifecycle: Vec<LifecycleEvent>,
    /// Manifests deleted from the catalog since this tap was built or
    /// loaded (the running attack state still covers them — observation
    /// is irreversible).
    deleted_commits: u64,
    /// Logical chunks those deleted manifests carried.
    deleted_chunks: u64,
    /// Degraded-recovery events observed while loading persisted state
    /// (corrupt `tap.fqis` / `tap.cids` recovered by replay or reset).
    warnings: u64,
}

impl AdversaryTap {
    /// Creates an empty tap.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one committed manifest stream, folding it into the
    /// running attack state (O(delta) amortized) before appending it to
    /// the catalog. Equivalent to [`Self::record_commit_id`] with commit
    /// ID 0 (no exactly-once tracking).
    pub fn record_commit(&mut self, backup: Backup) {
        self.record_commit_id(backup, 0);
    }

    /// [`Self::record_commit`] that additionally registers a nonzero
    /// `commit_id` in the applied-commit registry, making the commit
    /// idempotent: a later [`Self::applied`] lookup for the same ID
    /// returns the recorded ack instead of ingesting again. Commit ID 0
    /// opts out (the legacy non-resumable client path).
    pub fn record_commit_id(&mut self, backup: Backup, commit_id: u64) {
        if commit_id != 0 {
            self.applied.insert(
                commit_id,
                AppliedCommit::manifest(backup.label.clone(), backup.len() as u64),
            );
        }
        self.streaming.commit(&backup);
        self.committed.push(backup);
    }

    /// Registers a nonzero operation id in the applied registry without
    /// touching the catalog — the lifecycle operations' exactly-once
    /// path (the catalog change, if any, happens through
    /// [`Self::delete_backup`] / [`Self::record_gc`] /
    /// [`Self::record_rekey`]).
    pub fn record_applied(&mut self, commit_id: u64, entry: AppliedCommit) {
        if commit_id != 0 {
            self.applied.insert(commit_id, entry);
        }
    }

    /// Deletes every committed manifest with `label` from the catalog,
    /// recording the deletion as a lifecycle observable. Returns the
    /// total `(chunks, bytes)` the removed manifests carried, or `None`
    /// when no manifest matched. The running attack state keeps covering
    /// the deleted streams — the provider observed them; deletion cannot
    /// unobserve. A restarted tap rebuilds from the surviving catalog
    /// only.
    pub fn delete_backup(&mut self, label: &str) -> Option<(u64, u64)> {
        let mut chunks = 0u64;
        let mut bytes = 0u64;
        let mut removed = 0u64;
        self.committed.retain(|b| {
            if b.label == label {
                chunks += b.len() as u64;
                bytes += b.chunks.iter().map(|rec| u64::from(rec.size)).sum::<u64>();
                removed += 1;
                false
            } else {
                true
            }
        });
        if removed == 0 {
            return None;
        }
        self.deleted_commits += removed;
        self.deleted_chunks += chunks;
        self.lifecycle.push(LifecycleEvent::Delete {
            label: label.to_string(),
            chunks,
        });
        Some((chunks, bytes))
    }

    /// Records a garbage-collection pass as a lifecycle observable.
    pub fn record_gc(&mut self, containers_dropped: u64, reclaimed_bytes: u64) {
        self.lifecycle.push(LifecycleEvent::Gc {
            containers_dropped,
            reclaimed_bytes,
        });
    }

    /// Records a committed rekey as a lifecycle observable.
    pub fn record_rekey(&mut self, epoch: u64) {
        self.lifecycle.push(LifecycleEvent::Rekey { epoch });
    }

    /// Lifecycle operations observed so far, in order.
    #[must_use]
    pub fn lifecycle_events(&self) -> &[LifecycleEvent] {
        &self.lifecycle
    }

    /// Manifests deleted from the catalog since this tap was built or
    /// loaded.
    #[must_use]
    pub fn deleted_commits(&self) -> u64 {
        self.deleted_commits
    }

    /// Looks up a nonzero commit ID in the applied-commit registry.
    #[must_use]
    pub fn applied(&self, commit_id: u64) -> Option<&AppliedCommit> {
        self.applied.get(&commit_id)
    }

    /// The full applied-commit registry (commit ID → recorded ack).
    #[must_use]
    pub fn applied_commits(&self) -> &HashMap<u64, AppliedCommit> {
        &self.applied
    }

    /// Degraded-recovery warnings accumulated while loading persisted
    /// state (0 for a tap that loaded cleanly or was built in memory).
    #[must_use]
    pub fn warnings(&self) -> u64 {
        self.warnings
    }

    /// Records the un-committed tail stream of a closed session.
    pub fn record_abandoned(&mut self, backup: Backup) {
        if !backup.is_empty() {
            self.abandoned.push(backup);
        }
    }

    /// The committed backup with the given manifest label (most recent
    /// commit wins when a label was reused).
    #[must_use]
    pub fn backup(&self, label: &str) -> Option<&Backup> {
        self.committed.iter().rev().find(|b| b.label == label)
    }

    /// Number of committed manifests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// Whether nothing has been committed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Committed backups in commit order (nondeterministic across
    /// concurrent sessions — prefer [`Self::series`] for analysis).
    #[must_use]
    pub fn committed(&self) -> &[Backup] {
        &self.committed
    }

    /// Un-committed session tails (observed traffic that never became a
    /// manifest).
    #[must_use]
    pub fn abandoned(&self) -> &[Backup] {
        &self.abandoned
    }

    /// Total logical chunks observed across committed manifests.
    #[must_use]
    pub fn observed_chunks(&self) -> u64 {
        self.committed.iter().map(|b| b.len() as u64).sum()
    }

    /// The adversary's running attack state (kept in lockstep with
    /// [`Self::committed`] by [`Self::record_commit`]).
    #[must_use]
    pub fn streaming(&self) -> &TapStreaming {
        &self.streaming
    }

    /// Whether the running state covers exactly what was observed: the
    /// committed catalog plus everything [`Self::delete_backup`] removed
    /// from it (the adversary's state never un-counts an observation).
    /// Always true for a tap built through [`Self::record_commit`] /
    /// [`Self::delete_backup`]; checked after a resume from separately
    /// persisted state.
    #[must_use]
    pub fn streaming_consistent(&self) -> bool {
        self.streaming.commits() == self.committed.len() as u64 + self.deleted_commits
            && self.streaming.logical_chunks() == self.observed_chunks() + self.deleted_chunks
    }

    /// Runs `kind` in ciphertext-only mode against the **running** state
    /// under both tie-break policies — the live mirror of
    /// [`attacks::run_ciphertext_only_both_policies`], with no
    /// ciphertext-side rebuild. Bit-identical to a batch recompute over
    /// [`Self::committed`] at this commit point.
    #[must_use]
    pub fn streaming_inference_both_policies(
        &self,
        kind: AttackKind,
        plain_aux: &Backup,
        params: &LocalityParams,
    ) -> [(TiePolicy, Inference); 2] {
        POLICIES.map(|policy| {
            (
                policy,
                attacks::run_ciphertext_only_streaming(
                    kind,
                    self.streaming.stats(policy),
                    plain_aux,
                    params,
                ),
            )
        })
    }

    /// The deterministic adversary view: committed backups **sorted by
    /// label** (commit order depends on client scheduling; label order
    /// does not). This is the series attacks and equivalence tests run
    /// on.
    #[must_use]
    pub fn series(&self, name: impl Into<String>) -> BackupSeries {
        let mut series = BackupSeries::new(name);
        let mut sorted = self.committed.clone();
        sorted.sort_by(|a, b| a.label.cmp(&b.label));
        for backup in sorted {
            series.push(backup);
        }
        series
    }

    /// The chunk-boundary observable: each committed backup's
    /// **chunk-length sequence** in upload order, label-sorted like
    /// [`Self::series`]. Returns `(label, lengths)` pairs.
    ///
    /// MLE is length-preserving, so these are the *plaintext* chunk
    /// lengths — the raw material of boundary-inference attacks on CDC
    /// (the provider learns where every client-side cut fell, and cut
    /// positions are a function of plaintext content). The sequences ride
    /// in the same `(fingerprint, size)` records the catalog already
    /// persists (`tap.fqdt`), so a reloaded tap exposes the identical
    /// observable.
    #[must_use]
    pub fn length_sequences(&self) -> Vec<(String, Vec<u32>)> {
        let mut sorted: Vec<&Backup> = self.committed.iter().collect();
        sorted.sort_by(|a, b| a.label.cmp(&b.label));
        sorted
            .into_iter()
            .map(|b| {
                (
                    b.label.clone(),
                    b.chunks.iter().map(|rec| rec.size).collect(),
                )
            })
            .collect()
    }

    /// Persists the deterministic view to the workspace trace format
    /// (used by the server to survive restarts: the tap is also the
    /// manifest catalog).
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] on write failure.
    pub fn save(&self, path: &Path) -> Result<(), TraceIoError> {
        let file = std::fs::File::create(path)?;
        let mut writer = std::io::BufWriter::new(file);
        io::write_series(&self.series("tap"), &mut writer)?;
        use std::io::Write;
        writer.flush()?;
        Ok(())
    }

    /// Persists the applied-commit registry (`tap.cids`): magic,
    /// version, entry count, `(commit_id, chunks, extra, extra2, label)`
    /// entries, and a
    /// trailing CRC-32 over everything before it. Like the catalog and
    /// the streaming state, the registry is written at graceful shutdown
    /// — a crash between commits loses at most the replay-suppression
    /// window, never store or catalog integrity.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] on write failure.
    pub fn save_commit_ids(&self, path: &Path) -> Result<(), TraceIoError> {
        let mut body = Vec::with_capacity(16 + self.applied.len() * 44);
        body.extend_from_slice(CIDS_MAGIC);
        body.extend_from_slice(&CIDS_VERSION.to_le_bytes());
        body.extend_from_slice(&(self.applied.len() as u32).to_le_bytes());
        // Sorted so the file is byte-deterministic for a given registry.
        let mut ids: Vec<_> = self.applied.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let entry = &self.applied[&id];
            body.extend_from_slice(&id.to_le_bytes());
            body.extend_from_slice(&entry.chunks.to_le_bytes());
            body.extend_from_slice(&entry.extra.to_le_bytes());
            body.extend_from_slice(&entry.extra2.to_le_bytes());
            body.extend_from_slice(&(entry.label.len() as u32).to_le_bytes());
            body.extend_from_slice(entry.label.as_bytes());
        }
        let crc = io::crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(path, body)?;
        Ok(())
    }

    /// Merges a registry saved by [`Self::save_commit_ids`] into this
    /// tap; returns the number of entries loaded.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] on read failure, bad magic/version, CRC
    /// mismatch, or a malformed entry.
    pub fn load_commit_ids(&mut self, path: &Path) -> Result<usize, TraceIoError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < CIDS_MAGIC.len() + 2 + 4 + 4 {
            return Err(TraceIoError::BadMagic);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let expected = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
        let actual = io::crc32(body);
        if actual != expected {
            return Err(TraceIoError::BadChecksum { expected, actual });
        }
        if &body[..4] != CIDS_MAGIC {
            return Err(TraceIoError::BadMagic);
        }
        let version = u16::from_le_bytes(body[4..6].try_into().expect("2 bytes"));
        if version != CIDS_VERSION {
            return Err(TraceIoError::BadVersion(version));
        }
        let count = u32::from_le_bytes(body[6..10].try_into().expect("4 bytes")) as usize;
        let mut at = 10;
        let mut loaded = 0;
        for _ in 0..count {
            if body.len() < at + 36 {
                return Err(TraceIoError::LengthOverflow(body.len() as u64));
            }
            let id = u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"));
            let chunks = u64::from_le_bytes(body[at + 8..at + 16].try_into().expect("8 bytes"));
            let extra = u64::from_le_bytes(body[at + 16..at + 24].try_into().expect("8 bytes"));
            let extra2 = u64::from_le_bytes(body[at + 24..at + 32].try_into().expect("8 bytes"));
            let label_len =
                u32::from_le_bytes(body[at + 32..at + 36].try_into().expect("4 bytes")) as u64;
            if label_len > CIDS_MAX_LABEL {
                return Err(TraceIoError::LengthOverflow(label_len));
            }
            let label_len = label_len as usize;
            at += 36;
            if body.len() < at + label_len {
                return Err(TraceIoError::LengthOverflow(body.len() as u64));
            }
            let label = std::str::from_utf8(&body[at..at + label_len])
                .map_err(|_| TraceIoError::BadUtf8)?
                .to_owned();
            at += label_len;
            if id != 0 {
                self.applied.insert(
                    id,
                    AppliedCommit {
                        label,
                        chunks,
                        extra,
                        extra2,
                    },
                );
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Reloads a tap saved by [`Self::save`] (abandoned streams are not
    /// persisted). The running attack state is **rebuilt by replaying**
    /// the reloaded catalog — deterministic, but O(history); prefer
    /// [`Self::load_resuming`] when the separately persisted state file
    /// exists.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] on read failure or corruption.
    pub fn load(path: &Path) -> Result<Self, TraceIoError> {
        let committed = Self::load_catalog(path)?;
        let streaming = TapStreaming::rebuild(&committed);
        Ok(AdversaryTap {
            committed,
            streaming,
            ..AdversaryTap::default()
        })
    }

    /// Reloads a tap together with its persisted running attack state
    /// ([`TapStreaming::save`]) — the O(1)-replay resume path: the state
    /// comes back bit-identical to the one saved, with no history
    /// replay. Falls back to a replay rebuild when the persisted state
    /// does not cover the catalog (e.g. the two files are from different
    /// shutdowns), and — counting a [`Self::warnings`] degradation — when
    /// the state file is corrupt or truncated: the catalog is the source
    /// of truth, so a bad `tap.fqis` costs a replay, never an error.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] only when the **catalog** fails to read.
    pub fn load_resuming(path: &Path, stream_path: &Path) -> Result<Self, TraceIoError> {
        let committed = Self::load_catalog(path)?;
        let mut warnings = 0;
        let streaming = match TapStreaming::load(stream_path) {
            Ok(streaming) => Some(streaming),
            Err(TraceIoError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(_) => {
                warnings += 1;
                None
            }
        };
        let mut tap = AdversaryTap {
            streaming: streaming.unwrap_or_else(|| TapStreaming::rebuild(&committed)),
            committed,
            warnings,
            ..AdversaryTap::default()
        };
        if !tap.streaming_consistent() {
            tap.streaming = TapStreaming::rebuild(&tap.committed);
        }
        Ok(tap)
    }

    /// Reads the committed-backup catalog of a saved tap.
    fn load_catalog(path: &Path) -> Result<Vec<Backup>, TraceIoError> {
        let file = std::fs::File::open(path)?;
        let series = io::read_series(std::io::BufReader::new(file))?;
        Ok(series.backups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::ChunkRecord;

    fn backup(label: &str, fps: &[u64]) -> Backup {
        Backup::from_chunks(label, fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
    }

    #[test]
    fn series_is_label_sorted_regardless_of_commit_order() {
        let mut a = AdversaryTap::new();
        a.record_commit(backup("b", &[1]));
        a.record_commit(backup("a", &[2]));
        let mut b = AdversaryTap::new();
        b.record_commit(backup("a", &[2]));
        b.record_commit(backup("b", &[1]));
        assert_eq!(a.series("t"), b.series("t"));
        assert_eq!(a.series("t").get(0).unwrap().label, "a");
    }

    #[test]
    fn label_lookup_prefers_latest() {
        let mut tap = AdversaryTap::new();
        tap.record_commit(backup("x", &[1]));
        tap.record_commit(backup("x", &[2, 3]));
        assert_eq!(tap.backup("x").unwrap().len(), 2);
        assert!(tap.backup("y").is_none());
        assert_eq!(tap.observed_chunks(), 3);
    }

    #[test]
    fn abandoned_streams_kept_separately() {
        let mut tap = AdversaryTap::new();
        tap.record_abandoned(backup("", &[]));
        tap.record_abandoned(backup("", &[9]));
        assert_eq!(tap.abandoned().len(), 1);
        assert!(tap.is_empty());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("freqdedup-tap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tap.fqdt");
        let mut tap = AdversaryTap::new();
        tap.record_commit(backup("m1", &[1, 2, 1]));
        tap.record_commit(backup("m0", &[7]));
        tap.save(&path).unwrap();
        let back = AdversaryTap::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.series("t"), tap.series("t"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn length_sequences_are_label_sorted_and_survive_persistence() {
        let sized = |label: &str, sizes: &[u32]| {
            Backup::from_chunks(
                label,
                sizes
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| ChunkRecord::new(1000 + i as u64, s))
                    .collect(),
            )
        };
        let mut tap = AdversaryTap::new();
        // Commit order differs from label order; sequences keep upload
        // order within each backup.
        tap.record_commit(sized("m1", &[4096, 100, 8192]));
        tap.record_commit(sized("m0", &[512, 512]));
        assert_eq!(
            tap.length_sequences(),
            vec![
                ("m0".to_string(), vec![512, 512]),
                ("m1".to_string(), vec![4096, 100, 8192]),
            ]
        );

        // The observable rides in the persisted catalog: a reloaded tap
        // exposes identical sequences.
        let dir = std::env::temp_dir().join(format!("freqdedup-taplens-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tap.fqdt");
        tap.save(&path).unwrap();
        let back = AdversaryTap::load(&path).unwrap();
        assert_eq!(back.length_sequences(), tap.length_sequences());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_commit_keeps_streaming_in_lockstep() {
        let mut tap = AdversaryTap::new();
        tap.record_commit(backup("m0", &[1, 2, 1, 3]));
        tap.record_commit(backup("m1", &[2, 3, 9]));
        assert!(tap.streaming_consistent());
        assert_eq!(tap.streaming().commits(), 2);
        assert_eq!(tap.streaming().logical_chunks(), 7);
        assert_eq!(tap.streaming().update_micros().len(), 2);
        // The running state equals a batch recompute over the committed
        // tape, per policy.
        use freqdedup_core::DenseStats;
        for policy in [TiePolicy::StreamOrder, TiePolicy::KeyOrder] {
            assert_eq!(
                tap.streaming().stats(policy).to_dense(),
                DenseStats::full_series_with_policy(tap.committed(), policy),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn streaming_resume_is_bit_identical_and_fallback_replays() {
        let dir = std::env::temp_dir().join(format!("freqdedup-tapstream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tap_path = dir.join("tap.fqdt");
        let stream_path = dir.join("tap.fqis");
        let mut tap = AdversaryTap::new();
        // Commit order deliberately differs from label order.
        tap.record_commit(backup("m1", &[1, 2, 1, 3]));
        tap.record_commit(backup("m0", &[2, 3, 9]));
        tap.save(&tap_path).unwrap();
        tap.streaming().save(&stream_path).unwrap();

        // Resume path: exact state back, segment layout and all.
        let resumed = AdversaryTap::load_resuming(&tap_path, &stream_path).unwrap();
        assert_eq!(resumed.streaming(), tap.streaming());
        assert!(resumed.streaming_consistent());

        // Fallback path: consistent, but rebuilt from the label-sorted
        // catalog (KeyOrder state matches exactly; StreamOrder may
        // differ from the live commit order — here it does, since the
        // labels were committed out of order).
        let rebuilt = AdversaryTap::load(&tap_path).unwrap();
        assert!(rebuilt.streaming_consistent());
        assert_eq!(
            rebuilt.streaming().stats(TiePolicy::KeyOrder).freq().len(),
            tap.streaming().stats(TiePolicy::KeyOrder).freq().len()
        );

        // A stale state file (one commit behind) triggers the replay
        // fallback instead of resuming inconsistent state.
        let mut newer = tap.clone();
        newer.record_commit(backup("m2", &[5]));
        newer.save(&tap_path).unwrap();
        let fell_back = AdversaryTap::load_resuming(&tap_path, &stream_path).unwrap();
        assert!(fell_back.streaming_consistent());
        assert_eq!(fell_back.streaming().commits(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_id_registry_round_trips_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("freqdedup-tapcids-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tap.cids");
        let mut tap = AdversaryTap::new();
        tap.record_commit_id(backup("m0", &[1, 2]), 41);
        tap.record_commit_id(backup("m1", &[3]), 42);
        // Commit ID 0 opts out of the registry.
        tap.record_commit_id(backup("m2", &[4]), 0);
        assert_eq!(tap.applied(41).unwrap().chunks, 2);
        assert_eq!(tap.applied(42).unwrap().label, "m1");
        assert!(tap.applied(0).is_none());
        tap.save_commit_ids(&path).unwrap();

        // Lifecycle ops register through the same file with the extra
        // ack slots intact.
        tap.record_applied(
            50,
            AppliedCommit {
                label: "m0".into(),
                chunks: 2,
                extra: 16,
                extra2: 0,
            },
        );
        tap.save_commit_ids(&path).unwrap();

        let mut back = AdversaryTap::new();
        assert_eq!(back.load_commit_ids(&path).unwrap(), 3);
        assert_eq!(back.applied_commits(), tap.applied_commits());
        assert_eq!(back.applied(50).unwrap().extra, 16);

        // Any flipped byte fails the trailing CRC.
        let clean = std::fs::read(&path).unwrap();
        for at in [0, 6, clean.len() / 2, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[at] ^= 0xff;
            std::fs::write(&path, &bad).unwrap();
            let err = AdversaryTap::new().load_commit_ids(&path);
            assert!(err.is_err(), "flip at {at} accepted");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_stream_state_falls_back_to_replay_with_warning() {
        let dir = std::env::temp_dir().join(format!("freqdedup-tapcorrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tap_path = dir.join("tap.fqdt");
        let stream_path = dir.join("tap.fqis");
        let mut tap = AdversaryTap::new();
        tap.record_commit(backup("a", &[1, 2, 1]));
        tap.record_commit(backup("b", &[2, 9]));
        tap.save(&tap_path).unwrap();
        tap.streaming().save(&stream_path).unwrap();
        let clean = std::fs::read(&stream_path).unwrap();

        // Corrupt the state file at several offsets (plus truncation):
        // every variant must fall back to a catalog replay whose state is
        // bit-identical to a fresh rebuild, with the warning counted.
        let mut variants: Vec<Vec<u8>> = vec![clean[..clean.len() / 3].to_vec(), b"junk".to_vec()];
        for at in [0, clean.len() / 2, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[at] ^= 0xff;
            variants.push(bad);
        }
        for (i, bad) in variants.iter().enumerate() {
            std::fs::write(&stream_path, bad).unwrap();
            let fell_back = AdversaryTap::load_resuming(&tap_path, &stream_path).unwrap();
            assert_eq!(fell_back.warnings(), 1, "variant {i}");
            assert!(fell_back.streaming_consistent(), "variant {i}");
            assert_eq!(
                fell_back.streaming(),
                AdversaryTap::load(&tap_path).unwrap().streaming(),
                "variant {i}"
            );
        }

        // A merely missing state file is the normal bootstrap, not a
        // degradation.
        std::fs::remove_file(&stream_path).unwrap();
        let boot = AdversaryTap::load_resuming(&tap_path, &stream_path).unwrap();
        assert_eq!(boot.warnings(), 0);
        assert!(boot.streaming_consistent());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deletion_shrinks_catalog_but_not_the_observed_state() {
        let mut tap = AdversaryTap::new();
        tap.record_commit(backup("keep", &[1, 2]));
        tap.record_commit(backup("gone", &[3, 4, 5]));
        tap.record_commit(backup("gone", &[6]));
        assert!(tap.delete_backup("missing").is_none());

        // Deleting a reused label removes every entry under it.
        let (chunks, bytes) = tap.delete_backup("gone").unwrap();
        assert_eq!(chunks, 4);
        assert_eq!(bytes, 4 * 8);
        assert_eq!(tap.len(), 1);
        assert!(tap.backup("gone").is_none());
        assert_eq!(tap.deleted_commits(), 2);

        // The running attack state still covers the deleted streams —
        // and the consistency check knows that.
        assert_eq!(tap.streaming().commits(), 3);
        assert_eq!(tap.streaming().logical_chunks(), 6);
        assert!(tap.streaming_consistent());

        // Deletion, GC and rekey all land in the observable record.
        tap.record_gc(2, 4096);
        tap.record_rekey(1);
        assert_eq!(
            tap.lifecycle_events(),
            &[
                LifecycleEvent::Delete {
                    label: "gone".into(),
                    chunks: 4
                },
                LifecycleEvent::Gc {
                    containers_dropped: 2,
                    reclaimed_bytes: 4096
                },
                LifecycleEvent::Rekey { epoch: 1 },
            ]
        );

        // A save/reload rebuilds from the surviving catalog only — the
        // restarted adversary state covers exactly what still exists.
        let dir = std::env::temp_dir().join(format!("freqdedup-tapdel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tap.fqdt");
        tap.save(&path).unwrap();
        let back = AdversaryTap::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.streaming().commits(), 1);
        assert!(back.streaming_consistent());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_inference_matches_batch_both_policies() {
        use freqdedup_core::attacks::run_ciphertext_only_series;
        let mut tap = AdversaryTap::new();
        tap.record_commit(backup("m0", &[101, 102, 101, 102, 103, 104]));
        tap.record_commit(backup("m1", &[102, 103, 104, 104]));
        let aux = backup("aux", &[1, 2, 1, 2, 3, 4, 2, 3, 4]);
        let params = LocalityParams::new(1, 1, 1000);
        for (policy, streamed) in
            tap.streaming_inference_both_policies(AttackKind::Locality, &aux, &params)
        {
            let batch = run_ciphertext_only_series(
                AttackKind::Locality,
                tap.committed(),
                &aux,
                &params.clone().tie_policy(policy),
            );
            let mut a: Vec<_> = streamed.iter().collect();
            let mut b: Vec<_> = batch.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{policy:?}");
        }
    }
}
