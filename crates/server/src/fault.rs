//! Deterministic network fault injection for the wire layer.
//!
//! The chaos suite (`tests/chaos.rs`, `perf_report --faults`) needs to
//! break connections *reproducibly*: the acceptance property is that for
//! **any** seeded fault schedule, every client either completes with
//! store and tap bit-identical to the fault-free run, or surfaces a
//! clean typed error — never a third outcome. That demands schedules
//! that are (a) frame-aware, so faults land exactly at the protocol's
//! atomicity boundaries and inside them, and (b) replayable from a seed,
//! so a failing schedule is a bug report, not a flake.
//!
//! [`FaultProxy`] is an in-process TCP proxy: clients connect to it, it
//! relays byte-exact traffic to the real server, and at every *frame*
//! boundary (both directions — losing an ack is the interesting case for
//! exactly-once) it consults a [`FaultPlan`] derived from a
//! [`FaultSpec`] seed: forward, delay, cut the connection, or forward a
//! partial frame and then cut. Production paths are untouched — the
//! proxy lives entirely outside [`crate::server`] / [`crate::client`].
//!
//! The randomness is [`SplitMix64`] — the same tiny generator the
//! workspace already uses for synthetic payloads — so schedules are
//! stable across platforms and toolchains.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// SplitMix64: 8 bytes of state, full 64-bit period, excellent mixing —
/// the workspace's standard deterministic stream (same constants as
/// [`crate::client::synthetic_payload`]).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded directly.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// A stream seeded from a name (FNV-1a fold of the bytes), so e.g.
    /// each client name gets its own reproducible jitter schedule.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SplitMix64::new(h)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// What to do with one relayed frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Relay unchanged.
    Forward,
    /// Hold the frame for the given number of milliseconds, then relay.
    Delay(u16),
    /// Cut the connection at the frame boundary (the frame is lost).
    Reset,
    /// Relay only the first `n` bytes of the frame, then cut — a torn
    /// frame on the wire.
    PartialThenReset(u32),
}

/// Seeded fault-schedule parameters: how often (per mille of frames, per
/// direction) each fault fires, and the delay ceiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed every per-connection schedule derives from.
    pub seed: u64,
    /// Connection cuts per 1000 frames.
    pub reset_per_mille: u16,
    /// Torn-frame cuts per 1000 frames.
    pub partial_per_mille: u16,
    /// Delays per 1000 frames.
    pub delay_per_mille: u16,
    /// Upper bound on an injected delay, in milliseconds.
    pub max_delay_ms: u16,
}

impl FaultSpec {
    /// A moderately hostile default schedule for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            reset_per_mille: 30,
            partial_per_mille: 20,
            delay_per_mille: 50,
            max_delay_ms: 2,
        }
    }

    /// A schedule that never injects (the proxy becomes a transparent
    /// relay — the control arm of the chaos property).
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        FaultSpec {
            seed,
            reset_per_mille: 0,
            partial_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ms: 0,
        }
    }

    /// Sets the cut rate (builder style).
    #[must_use]
    pub fn resets(mut self, per_mille: u16) -> Self {
        self.reset_per_mille = per_mille;
        self
    }

    /// Sets the torn-frame rate (builder style).
    #[must_use]
    pub fn partials(mut self, per_mille: u16) -> Self {
        self.partial_per_mille = per_mille;
        self
    }

    /// Sets the delay rate and ceiling (builder style).
    #[must_use]
    pub fn delays(mut self, per_mille: u16, max_ms: u16) -> Self {
        self.delay_per_mille = per_mille;
        self.max_delay_ms = max_ms;
        self
    }
}

/// One direction's deterministic schedule: the fault decision for the
/// k-th frame of connection `conn` depends only on
/// `(spec.seed, conn, direction, k)`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    rng: SplitMix64,
}

impl FaultPlan {
    /// The schedule for one direction of one proxied connection
    /// (`direction`: 0 = client→server, 1 = server→client).
    #[must_use]
    pub fn for_connection(spec: FaultSpec, conn: u64, direction: u64) -> Self {
        let mut seed = SplitMix64::new(spec.seed ^ conn.rotate_left(17) ^ (direction << 62));
        // Burn one output so conn 0 / direction 0 does not reuse the raw
        // seed as its first decision.
        let state = seed.next_u64();
        FaultPlan {
            spec,
            rng: SplitMix64::new(state),
        }
    }

    /// Decides the fate of the next frame (`frame_len` = header + body
    /// bytes; a partial cut lands strictly inside it).
    pub fn next_event(&mut self, frame_len: usize) -> NetFault {
        let r = self.rng.next_u64();
        let roll = (r % 1000) as u16;
        let reset_at = self.spec.reset_per_mille;
        let partial_at = reset_at + self.spec.partial_per_mille;
        let delay_at = partial_at + self.spec.delay_per_mille;
        if roll < reset_at {
            NetFault::Reset
        } else if roll < partial_at {
            // 1..frame_len-1: always torn, never empty, never complete.
            let span = frame_len.saturating_sub(1).max(1) as u64;
            NetFault::PartialThenReset(1 + ((r >> 16) % span) as u32)
        } else if roll < delay_at && self.spec.max_delay_ms > 0 {
            NetFault::Delay(1 + ((r >> 32) % u64::from(self.spec.max_delay_ms)) as u16)
        } else {
            NetFault::Forward
        }
    }
}

/// Counters of what a [`FaultProxy`] actually injected.
#[derive(Debug, Default)]
pub struct ProxyCounts {
    /// Frames relayed (either direction, post-decision).
    pub frames: AtomicU64,
    /// Connections proxied.
    pub connections: AtomicU64,
    /// Injected delays.
    pub delays: AtomicU64,
    /// Injected connection cuts (frame-boundary).
    pub resets: AtomicU64,
    /// Injected torn-frame cuts.
    pub partials: AtomicU64,
}

/// Poll interval for the proxy's stop flag (accept loop and relays).
const PROXY_POLL: Duration = Duration::from_millis(5);

/// An in-process fault-injecting TCP relay in front of a real server.
///
/// All threads are owned and joined by [`Self::stop`]; nothing detaches.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counts: Arc<ProxyCounts>,
    acceptor: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Binds a loopback listener and starts relaying every accepted
    /// connection to `upstream` under `spec`'s schedule.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind error.
    pub fn start(upstream: SocketAddr, spec: FaultSpec) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counts = Arc::new(ProxyCounts::default());
        let acceptor = {
            let stop = Arc::clone(&stop);
            let counts = Arc::clone(&counts);
            std::thread::spawn(move || {
                accept_loop(&listener, upstream, spec, &stop, &counts);
            })
        };
        Ok(FaultProxy {
            addr,
            stop,
            counts,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live injection counters.
    #[must_use]
    pub fn counts(&self) -> &ProxyCounts {
        &self.counts
    }

    /// Stops accepting, cuts the remaining relays, and joins every
    /// proxy thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until stopped; joins all relay threads before
/// returning (so `FaultProxy::stop` implies full quiescence).
fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    spec: FaultSpec,
    stop: &Arc<AtomicBool>,
    counts: &Arc<ProxyCounts>,
) {
    let relays: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    let mut conn: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let id = conn;
                conn += 1;
                counts.connections.fetch_add(1, Ordering::SeqCst);
                match TcpStream::connect(upstream) {
                    Ok(server) => {
                        let _ = client.set_nodelay(true);
                        let _ = server.set_nodelay(true);
                        spawn_relay_pair(client, server, spec, id, stop, counts, &relays);
                    }
                    Err(_) => {
                        let _ = client.shutdown(Shutdown::Both);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(PROXY_POLL);
            }
            Err(_) => std::thread::sleep(PROXY_POLL),
        }
    }
    for handle in relays.into_inner().unwrap_or_default() {
        let _ = handle.join();
    }
}

/// Spawns the two per-direction relay threads of one proxied connection.
fn spawn_relay_pair(
    client: TcpStream,
    server: TcpStream,
    spec: FaultSpec,
    conn: u64,
    stop: &Arc<AtomicBool>,
    counts: &Arc<ProxyCounts>,
    relays: &Mutex<Vec<JoinHandle<()>>>,
) {
    let mut handles = relays
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for direction in 0..2u64 {
        let (Ok(read_side), Ok(write_side)) = (if direction == 0 {
            (client.try_clone(), server.try_clone())
        } else {
            (server.try_clone(), client.try_clone())
        }) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        let plan = FaultPlan::for_connection(spec, conn, direction);
        let stop = Arc::clone(stop);
        let counts = Arc::clone(counts);
        handles.push(std::thread::spawn(move || {
            relay_frames(read_side, write_side, plan, &stop, &counts);
        }));
    }
}

/// Relays whole frames from `from` to `to`, applying the plan's decision
/// at each boundary. Exits on EOF, error, an injected cut, or stop.
fn relay_frames(
    mut from: TcpStream,
    mut to: TcpStream,
    mut plan: FaultPlan,
    stop: &AtomicBool,
    counts: &ProxyCounts,
) {
    let _ = from.set_read_timeout(Some(PROXY_POLL));
    let mut frame: Vec<u8> = Vec::new();
    loop {
        frame.clear();
        frame.resize(8, 0);
        match read_exact_polling(&mut from, &mut frame[..], stop) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof(0) => break, // clean boundary EOF
            ReadOutcome::Eof(n) => {
                // Torn header from the source: propagate the tear.
                let _ = to.write_all(&frame[..n]);
                break;
            }
            ReadOutcome::Stopped | ReadOutcome::Err => break,
        }
        let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
        if len == 0 || len > crate::frame::MAX_FRAME_BYTES {
            // Not our protocol; forward the bytes and drop to passthrough.
            let _ = to.write_all(&frame);
            passthrough(&mut from, &mut to, stop);
            break;
        }
        frame.resize(8 + len, 0);
        match read_exact_polling(&mut from, &mut frame[8..], stop) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof(n) => {
                let _ = to.write_all(&frame[..8 + n]);
                break;
            }
            ReadOutcome::Stopped | ReadOutcome::Err => break,
        }
        match plan.next_event(frame.len()) {
            NetFault::Forward => {
                if to.write_all(&frame).is_err() {
                    break;
                }
            }
            NetFault::Delay(ms) => {
                counts.delays.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(u64::from(ms)));
                if to.write_all(&frame).is_err() {
                    break;
                }
            }
            NetFault::Reset => {
                counts.resets.fetch_add(1, Ordering::SeqCst);
                cut(&from, &to);
                break;
            }
            NetFault::PartialThenReset(n) => {
                counts.partials.fetch_add(1, Ordering::SeqCst);
                let n = (n as usize).min(frame.len().saturating_sub(1));
                let _ = to.write_all(&frame[..n]);
                let _ = to.flush();
                cut(&from, &to);
                break;
            }
        }
        counts.frames.fetch_add(1, Ordering::SeqCst);
    }
    // Relay done (tear, EOF or stop): make sure the peer direction
    // unblocks too.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Cuts both sides of a proxied connection.
fn cut(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

enum ReadOutcome {
    Full,
    /// EOF after the given number of bytes.
    Eof(usize),
    Stopped,
    Err,
}

/// `read_exact` that polls the stop flag on its read-timeout ticks.
fn read_exact_polling(from: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> ReadOutcome {
    let mut got = 0;
    while got < buf.len() {
        match from.read(&mut buf[got..]) {
            Ok(0) => return ReadOutcome::Eof(got),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return ReadOutcome::Stopped;
                }
            }
            Err(_) => return ReadOutcome::Err,
        }
    }
    ReadOutcome::Full
}

/// Byte-level passthrough for non-frame traffic (diagnostic fallback).
fn passthrough(from: &mut TcpStream, to: &mut TcpStream, stop: &AtomicBool) {
    let mut buf = [0u8; 4096];
    while !stop.load(Ordering::SeqCst) {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic_and_name_seeded() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
        assert_ne!(
            SplitMix64::from_name("client-a").next_u64(),
            SplitMix64::from_name("client-b").next_u64()
        );
    }

    #[test]
    fn plans_replay_identically_and_differ_across_connections() {
        let spec = FaultSpec::new(7);
        let mut p1 = FaultPlan::for_connection(spec, 3, 0);
        let mut p2 = FaultPlan::for_connection(spec, 3, 0);
        let a: Vec<_> = (0..256).map(|_| p1.next_event(100)).collect();
        let b: Vec<_> = (0..256).map(|_| p2.next_event(100)).collect();
        assert_eq!(a, b);
        let mut other = FaultPlan::for_connection(spec, 4, 0);
        let c: Vec<_> = (0..256).map(|_| other.next_event(100)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn default_spec_actually_injects() {
        let mut plan = FaultPlan::for_connection(FaultSpec::new(1), 0, 0);
        let events: Vec<_> = (0..2000).map(|_| plan.next_event(64)).collect();
        assert!(events.iter().any(|e| matches!(e, NetFault::Reset)));
        assert!(events
            .iter()
            .any(|e| matches!(e, NetFault::PartialThenReset(_))));
        assert!(events.iter().any(|e| matches!(e, NetFault::Delay(_))));
        assert!(
            events
                .iter()
                .filter(|e| matches!(e, NetFault::Forward))
                .count()
                > 1500
        );
        // Partial cuts land strictly inside the frame.
        for e in &events {
            if let NetFault::PartialThenReset(n) = e {
                assert!(*n >= 1 && *n < 64);
            }
        }
        // The quiet spec never injects.
        let mut quiet = FaultPlan::for_connection(FaultSpec::quiet(1), 0, 0);
        assert!((0..2000).all(|_| quiet.next_event(64) == NetFault::Forward));
    }
}
