//! Bounded connection worker pool on the workspace's scoped-thread
//! discipline.
//!
//! The server follows the same rules as every parallel stage in the
//! workspace ([`freqdedup_core::par`]): a *fixed* set of workers, all
//! scoped (no detached threads), panics propagated to the caller, and a
//! deterministic join point. [`run_bounded`] literally runs on
//! [`freqdedup_core::par::par_for_each_mut`]: one slot is the acceptor
//! (producing jobs), the remaining `workers` slots drain the shared
//! [`JobQueue`]. The call returns only when the acceptor has stopped
//! *and* every queued job has been fully processed — which is exactly the
//! graceful-drain semantics SHUTDOWN needs.
//!
//! The pool is *bounded*: at most `workers` jobs run concurrently;
//! further accepted connections wait in the queue.
//!
//! Worker slots additionally **survive handler panics**: a panic while
//! serving one job is caught ([`std::panic::catch_unwind`]), counted, and
//! the slot returns to draining the queue — one poisoned connection must
//! not burn a pool slot for the lifetime of the service. Panics from the
//! acceptor still propagate (losing the acceptor is fatal by design).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

use freqdedup_core::par;

/// A closed-able MPMC job queue (mutex + condvar; no channels, no new
/// dependencies).
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> JobQueue<T> {
    /// Creates an empty, open queue.
    #[must_use]
    pub fn new() -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a job. Returns `false` (dropping the job) if the queue is
    /// already closed.
    pub fn push(&self, job: T) -> bool {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return false;
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Blocks for the next job. Returns `None` once the queue is closed
    /// *and* drained — the worker-exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes are refused,
    /// and blocked workers wake up.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Number of jobs currently waiting (diagnostics).
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }
}

/// Runs `accept` on one scoped thread and `worker` on `workers` scoped
/// threads, all draining `queue`; blocks until the acceptor returns and
/// the queue is fully drained. Returns the number of jobs whose handler
/// panicked (each caught; the slot kept serving).
///
/// `accept` must call [`JobQueue::close`] before returning (the function
/// also closes it defensively afterwards). Worker slots call `worker`
/// once per job until [`JobQueue::pop`] returns `None`.
///
/// # Panics
///
/// Propagates panics from the acceptor (the [`par::par_for_each_mut`]
/// contract); worker panics are caught per job and only counted.
pub fn run_bounded<T, A, W>(queue: &JobQueue<T>, workers: usize, accept: A, worker: W) -> u64
where
    T: Send,
    A: Fn() + Sync,
    W: Fn(T) + Sync,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    #[derive(Clone, Copy)]
    enum Role {
        Acceptor,
        Worker,
    }
    let workers = workers.max(1);
    let mut roles = vec![Role::Acceptor];
    roles.extend(std::iter::repeat_n(Role::Worker, workers));
    let caught = AtomicU64::new(0);
    // One scoped thread per role: the acceptor feeds the queue while the
    // worker slots drain it. par_for_each_mut with threads == items runs
    // each slot on its own scoped thread and joins them all.
    par::par_for_each_mut(roles.len(), &mut roles, |_, role| match role {
        Role::Acceptor => {
            accept();
            queue.close();
        }
        Role::Worker => {
            while let Some(job) = queue.pop() {
                // AssertUnwindSafe: `worker` only borrows shared state
                // behind mutexes whose lockers tolerate poison
                // (`crate::server::lock_unpoisoned`), so observing it
                // after an unwind is sound.
                if catch_unwind(AssertUnwindSafe(|| worker(job))).is_err() {
                    caught.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    });
    caught.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drains_everything_before_returning() {
        let queue: JobQueue<usize> = JobQueue::new();
        let done = AtomicUsize::new(0);
        run_bounded(
            &queue,
            4,
            || {
                for i in 0..100 {
                    assert!(queue.push(i));
                }
            },
            |_job| {
                done.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(done.load(Ordering::SeqCst), 100);
        assert_eq!(queue.backlog(), 0);
    }

    #[test]
    fn push_after_close_is_refused() {
        let queue: JobQueue<u32> = JobQueue::new();
        assert!(queue.push(1));
        queue.close();
        assert!(!queue.push(2));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn workers_exit_on_close_when_empty() {
        let queue: JobQueue<u32> = JobQueue::new();
        run_bounded(&queue, 2, || {}, |_| {});
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn worker_panics_are_caught_and_counted() {
        let queue: JobQueue<u32> = JobQueue::new();
        let done = AtomicUsize::new(0);
        let caught = run_bounded(
            &queue,
            2,
            || {
                for i in 0..20 {
                    queue.push(i);
                }
            },
            |job| {
                if job % 5 == 0 {
                    panic!("handler blew up on {job}");
                }
                done.fetch_add(1, Ordering::SeqCst);
            },
        );
        // Every job was attempted: 4 panicked (0, 5, 10, 15), the rest
        // completed — on the same 2 slots.
        assert_eq!(caught, 4);
        assert_eq!(done.load(Ordering::SeqCst), 16);
        assert_eq!(queue.backlog(), 0);
    }

    #[test]
    fn bounded_concurrency() {
        // With 2 workers, at most 2 jobs may be in flight at once.
        let queue: JobQueue<u32> = JobQueue::new();
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        run_bounded(
            &queue,
            2,
            || {
                for i in 0..50 {
                    queue.push(i);
                }
            },
            |_| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_micros(200));
                in_flight.fetch_sub(1, Ordering::SeqCst);
            },
        );
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }
}
