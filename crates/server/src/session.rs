//! Per-connection protocol state machine.
//!
//! A session is one TCP connection, handled start-to-finish by one pool
//! worker: HELLO version negotiation, then a request loop until the
//! client disconnects, the stream errors, or SHUTDOWN arrives. Between
//! requests the session polls the server's stop flag (the socket carries
//! a short read timeout), so a graceful shutdown drains in-flight
//! sessions instead of cutting them.
//!
//! Every PUT batch is both deduplicated *and* tapped: the `(fp, size)`
//! records are appended to the session's pending observed stream, which
//! COMMIT-MANIFEST snapshots into the [`crate::tap::AdversaryTap`] as one
//! [`Backup`]. A disconnect with uncommitted chunks records the tail as
//! an abandoned stream — observed by the adversary, but not restorable.

use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use freqdedup_trace::{Backup, ChunkRecord, Fingerprint};

use crate::frame::{read_frame, write_frame, WireError};
use crate::proto::{code, ChunkStatus, Message, MIN_WIRE_VERSION, WIRE_VERSION};
use crate::server::Shared;

/// Poll interval for the stop flag while a session is idle.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Runs one connection to completion. Never panics the worker on
/// protocol or socket errors — they are logged and end the session.
pub(crate) fn serve_connection(mut stream: TcpStream, shared: &Shared, id: u64) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut session = Session {
        shared,
        id,
        hello_done: false,
        pending: Vec::new(),
    };
    let outcome = session.run(&mut stream);
    if !session.pending.is_empty() {
        let tail = Backup::from_chunks(
            format!("session-{id}-uncommitted"),
            std::mem::take(&mut session.pending),
        );
        shared
            .tap
            .lock()
            .expect("tap poisoned")
            .record_abandoned(tail);
    }
    match outcome {
        Ok(()) => shared.log(&format!("session {id}: closed")),
        Err(e) => shared.log(&format!("session {id}: error: {e}")),
    }
}

struct Session<'a> {
    shared: &'a Shared,
    id: u64,
    hello_done: bool,
    /// Observed (pre-dedup) stream since the last commit.
    pending: Vec<ChunkRecord>,
}

impl Session<'_> {
    fn run(&mut self, stream: &mut TcpStream) -> Result<(), WireError> {
        loop {
            let payload = match read_frame(stream) {
                Ok(Some(payload)) => payload,
                Ok(None) => return Ok(()), // clean disconnect
                Err(WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Idle tick: drain on shutdown, else keep waiting.
                    if self.shared.stop.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    continue;
                }
                Err(e @ (WireError::BadCrc { .. } | WireError::Oversize { .. })) => {
                    // Torn / corrupt frame: report, then drop the
                    // connection (an oversize prefix desyncs the stream;
                    // a CRC failure means the peer's framing is not to
                    // be trusted either).
                    self.reply_err(stream, code::BAD_STATE, &e.to_string());
                    return Err(e);
                }
                Err(e) => return Err(e),
            };
            let msg = match Message::decode(&payload) {
                Ok(msg) => msg,
                Err(e) => {
                    // The frame was whole (CRC passed) so the stream is
                    // still aligned; reject the message and continue.
                    self.reply_err(stream, code::BAD_STATE, &e.to_string());
                    continue;
                }
            };
            if !self.hello_done && !matches!(msg, Message::Hello { .. }) {
                self.reply_err(stream, code::BAD_STATE, "HELLO required first");
                continue;
            }
            match msg {
                Message::Hello { version, client } => {
                    if version < MIN_WIRE_VERSION {
                        self.reply_err(stream, code::BAD_VERSION, "client version too old");
                        return Err(WireError::BadVersion(version));
                    }
                    let negotiated = version.min(WIRE_VERSION);
                    self.hello_done = true;
                    self.shared.log(&format!(
                        "session {}: hello from {client:?} (v{negotiated})",
                        self.id
                    ));
                    self.reply(
                        stream,
                        &Message::HelloAck {
                            version: negotiated,
                        },
                    )?;
                }
                Message::PutChunkBatch {
                    seq,
                    chunks,
                    payloads,
                } => self.handle_put(stream, seq, chunks, payloads)?,
                Message::CommitManifest { label } => {
                    let backup =
                        Backup::from_chunks(label.clone(), std::mem::take(&mut self.pending));
                    let chunks = backup.len() as u64;
                    self.shared
                        .tap
                        .lock()
                        .expect("tap poisoned")
                        .record_commit(backup);
                    self.shared.commits.fetch_add(1, Ordering::SeqCst);
                    self.shared.log(&format!(
                        "session {}: commit {label:?} ({chunks} chunks)",
                        self.id
                    ));
                    self.reply(stream, &Message::CommitAck { label, chunks })?;
                }
                Message::GetChunk { fp } => {
                    let resp = self.lookup_chunk(Fingerprint(fp));
                    self.reply(stream, &resp)?;
                }
                Message::RestoreBackup { label } => self.handle_restore(stream, &label)?,
                Message::StatsReq => {
                    let stats = self.shared.stats();
                    self.reply(stream, &Message::StatsResp(stats))?;
                }
                Message::Shutdown => {
                    self.shared
                        .log(&format!("session {}: shutdown requested", self.id));
                    self.reply(stream, &Message::ShutdownAck)?;
                    self.shared.stop.store(true, Ordering::SeqCst);
                    return Ok(());
                }
                // Server-only messages arriving at the server are a
                // client bug, not a transport failure.
                Message::HelloAck { .. }
                | Message::PutAck { .. }
                | Message::CommitAck { .. }
                | Message::ChunkResp { .. }
                | Message::RestoreHeader { .. }
                | Message::StatsResp(_)
                | Message::ShutdownAck
                | Message::ErrorResp { .. } => {
                    self.reply_err(stream, code::BAD_STATE, "unexpected server-side message");
                }
            }
        }
    }

    /// Ingests one batch: dedup through the sharded engine *and* append
    /// to the session's observed stream (the tap sees the logical
    /// pre-dedup order, exactly the paper's adversary).
    fn handle_put(
        &mut self,
        stream: &mut TcpStream,
        seq: u32,
        chunks: Vec<ChunkRecord>,
        payloads: Option<Vec<Vec<u8>>>,
    ) -> Result<(), WireError> {
        if let Some(p) = &payloads {
            if p.len() != chunks.len()
                || p.iter()
                    .zip(&chunks)
                    .any(|(bytes, rec)| bytes.len() != rec.size as usize)
            {
                self.reply_err(
                    stream,
                    code::BAD_BATCH,
                    "payload sizes disagree with records",
                );
                return Ok(());
            }
        }
        let has_payloads = payloads.is_some();
        let (unique, duplicate) = {
            let mut slot = self.shared.slot.lock().expect("engine poisoned");
            match slot.payload_mode {
                None => slot.payload_mode = Some(has_payloads),
                Some(mode) if mode != has_payloads => {
                    drop(slot);
                    self.reply_err(
                        stream,
                        code::MIXED_MODE,
                        "service already committed to the other payload mode",
                    );
                    return Ok(());
                }
                Some(_) => {}
            }
            let engine = slot.engine.as_mut().expect("engine open while serving");
            let mut unique = 0u32;
            let mut duplicate = 0u32;
            for (i, &rec) in chunks.iter().enumerate() {
                let outcome = match &payloads {
                    Some(p) => engine.process_with_payload(rec, &p[i]),
                    None => engine.process(rec),
                };
                if outcome.is_duplicate() {
                    duplicate += 1;
                } else {
                    unique += 1;
                }
            }
            (unique, duplicate)
        };
        self.pending.extend(chunks);
        self.reply(
            stream,
            &Message::PutAck {
                seq,
                unique,
                duplicate,
            },
        )
    }

    /// Streams a committed backup back: header, then one chunk frame per
    /// record in logical order.
    fn handle_restore(&mut self, stream: &mut TcpStream, label: &str) -> Result<(), WireError> {
        let records: Option<Vec<ChunkRecord>> = {
            let tap = self.shared.tap.lock().expect("tap poisoned");
            tap.backup(label).map(|b| b.chunks.clone())
        };
        let Some(records) = records else {
            self.reply_err(
                stream,
                code::UNKNOWN_LABEL,
                &format!("no manifest {label:?}"),
            );
            return Ok(());
        };
        self.reply(
            stream,
            &Message::RestoreHeader {
                label: label.to_string(),
                count: records.len() as u64,
            },
        )?;
        // Stream in bounded batches: each batch's responses (payload
        // clones included) are materialized under one short engine lock,
        // then written with the lock released — a multi-GB restore never
        // buffers the whole backup in memory nor starves other sessions
        // of the engine for its full duration.
        const RESTORE_BATCH: usize = 1024;
        for batch in records.chunks(RESTORE_BATCH) {
            let responses: Vec<Message> = {
                let slot = self.shared.slot.lock().expect("engine poisoned");
                let engine = slot.engine.as_ref().expect("engine open while serving");
                batch
                    .iter()
                    .map(|rec| chunk_resp(engine, rec.fp, rec.size))
                    .collect()
            };
            for resp in &responses {
                self.reply(stream, resp)?;
            }
        }
        Ok(())
    }

    fn lookup_chunk(&self, fp: Fingerprint) -> Message {
        let slot = self.shared.slot.lock().expect("engine poisoned");
        let engine = slot.engine.as_ref().expect("engine open while serving");
        chunk_resp(engine, fp, 0)
    }

    fn reply(&self, stream: &mut TcpStream, msg: &Message) -> Result<(), WireError> {
        write_frame(stream, &msg.encode())
    }

    fn reply_err(&self, stream: &mut TcpStream, code: u16, message: &str) {
        self.shared
            .log(&format!("session {}: error {code}: {message}", self.id));
        let _ = write_frame(
            stream,
            &Message::ErrorResp {
                code,
                message: message.to_string(),
            }
            .encode(),
        );
    }
}

/// Builds the [`Message::ChunkResp`] for a fingerprint, distinguishing
/// payload-bearing, metadata-only, and missing chunks. `known_size`
/// carries the manifest's size for metadata-only stores (the engine does
/// not retain per-chunk sizes without payloads).
fn chunk_resp(
    engine: &freqdedup_store::sharded::ShardedDedupEngine,
    fp: Fingerprint,
    known_size: u32,
) -> Message {
    match engine.read_chunk(fp) {
        Some(bytes) => Message::ChunkResp {
            fp: fp.value(),
            status: ChunkStatus::Payload,
            size: bytes.len() as u32,
            payload: bytes.to_vec(),
        },
        None if engine.contains(fp) => Message::ChunkResp {
            fp: fp.value(),
            status: ChunkStatus::Metadata,
            size: known_size,
            payload: Vec::new(),
        },
        None => Message::ChunkResp {
            fp: fp.value(),
            status: ChunkStatus::Missing,
            size: 0,
            payload: Vec::new(),
        },
    }
}
