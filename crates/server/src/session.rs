//! Per-connection protocol state machine.
//!
//! A session is one TCP connection, handled start-to-finish by one pool
//! worker: HELLO version negotiation, then a request loop until the
//! client disconnects, the stream errors, or SHUTDOWN arrives. Between
//! requests the session polls the server's stop flag (the socket carries
//! a short read timeout), so a graceful shutdown drains in-flight
//! sessions instead of cutting them.
//!
//! Every PUT batch is both deduplicated *and* tapped: the `(fp, size)`
//! records are appended to the session's pending observed stream, which
//! COMMIT-MANIFEST snapshots into the [`crate::tap::AdversaryTap`] as one
//! [`Backup`]. A disconnect with uncommitted chunks records the tail as
//! an abandoned stream — observed by the adversary, but not restorable —
//! unless the session declared a commit id via RESUME, in which case the
//! tail is *parked* under the client's name and a reconnecting session
//! resumes it exactly where it broke (see `Parked` in `server.rs`).

use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use freqdedup_store::lifecycle::LifecycleError;
use freqdedup_trace::{Backup, ChunkRecord, Fingerprint};

use crate::frame::{read_frame, write_frame, WireError};
use crate::proto::{code, ChunkStatus, Message, ResumeState, MIN_WIRE_VERSION, WIRE_VERSION};
use crate::server::{lock_unpoisoned, Parked, Shared};
use crate::tap::AppliedCommit;

/// Poll interval for the stop flag while a session is idle.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Write deadline on the session socket: a peer that stops draining its
/// receive buffer (half-open connection) errors the session out instead
/// of pinning the pool worker on a blocked `write`.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Runs one connection to completion. Never panics the worker on
/// protocol or socket errors — they are logged and end the session.
pub(crate) fn serve_connection(mut stream: TcpStream, shared: &Shared, id: u64) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut session = Session {
        shared,
        id,
        hello_done: false,
        client: String::new(),
        resume_declared: None,
        acked_batches: 0,
        pending: Vec::new(),
        epoch: 0,
    };
    let outcome = session.run(&mut stream);
    if !session.pending.is_empty() {
        match session.resume_declared {
            // A resumable upload that lost its connection mid-commit is
            // *parked* under the client's name: the chunks are already in
            // the store and counted toward `acked_batches`, so the
            // reconnecting client continues instead of re-sending (which
            // would double-ingest the observed stream).
            Some(commit_id) => {
                let parked = Parked {
                    pending: std::mem::take(&mut session.pending),
                    acked_batches: session.acked_batches,
                    commit_id,
                };
                shared.log(&format!(
                    "session {id}: parked {} chunks ({} batches) for {:?} commit {commit_id:#x}",
                    parked.pending.len(),
                    parked.acked_batches,
                    session.client,
                ));
                lock_unpoisoned(&shared.parked).insert(session.client.clone(), parked);
            }
            None => {
                let tail = Backup::from_chunks(
                    format!("session-{id}-uncommitted"),
                    std::mem::take(&mut session.pending),
                );
                lock_unpoisoned(&shared.tap).record_abandoned(tail);
            }
        }
    }
    match outcome {
        Ok(()) => shared.log(&format!("session {id}: closed")),
        Err(e) => shared.log(&format!("session {id}: error: {e}")),
    }
}

struct Session<'a> {
    shared: &'a Shared,
    id: u64,
    hello_done: bool,
    /// Client name from HELLO (the parked-upload key).
    client: String,
    /// The commit id declared by RESUME, if any: marks this session's
    /// uncommitted tail as resumable (parked on disconnect).
    resume_declared: Option<u64>,
    /// PUT batches fully ingested since the last commit.
    acked_batches: u32,
    /// Observed (pre-dedup) stream since the last commit.
    pending: Vec<ChunkRecord>,
    /// The store's key epoch when this session negotiated (refreshed
    /// when the session itself rekeys). Reads are refused with
    /// [`code::STALE_EPOCH`] once another session advances the epoch —
    /// the wire-level face of "old-key reads stop working after the
    /// rekey commits".
    epoch: u64,
}

impl Session<'_> {
    fn run(&mut self, stream: &mut TcpStream) -> Result<(), WireError> {
        loop {
            let payload = match read_frame(stream) {
                Ok(Some(payload)) => payload,
                Ok(None) => return Ok(()), // clean disconnect
                Err(WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Idle tick: drain on shutdown, else keep waiting.
                    if self.shared.stop.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    continue;
                }
                Err(e @ (WireError::BadCrc { .. } | WireError::Oversize { .. })) => {
                    // Torn / corrupt frame: report, then drop the
                    // connection (an oversize prefix desyncs the stream;
                    // a CRC failure means the peer's framing is not to
                    // be trusted either).
                    self.reply_err(stream, code::BAD_STATE, &e.to_string());
                    return Err(e);
                }
                Err(e) => return Err(e),
            };
            let msg = match Message::decode(&payload) {
                Ok(msg) => msg,
                Err(e) => {
                    // The frame was whole (CRC passed) so the stream is
                    // still aligned; reject the message and continue.
                    self.reply_err(stream, code::BAD_STATE, &e.to_string());
                    continue;
                }
            };
            if !self.hello_done && !matches!(msg, Message::Hello { .. }) {
                self.reply_err(stream, code::BAD_STATE, "HELLO required first");
                continue;
            }
            match msg {
                Message::Hello { version, client } => {
                    if version < MIN_WIRE_VERSION {
                        self.reply_err(stream, code::BAD_VERSION, "client version too old");
                        return Err(WireError::BadVersion(version));
                    }
                    let negotiated = version.min(WIRE_VERSION);
                    self.hello_done = true;
                    self.epoch = self.current_epoch();
                    self.shared.log(&format!(
                        "session {}: hello from {client:?} (v{negotiated})",
                        self.id
                    ));
                    self.client = client;
                    self.reply(
                        stream,
                        &Message::HelloAck {
                            version: negotiated,
                        },
                    )?;
                }
                Message::Resume { commit_id } => self.handle_resume(stream, commit_id)?,
                Message::PutChunkBatch {
                    seq,
                    chunks,
                    payloads,
                } => self.handle_put(stream, seq, chunks, payloads)?,
                Message::CommitManifest { label, commit_id } => {
                    self.handle_commit(stream, label, commit_id)?;
                }
                Message::GetChunk { fp } => self.handle_get(stream, Fingerprint(fp))?,
                Message::RestoreBackup { label } => self.handle_restore(stream, &label)?,
                Message::DeleteBackup { label, commit_id } => {
                    self.handle_delete(stream, label, commit_id)?;
                }
                Message::Gc {
                    threshold_permille,
                    commit_id,
                } => self.handle_gc(stream, threshold_permille, commit_id)?,
                Message::Rekey { secret, commit_id } => {
                    self.handle_rekey(stream, &secret, commit_id)?;
                }
                Message::StatsReq => {
                    let stats = self.shared.stats();
                    self.reply(stream, &Message::StatsResp(stats))?;
                }
                Message::Shutdown => {
                    self.shared
                        .log(&format!("session {}: shutdown requested", self.id));
                    self.reply(stream, &Message::ShutdownAck)?;
                    self.shared.stop.store(true, Ordering::SeqCst);
                    return Ok(());
                }
                // Server-only messages arriving at the server are a
                // client bug, not a transport failure.
                Message::HelloAck { .. }
                | Message::PutAck { .. }
                | Message::ResumeAck { .. }
                | Message::CommitAck { .. }
                | Message::ChunkResp { .. }
                | Message::RestoreHeader { .. }
                | Message::DeleteBackupAck { .. }
                | Message::GcAck { .. }
                | Message::RekeyAck { .. }
                | Message::StatsResp(_)
                | Message::ShutdownAck
                | Message::ErrorResp { .. } => {
                    self.reply_err(stream, code::BAD_STATE, "unexpected server-side message");
                }
            }
        }
    }

    /// Answers a RESUME: reports what the server already knows about the
    /// client's `commit_id` so the client can continue an interrupted
    /// upload without re-sending (and without the server double-tapping)
    /// anything already observed.
    fn handle_resume(&mut self, stream: &mut TcpStream, commit_id: u64) -> Result<(), WireError> {
        if commit_id == 0 {
            self.reply_err(
                stream,
                code::BAD_STATE,
                "RESUME requires a nonzero commit id",
            );
            return Ok(());
        }
        if self.client.is_empty() {
            self.reply_err(stream, code::BAD_STATE, "RESUME requires a named client");
            return Ok(());
        }
        if !self.pending.is_empty() {
            self.reply_err(stream, code::BAD_STATE, "RESUME must precede any PUT");
            return Ok(());
        }
        // Already applied? The commit finished before the client saw its
        // ack — replay the verdict; nothing to upload.
        let applied = lock_unpoisoned(&self.shared.tap)
            .applied(commit_id)
            .map(|a| a.chunks);
        if let Some(chunks) = applied {
            self.resume_declared = Some(commit_id);
            self.shared.log(&format!(
                "session {}: resume {commit_id:#x} -> committed ({chunks} chunks)",
                self.id
            ));
            return self.reply(
                stream,
                &Message::ResumeAck {
                    state: ResumeState::Committed,
                    acked_batches: 0,
                    chunks,
                },
            );
        }
        // Parked progress from a broken session? Adopt it if the commit
        // id matches; a different id means the client abandoned that
        // upload — its observed tail goes to the abandoned record.
        let parked = lock_unpoisoned(&self.shared.parked).remove(&self.client);
        let (state, acked, chunks) = match parked {
            Some(p) if p.commit_id == commit_id => {
                self.pending = p.pending;
                self.acked_batches = p.acked_batches;
                (
                    ResumeState::InProgress,
                    self.acked_batches,
                    self.pending.len() as u64,
                )
            }
            Some(p) => {
                let stale = Backup::from_chunks(
                    format!("{}-abandoned-{:#x}", self.client, p.commit_id),
                    p.pending,
                );
                lock_unpoisoned(&self.shared.tap).record_abandoned(stale);
                (ResumeState::Fresh, 0, 0)
            }
            None => (ResumeState::Fresh, 0, 0),
        };
        self.resume_declared = Some(commit_id);
        self.shared.log(&format!(
            "session {}: resume {commit_id:#x} -> {state:?} ({acked} batches, {chunks} chunks)",
            self.id
        ));
        self.reply(
            stream,
            &Message::ResumeAck {
                state,
                acked_batches: acked,
                chunks,
            },
        )
    }

    /// Commits the pending observed stream as one manifest. A nonzero
    /// `commit_id` makes the commit idempotent: if it was already
    /// applied, the recorded ack is replayed and nothing is re-ingested
    /// into the tap or the counters.
    fn handle_commit(
        &mut self,
        stream: &mut TcpStream,
        label: String,
        commit_id: u64,
    ) -> Result<(), WireError> {
        // The applied-check and the record happen under one tap lock so
        // two racing replays of the same commit id cannot both ingest.
        let mut tap = lock_unpoisoned(&self.shared.tap);
        let replay = (commit_id != 0)
            .then(|| tap.applied(commit_id).cloned())
            .flatten();
        if let Some(applied) = replay {
            drop(tap);
            // Exactly-once: this commit already happened (the ack was
            // lost in transit). Drop any re-uploaded pending tail — the
            // store deduplicated the chunks and the tap must not observe
            // the stream twice.
            self.pending.clear();
            self.acked_batches = 0;
            self.resume_declared = None;
            self.shared.log(&format!(
                "session {}: commit {commit_id:#x} replayed ({:?}, {} chunks)",
                self.id, applied.label, applied.chunks
            ));
            return self.reply(
                stream,
                &Message::CommitAck {
                    label: applied.label,
                    chunks: applied.chunks,
                },
            );
        }
        let records = std::mem::take(&mut self.pending);
        // Register the manifest with the engine's lifecycle layer (still
        // under the tap lock, so a racing replay of the same commit id
        // cannot double-register): the recipe and per-chunk refcounts are
        // what make the backup deletable and its containers
        // GC-accountable later. The commit counter doubles as a monotonic
        // logical timestamp for retention policies.
        {
            let mut slot = lock_unpoisoned(&self.shared.slot);
            let engine = slot.engine.as_mut().expect("engine open while serving");
            let backup_id = label_backup_id(&label);
            let timestamp = self.shared.commits.load(Ordering::SeqCst) + 1;
            match engine.commit_backup(backup_id, timestamp, &records) {
                Ok(()) => {}
                Err(LifecycleError::DuplicateBackup { .. }) => {
                    // Label reuse shadows the earlier manifest (tap
                    // lookup already prefers the latest): release the
                    // old recipe's references, then commit the new one
                    // under the same id.
                    let _ = engine.delete_backup(backup_id);
                    engine
                        .commit_backup(backup_id, timestamp, &records)
                        .expect("recommit after releasing the shadowed recipe");
                }
                Err(e) => panic!("backup registration failed: {e}"),
            }
        }
        let backup = Backup::from_chunks(label.clone(), records);
        let chunks = backup.len() as u64;
        tap.record_commit_id(backup, commit_id);
        drop(tap);
        self.acked_batches = 0;
        self.resume_declared = None;
        self.shared.commits.fetch_add(1, Ordering::SeqCst);
        self.shared.log(&format!(
            "session {}: commit {label:?} ({chunks} chunks)",
            self.id
        ));
        self.reply(stream, &Message::CommitAck { label, chunks })
    }

    /// Deletes a committed backup: the engine releases its chunk
    /// references (reclaimed later by GC) and the tap drops the manifest
    /// from the catalog — both under one tap lock so a racing replay of
    /// the same operation id cannot double-delete. The deletion itself
    /// becomes an adversary observable.
    fn handle_delete(
        &mut self,
        stream: &mut TcpStream,
        label: String,
        commit_id: u64,
    ) -> Result<(), WireError> {
        let mut tap = lock_unpoisoned(&self.shared.tap);
        if commit_id != 0 {
            if let Some(a) = tap.applied(commit_id).cloned() {
                drop(tap);
                self.shared.log(&format!(
                    "session {}: delete {commit_id:#x} replayed ({:?})",
                    self.id, a.label
                ));
                return self.reply(
                    stream,
                    &Message::DeleteBackupAck {
                        label: a.label,
                        chunks: a.chunks,
                        logical_bytes: a.extra,
                    },
                );
            }
        }
        let report = {
            let mut slot = lock_unpoisoned(&self.shared.slot);
            let engine = slot.engine.as_mut().expect("engine open while serving");
            engine.delete_backup(label_backup_id(&label))
        };
        let Ok(report) = report else {
            drop(tap);
            self.reply_err(
                stream,
                code::UNKNOWN_LABEL,
                &format!("no manifest {label:?}"),
            );
            return Ok(());
        };
        tap.delete_backup(&label);
        tap.record_applied(
            commit_id,
            AppliedCommit {
                label: label.clone(),
                chunks: report.chunks_released,
                extra: report.logical_bytes,
                extra2: 0,
            },
        );
        drop(tap);
        self.shared.log(&format!(
            "session {}: delete {label:?} ({} chunk refs, {} logical bytes)",
            self.id, report.chunks_released, report.logical_bytes
        ));
        self.reply(
            stream,
            &Message::DeleteBackupAck {
                label,
                chunks: report.chunks_released,
                logical_bytes: report.logical_bytes,
            },
        )
    }

    /// Runs a garbage-collection pass over every shard and records it as
    /// an adversary observable. Idempotent under a nonzero operation id
    /// (a replay returns the recorded ack without collecting again).
    fn handle_gc(
        &mut self,
        stream: &mut TcpStream,
        threshold_permille: u32,
        commit_id: u64,
    ) -> Result<(), WireError> {
        let mut tap = lock_unpoisoned(&self.shared.tap);
        if commit_id != 0 {
            if let Some(a) = tap.applied(commit_id).cloned() {
                drop(tap);
                self.shared
                    .log(&format!("session {}: gc {commit_id:#x} replayed", self.id));
                return self.reply(
                    stream,
                    &Message::GcAck {
                        containers_dropped: a.chunks,
                        reclaimed_bytes: a.extra,
                        moved_chunks: a.extra2,
                    },
                );
            }
        }
        let report = {
            let mut slot = lock_unpoisoned(&self.shared.slot);
            let engine = slot.engine.as_mut().expect("engine open while serving");
            engine.gc(threshold_permille)
        };
        tap.record_gc(report.containers_dropped, report.reclaimed_bytes);
        tap.record_applied(
            commit_id,
            AppliedCommit {
                label: String::new(),
                chunks: report.containers_dropped,
                extra: report.reclaimed_bytes,
                extra2: report.moved_chunks,
            },
        );
        drop(tap);
        self.shared.log(&format!(
            "session {}: gc dropped {} containers, reclaimed {} bytes, moved {} chunks",
            self.id, report.containers_dropped, report.reclaimed_bytes, report.moved_chunks
        ));
        self.reply(
            stream,
            &Message::GcAck {
                containers_dropped: report.containers_dropped,
                reclaimed_bytes: report.reclaimed_bytes,
                moved_chunks: report.moved_chunks,
            },
        )
    }

    /// REED-style rekeying: re-encrypts every stored container under the
    /// next key epoch derived from `secret`. The rekeying session stays
    /// current; every other open session's reads turn
    /// [`code::STALE_EPOCH`].
    fn handle_rekey(
        &mut self,
        stream: &mut TcpStream,
        secret: &[u8],
        commit_id: u64,
    ) -> Result<(), WireError> {
        if secret.is_empty() {
            self.reply_err(stream, code::BAD_STATE, "REKEY requires a nonempty secret");
            return Ok(());
        }
        let mut tap = lock_unpoisoned(&self.shared.tap);
        if commit_id != 0 {
            if let Some(a) = tap.applied(commit_id).cloned() {
                drop(tap);
                self.epoch = self.epoch.max(a.chunks);
                self.shared.log(&format!(
                    "session {}: rekey {commit_id:#x} replayed (epoch {})",
                    self.id, a.chunks
                ));
                return self.reply(
                    stream,
                    &Message::RekeyAck {
                        epoch: a.chunks,
                        containers_rewritten: a.extra,
                    },
                );
            }
        }
        let report = {
            let mut slot = lock_unpoisoned(&self.shared.slot);
            let engine = slot.engine.as_mut().expect("engine open while serving");
            engine.rekey(secret)
        };
        tap.record_rekey(report.epoch);
        tap.record_applied(
            commit_id,
            AppliedCommit {
                label: String::new(),
                chunks: report.epoch,
                extra: report.containers_rewritten,
                extra2: 0,
            },
        );
        drop(tap);
        self.epoch = self.epoch.max(report.epoch);
        self.shared.log(&format!(
            "session {}: rekey to epoch {} ({} containers rewritten)",
            self.id, report.epoch, report.containers_rewritten
        ));
        self.reply(
            stream,
            &Message::RekeyAck {
                epoch: report.epoch,
                containers_rewritten: report.containers_rewritten,
            },
        )
    }

    /// Ingests one batch: dedup through the sharded engine *and* append
    /// to the session's observed stream (the tap sees the logical
    /// pre-dedup order, exactly the paper's adversary).
    fn handle_put(
        &mut self,
        stream: &mut TcpStream,
        seq: u32,
        chunks: Vec<ChunkRecord>,
        payloads: Option<Vec<Vec<u8>>>,
    ) -> Result<(), WireError> {
        if let Some(p) = &payloads {
            if p.len() != chunks.len()
                || p.iter()
                    .zip(&chunks)
                    .any(|(bytes, rec)| bytes.len() != rec.size as usize)
            {
                self.reply_err(
                    stream,
                    code::BAD_BATCH,
                    "payload sizes disagree with records",
                );
                return Ok(());
            }
        }
        let has_payloads = payloads.is_some();
        let (unique, duplicate) = {
            let mut slot = lock_unpoisoned(&self.shared.slot);
            match slot.payload_mode {
                None => slot.payload_mode = Some(has_payloads),
                Some(mode) if mode != has_payloads => {
                    drop(slot);
                    self.reply_err(
                        stream,
                        code::MIXED_MODE,
                        "service already committed to the other payload mode",
                    );
                    return Ok(());
                }
                Some(_) => {}
            }
            let engine = slot.engine.as_mut().expect("engine open while serving");
            let mut unique = 0u32;
            let mut duplicate = 0u32;
            for (i, &rec) in chunks.iter().enumerate() {
                let outcome = match &payloads {
                    Some(p) => engine.process_with_payload(rec, &p[i]),
                    None => engine.process(rec),
                };
                if outcome.is_duplicate() {
                    duplicate += 1;
                } else {
                    unique += 1;
                }
            }
            (unique, duplicate)
        };
        self.pending.extend(chunks);
        // Counted as ingested *before* the ack write: if the ack is lost
        // to a disconnect, RESUME still reports the batch as done and the
        // client skips it (the tap must not observe it twice).
        self.acked_batches = self.acked_batches.wrapping_add(1);
        self.reply(
            stream,
            &Message::PutAck {
                seq,
                unique,
                duplicate,
            },
        )
    }

    /// Streams a committed backup back: header, then one chunk frame per
    /// record in logical order. Refused once the store's key epoch moved
    /// past the one this session negotiated.
    fn handle_restore(&mut self, stream: &mut TcpStream, label: &str) -> Result<(), WireError> {
        if self.check_stale_epoch(stream) {
            return Ok(());
        }
        let records: Option<Vec<ChunkRecord>> = {
            let tap = lock_unpoisoned(&self.shared.tap);
            tap.backup(label).map(|b| b.chunks.clone())
        };
        let Some(records) = records else {
            self.reply_err(
                stream,
                code::UNKNOWN_LABEL,
                &format!("no manifest {label:?}"),
            );
            return Ok(());
        };
        self.reply(
            stream,
            &Message::RestoreHeader {
                label: label.to_string(),
                count: records.len() as u64,
            },
        )?;
        // Stream in bounded batches: each batch's responses (payload
        // clones included) are materialized under one short engine lock,
        // then written with the lock released — a multi-GB restore never
        // buffers the whole backup in memory nor starves other sessions
        // of the engine for its full duration.
        const RESTORE_BATCH: usize = 1024;
        for batch in records.chunks(RESTORE_BATCH) {
            let responses: Vec<Message> = {
                let slot = lock_unpoisoned(&self.shared.slot);
                let engine = slot.engine.as_ref().expect("engine open while serving");
                batch
                    .iter()
                    .map(|rec| chunk_resp(engine, rec.fp, rec.size))
                    .collect()
            };
            for resp in &responses {
                self.reply(stream, resp)?;
            }
        }
        Ok(())
    }

    /// Serves GET-CHUNK, refused like restores once the session's key
    /// epoch is stale.
    fn handle_get(&mut self, stream: &mut TcpStream, fp: Fingerprint) -> Result<(), WireError> {
        if self.check_stale_epoch(stream) {
            return Ok(());
        }
        let resp = {
            let slot = lock_unpoisoned(&self.shared.slot);
            let engine = slot.engine.as_ref().expect("engine open while serving");
            chunk_resp(engine, fp, 0)
        };
        self.reply(stream, &resp)
    }

    /// The store's current key epoch (max across shards).
    fn current_epoch(&self) -> u64 {
        let slot = lock_unpoisoned(&self.shared.slot);
        slot.engine
            .as_ref()
            .map_or(0, freqdedup_store::sharded::ShardedDedupEngine::epoch)
    }

    /// Replies [`code::STALE_EPOCH`] (returning `true`) when the store
    /// was rekeyed after this session negotiated — the session's view of
    /// the at-rest keys is obsolete; it must reconnect to read again.
    fn check_stale_epoch(&mut self, stream: &mut TcpStream) -> bool {
        let current = self.current_epoch();
        if current == self.epoch {
            return false;
        }
        self.reply_err(
            stream,
            code::STALE_EPOCH,
            &format!(
                "store rekeyed to epoch {current} after this session negotiated epoch {}; reconnect",
                self.epoch
            ),
        );
        true
    }

    fn reply(&self, stream: &mut TcpStream, msg: &Message) -> Result<(), WireError> {
        write_frame(stream, &msg.encode())
    }

    fn reply_err(&self, stream: &mut TcpStream, code: u16, message: &str) {
        self.shared
            .log(&format!("session {}: error {code}: {message}", self.id));
        let _ = write_frame(
            stream,
            &Message::ErrorResp {
                code,
                message: message.to_string(),
            }
            .encode(),
        );
    }
}

/// The engine-side backup id of a manifest label: a 64-bit FNV-1a hash,
/// stable across sessions and restarts so DELETE-BACKUP can address a
/// manifest committed in an earlier server run without a separate
/// label→id catalog.
pub(crate) fn label_backup_id(label: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in label.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds the [`Message::ChunkResp`] for a fingerprint, distinguishing
/// payload-bearing, metadata-only, and missing chunks. `known_size`
/// carries the manifest's size for metadata-only stores (the engine does
/// not retain per-chunk sizes without payloads).
fn chunk_resp(
    engine: &freqdedup_store::sharded::ShardedDedupEngine,
    fp: Fingerprint,
    known_size: u32,
) -> Message {
    match engine.read_chunk(fp) {
        Some(bytes) => Message::ChunkResp {
            fp: fp.value(),
            status: ChunkStatus::Payload,
            size: bytes.len() as u32,
            payload: bytes.to_vec(),
        },
        None if engine.contains(fp) => Message::ChunkResp {
            fp: fp.value(),
            status: ChunkStatus::Metadata,
            size: known_size,
            payload: Vec::new(),
        },
        None => Message::ChunkResp {
            fp: fp.value(),
            status: ChunkStatus::Missing,
            size: 0,
            payload: Vec::new(),
        },
    }
}
