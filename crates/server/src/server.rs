//! The encrypted-dedup TCP service.
//!
//! One [`ShardedDedupEngine`] (optionally durable via the PR 4
//! persistence layer) serves N concurrent client sessions:
//!
//! * the **acceptor** polls a non-blocking [`TcpListener`] and feeds
//!   accepted connections into a [`JobQueue`];
//! * `workers` **session workers** drain the queue, each running the
//!   [`crate::session`] state machine for one connection at a time;
//! * all of them are scoped threads under
//!   [`crate::pool::run_bounded`] — no detached threads, panics
//!   propagate, and [`Server::run`] returns only after a full drain.
//!
//! **Graceful shutdown** (SHUTDOWN message, or [`ShutdownHandle`]): the
//! acceptor stops accepting, in-flight sessions finish their current
//! requests and disconnect, queued connections are still served, and the
//! engine is then checkpointed and closed — sealed containers, manifest
//! journal and snapshot are made durable, so a restart *never* relies on
//! crash recovery. The adversary tap doubles as the manifest catalog and
//! is persisted beside the store (`tap.fqdt`), which is what lets
//! clients resume committed work after a restart.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use freqdedup_store::container::PayloadMode;
use freqdedup_store::engine::DedupConfig;
use freqdedup_store::persist::PersistError;
use freqdedup_store::sharded::ShardedDedupEngine;
use freqdedup_trace::io::TraceIoError;
use freqdedup_trace::ChunkRecord;

use crate::pool::{self, JobQueue};
use crate::proto::ServerStats;
use crate::session;
use crate::tap::AdversaryTap;

/// File name of the persisted tap / manifest catalog inside the store
/// directory.
pub const TAP_FILE: &str = "tap.fqdt";

/// File name of the persisted incremental attack state, beside
/// [`TAP_FILE`]. When present at bind time, the tap resumes its running
/// inference state bit-identically without replaying the catalog.
pub const STREAM_FILE: &str = "tap.fqis";

/// File name of the persisted applied-commit registry (exactly-once
/// replay suppression), beside [`TAP_FILE`].
pub const CIDS_FILE: &str = "tap.cids";

/// Locks a mutex, tolerating poison: session workers survive handler
/// panics ([`crate::pool`] catches them), so a mutex poisoned by a dying
/// handler must not cascade into every other session. The protected state
/// is safe to reuse — sessions never leave it partially updated across an
/// unwind point (the engine's own ingest path is panic-fail-stop at a
/// lower layer).
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Upload progress parked for a disconnected resumable session, keyed by
/// client name: a client that declared a commit id (RESUME) and then lost
/// its connection mid-upload can reconnect and continue from
/// `acked_batches` instead of restarting — and, crucially, instead of
/// double-ingesting what the server already observed.
#[derive(Debug)]
pub(crate) struct Parked {
    /// Observed (pre-dedup) stream so far toward the commit.
    pub pending: Vec<ChunkRecord>,
    /// PUT batches fully ingested toward the commit.
    pub acked_batches: u32,
    /// The commit id the client declared for this upload.
    pub commit_id: u64,
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address. Defaults to `127.0.0.1:0` (loopback, ephemeral
    /// port) — the CI-safe configuration; nothing in this workspace ever
    /// listens beyond loopback by default.
    pub addr: String,
    /// Concurrent session workers (bounded pool size).
    pub workers: usize,
    /// Fingerprint-prefix shards of the backing engine.
    pub shards: usize,
    /// Engine configuration; set [`DedupConfig::persist`] to make the
    /// service durable (the tap is then persisted alongside as
    /// [`TAP_FILE`]).
    pub engine: DedupConfig,
    /// Append-only service log (one line per event); `None` disables.
    pub log_file: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            shards: 4,
            engine: DedupConfig::default(),
            log_file: None,
        }
    }
}

/// Errors surfaced by [`Server::bind`] / [`Server::run`].
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The backing store failed to open, checkpoint or close.
    Persist(PersistError),
    /// The persisted tap failed to load or save.
    Tap(TraceIoError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Persist(e) => write!(f, "store error: {e}"),
            ServeError::Tap(e) => write!(f, "tap error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

impl From<TraceIoError> for ServeError {
    fn from(e: TraceIoError) -> Self {
        ServeError::Tap(e)
    }
}

/// The engine slot sessions share: the engine itself plus the service's
/// payload-mode commitment (all-payload or all-metadata, decided by the
/// first PUT and enforced thereafter — also across restarts).
#[derive(Debug)]
pub(crate) struct EngineSlot {
    pub engine: Option<ShardedDedupEngine>,
    pub payload_mode: Option<bool>,
}

/// State shared between the acceptor, the session workers and
/// [`ShutdownHandle`]s.
#[derive(Debug)]
pub(crate) struct Shared {
    pub slot: Mutex<EngineSlot>,
    pub tap: Mutex<AdversaryTap>,
    /// Parked upload progress of disconnected resumable sessions.
    pub parked: Mutex<HashMap<String, Parked>>,
    pub stop: AtomicBool,
    pub sessions_served: AtomicU64,
    pub commits: AtomicU64,
    /// Degraded-but-serving events: corrupt tap state recovered by
    /// replay, tap persistence skipped at shutdown, a session worker
    /// surviving a handler panic.
    pub tap_warnings: AtomicU64,
    log: Option<Mutex<std::fs::File>>,
}

impl Shared {
    /// Appends one line to the service log (best-effort).
    pub fn log(&self, line: &str) {
        if let Some(file) = &self.log {
            use std::io::Write;
            let ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_millis());
            let mut file = lock_unpoisoned(file);
            let _ = writeln!(file, "[{ms}] {line}");
        }
    }

    /// Aggregate service counters (engine stats + session/commit totals).
    pub fn stats(&self) -> ServerStats {
        let slot = lock_unpoisoned(&self.slot);
        let s = slot
            .engine
            .as_ref()
            .map(ShardedDedupEngine::stats)
            .unwrap_or_default();
        ServerStats {
            logical_chunks: s.logical_chunks,
            logical_bytes: s.logical_bytes,
            unique_chunks: s.unique_chunks,
            unique_bytes: s.unique_bytes,
            dup_cache_hits: s.dup_cache_hits,
            dup_buffer_hits: s.dup_buffer_hits,
            dup_index_hits: s.dup_index_hits,
            containers_sealed: s.containers_sealed,
            committed_backups: self.commits.load(Ordering::SeqCst),
            sessions_served: self.sessions_served.load(Ordering::SeqCst),
            tap_warnings: self.tap_warnings.load(Ordering::SeqCst),
        }
    }
}

/// What one completed service run did (returned by [`Server::run`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Sessions served over the lifetime of the run.
    pub sessions: u64,
    /// Backup manifests committed.
    pub commits: u64,
    /// Final aggregate counters (taken just before the engine closed).
    pub stats: ServerStats,
}

/// Requests a graceful stop of a running [`Server`] from another thread
/// (the protocol-level SHUTDOWN message does the same thing).
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Signals the server to drain and stop.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }
}

/// A bound (not yet running) encrypted-dedup service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
    tap_path: Option<PathBuf>,
    stream_path: Option<PathBuf>,
    cids_path: Option<PathBuf>,
}

/// A read handle on a running server's adversary tap, for observing the
/// live attack state (catalog + running inference) from another thread —
/// e.g. to snapshot mid-stream inference between commits.
#[derive(Clone, Debug)]
pub struct TapView {
    shared: Arc<Shared>,
}

impl TapView {
    /// Runs `f` under the tap lock and returns its result. Keep `f`
    /// short: commits block on the same lock.
    pub fn with_tap<R>(&self, f: impl FnOnce(&AdversaryTap) -> R) -> R {
        let tap = lock_unpoisoned(&self.shared.tap);
        f(&tap)
    }
}

impl Server {
    /// Opens (or recovers) the backing engine and tap, and binds the
    /// listen socket.
    ///
    /// # Errors
    ///
    /// [`ServeError::Persist`] when the store directory fails to open or
    /// recover, [`ServeError::Tap`] when a persisted tap is corrupt,
    /// [`ServeError::Io`] when the socket cannot be bound.
    pub fn bind(config: ServerConfig) -> Result<Server, ServeError> {
        let engine = ShardedDedupEngine::open(config.engine.clone(), config.shards)?;
        // Re-derive the payload-mode commitment from recovered containers
        // so a restarted service keeps rejecting mixed-mode uploads.
        let payload_mode = engine
            .shards()
            .iter()
            .find_map(|shard| shard.containers().mode())
            .map(|mode| mode == PayloadMode::Payload);
        let tap_path = config.engine.persist.as_ref().map(|p| p.dir.join(TAP_FILE));
        let stream_path = config
            .engine
            .persist
            .as_ref()
            .map(|p| p.dir.join(STREAM_FILE));
        let cids_path = config
            .engine
            .persist
            .as_ref()
            .map(|p| p.dir.join(CIDS_FILE));
        let mut tap = match (&tap_path, &stream_path) {
            // Resume path: catalog, plus the persisted incremental state
            // when it is present and intact — a corrupt or missing state
            // file falls back to a catalog replay inside `load_resuming`
            // (counted in `AdversaryTap::warnings`), never an error.
            (Some(path), Some(stream)) if path.exists() => {
                AdversaryTap::load_resuming(path, stream)?
            }
            _ => AdversaryTap::new(),
        };
        let mut warnings = tap.warnings();
        let mut degraded: Vec<String> = Vec::new();
        if warnings > 0 {
            degraded.push("incremental state replayed from catalog".into());
        }
        if let Some(cids) = cids_path.as_ref().filter(|p| p.exists()) {
            // The registry only suppresses commit replays; a corrupt file
            // degrades to "no suppression window" rather than failing the
            // bind.
            if let Err(e) = tap.load_commit_ids(cids) {
                warnings += 1;
                degraded.push(format!("commit registry unreadable ({e})"));
            }
        }
        let commits = tap.len() as u64;
        let log = match &config.log_file {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            slot: Mutex::new(EngineSlot {
                engine: Some(engine),
                payload_mode,
            }),
            tap: Mutex::new(tap),
            parked: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            sessions_served: AtomicU64::new(0),
            commits: AtomicU64::new(commits),
            tap_warnings: AtomicU64::new(warnings),
            log,
        });
        shared.log(&format!(
            "serve: bound {} ({} workers, {} shards, {} recovered manifests)",
            listener.local_addr()?,
            config.workers.max(1),
            config.shards,
            commits
        ));
        for what in &degraded {
            shared.log(&format!("serve: degraded recovery: {what}"));
        }
        Ok(Server {
            listener,
            shared,
            workers: config.workers.max(1),
            tap_path,
            stream_path,
            cids_path,
        })
    }

    /// The bound listen address (use after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A read handle on the adversary tap, valid while (and after) the
    /// server runs.
    #[must_use]
    pub fn tap_handle(&self) -> TapView {
        TapView {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until SHUTDOWN (or a [`ShutdownHandle`]), then drains
    /// in-flight sessions, checkpoints and closes the engine, and
    /// persists the tap. Blocks the calling thread for the lifetime of
    /// the service.
    ///
    /// # Errors
    ///
    /// [`ServeError::Persist`] / [`ServeError::Tap`] when the final
    /// checkpoint fails — the serve loop itself only logs per-session
    /// errors.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any session worker (scoped-pool
    /// contract).
    pub fn run(self) -> Result<ServeSummary, ServeError> {
        let shared = &self.shared;
        let queue: JobQueue<TcpStream> = JobQueue::new();
        let worker_panics = pool::run_bounded(
            &queue,
            self.workers,
            || {
                while !shared.stop.load(Ordering::SeqCst) {
                    match self.listener.accept() {
                        Ok((stream, peer)) => {
                            let _ = stream.set_nodelay(true);
                            shared.log(&format!("accept: {peer} (backlog {})", queue.backlog()));
                            queue.push(stream);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(e) => {
                            shared.log(&format!("accept error: {e}"));
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            },
            |stream| {
                let id = shared.sessions_served.fetch_add(1, Ordering::SeqCst) + 1;
                session::serve_connection(stream, shared, id);
            },
        );
        if worker_panics > 0 {
            shared
                .tap_warnings
                .fetch_add(worker_panics, Ordering::SeqCst);
            shared.log(&format!(
                "serve: {worker_panics} session(s) ended in a caught handler panic"
            ));
        }

        // Drained: every accepted session has finished. Take the final
        // numbers, then checkpoint + close (graceful shutdown makes the
        // final state durable so a restart never needs crash recovery).
        let stats = shared.stats();
        let summary = ServeSummary {
            sessions: shared.sessions_served.load(Ordering::SeqCst),
            commits: shared.commits.load(Ordering::SeqCst),
            stats,
        };
        // Every final write must be *attempted* regardless of the others
        // failing: a tap-save error must never skip the engine close
        // (that would drop acknowledged chunk data un-checkpointed and
        // silently fall back to crash recovery). Only a **catalog** save
        // failure is an error — the catalog cannot be rebuilt. The
        // incremental state and the commit registry degrade instead:
        // their stale on-disk copies are removed so the next open
        // replays the catalog rather than resuming from a file that no
        // longer matches it.
        let tap_result = match &self.tap_path {
            Some(path) => {
                let tap = lock_unpoisoned(&shared.tap);
                let catalog = tap.save(path).map_err(|e| {
                    shared.log(&format!("shutdown: tap save failed: {e}"));
                    ServeError::from(e)
                });
                if let Some(stream) = &self.stream_path {
                    if let Err(e) = tap.streaming().save(stream) {
                        shared.tap_warnings.fetch_add(1, Ordering::SeqCst);
                        shared.log(&format!(
                            "shutdown: streaming state save failed ({e}); next open replays the catalog"
                        ));
                        let _ = std::fs::remove_file(stream);
                    }
                }
                if let Some(cids) = &self.cids_path {
                    if let Err(e) = tap.save_commit_ids(cids) {
                        shared.tap_warnings.fetch_add(1, Ordering::SeqCst);
                        shared.log(&format!(
                            "shutdown: commit registry save failed ({e}); replay suppression lost"
                        ));
                        let _ = std::fs::remove_file(cids);
                    }
                }
                catalog
            }
            None => Ok(()),
        };
        let engine = lock_unpoisoned(&shared.slot)
            .engine
            .take()
            .expect("engine present until run() ends");
        engine.close()?;
        tap_result?;
        shared.log(&format!(
            "shutdown: {} sessions, {} commits, {} unique chunks",
            summary.sessions, summary.commits, summary.stats.unique_chunks
        ));
        Ok(summary)
    }
}
