//! Fixed-size chunking (the VM dataset uses 4 KB fixed-size chunks, §5.1).

use std::ops::Range;

use crate::ParamError;

/// A fixed-size chunker behind the [`crate::Chunker`] trait: every chunk
/// is exactly `size` bytes except a trailing partial.
///
/// # Example
///
/// ```
/// use freqdedup_chunking::{fixed::FixedChunker, Chunker};
///
/// let chunker = FixedChunker::new(4).unwrap();
/// assert_eq!(chunker.spans(&[0u8; 10]), vec![0..4, 4..8, 8..10]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedChunker {
    size: usize,
}

impl FixedChunker {
    /// Creates a chunker with the given chunk size.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::ZeroMin`] when `size` is zero.
    pub fn new(size: usize) -> Result<Self, ParamError> {
        if size == 0 {
            return Err(ParamError::ZeroMin);
        }
        Ok(FixedChunker { size })
    }

    /// The fixed chunk size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }
}

impl crate::Chunker for FixedChunker {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn max_size(&self) -> usize {
        self.size
    }

    fn next_cut(&self, data: &[u8], from: usize) -> Option<usize> {
        (data.len() - from >= self.size).then(|| from + self.size)
    }
}

/// Computes fixed-size chunk boundaries; the last chunk may be shorter.
///
/// # Panics
///
/// Panics if `chunk_size` is zero.
///
/// # Example
///
/// ```
/// let spans = freqdedup_chunking::fixed::chunk_spans(10, 4);
/// assert_eq!(spans, vec![0..4, 4..8, 8..10]);
/// ```
#[must_use]
pub fn chunk_spans(data_len: usize, chunk_size: usize) -> Vec<Range<usize>> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let mut spans = Vec::with_capacity(data_len.div_ceil(chunk_size));
    let mut pos = 0;
    while pos < data_len {
        let end = (pos + chunk_size).min(data_len);
        spans.push(pos..end);
        pos = end;
    }
    spans
}

/// Iterates over fixed-size chunk slices of `data`.
pub fn chunks(data: &[u8], chunk_size: usize) -> impl Iterator<Item = &[u8]> {
    assert!(chunk_size > 0, "chunk size must be positive");
    data.chunks(chunk_size)
}

/// Returns `true` when a chunk consists entirely of zero bytes. The VM
/// dataset preprocessing removes zero-filled chunks, which dominate in VM
/// disk images (§5.1, citing Jin & Miller).
#[must_use]
pub fn is_zero_chunk(chunk: &[u8]) -> bool {
    chunk.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        assert_eq!(chunk_spans(8, 4), vec![0..4, 4..8]);
    }

    #[test]
    fn remainder_chunk() {
        assert_eq!(chunk_spans(9, 4), vec![0..4, 4..8, 8..9]);
    }

    #[test]
    fn empty_input() {
        assert!(chunk_spans(0, 4096).is_empty());
    }

    #[test]
    fn chunks_iterator_agrees() {
        let data = [1u8, 2, 3, 4, 5, 6, 7];
        let lens: Vec<usize> = chunks(&data, 3).map(<[u8]>::len).collect();
        assert_eq!(lens, vec![3, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_rejected() {
        let _ = chunk_spans(10, 0);
    }

    #[test]
    fn fixed_chunker_matches_chunk_spans() {
        use crate::Chunker;
        let chunker = FixedChunker::new(4).unwrap();
        for len in [0usize, 1, 3, 4, 5, 8, 9, 100] {
            let data = vec![0xaau8; len];
            assert_eq!(chunker.spans(&data), chunk_spans(len, 4), "len {len}");
        }
        assert_eq!(FixedChunker::new(0), Err(crate::ParamError::ZeroMin));
    }

    #[test]
    fn zero_chunk_detection() {
        assert!(is_zero_chunk(&[0u8; 4096]));
        assert!(is_zero_chunk(&[]));
        assert!(!is_zero_chunk(&[0, 0, 1, 0]));
    }
}
