//! Content-defined chunking (CDC) with Rabin fingerprints.
//!
//! Chunk boundaries are placed where the rolling hash of a byte window
//! matches a content pattern, so boundaries are robust against byte shifts
//! (§2.1). Minimum, average and maximum chunk sizes are configurable, as in
//! the paper ("we can configure the minimum, average, and maximum chunk sizes
//! in content-defined chunking").
//!
//! This is the classic byte-at-a-time baseline; the gear-hash
//! [FastCDC](crate::fastcdc) engine implements the same [`crate::Chunker`]
//! contract several times faster.

use std::ops::Range;

use crate::rabin::{RabinHasher, DEFAULT_POLY, DEFAULT_WINDOW};
use crate::ParamError;

/// Parameters of the Rabin content-defined chunker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CdcParams {
    /// Minimum chunk size in bytes (no boundary test before this point).
    pub min_size: usize,
    /// Average (expected) chunk size in bytes; rounded up to a power of two
    /// for the boundary mask.
    pub avg_size: usize,
    /// Maximum chunk size in bytes (forced boundary).
    pub max_size: usize,
    /// Rabin polynomial.
    pub poly: u64,
    /// Rolling window size in bytes.
    pub window: usize,
}

impl CdcParams {
    /// Standard parameters for a given average chunk size: minimum is
    /// `avg/4`, maximum is `avg*4` (the common 1:4 spread used by backup
    /// systems), default polynomial and window.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::AvgTooSmall`] when `avg_size < 64`.
    pub fn with_avg_size(avg_size: usize) -> Result<Self, ParamError> {
        if avg_size < 64 {
            return Err(ParamError::AvgTooSmall {
                avg_size,
                floor: 64,
            });
        }
        let params = CdcParams {
            min_size: avg_size / 4,
            avg_size,
            max_size: avg_size.saturating_mul(4),
            poly: DEFAULT_POLY,
            window: DEFAULT_WINDOW,
        };
        params.validate()?;
        Ok(params)
    }

    /// The paper's FSL/synthetic configuration: 8 KB average chunks.
    #[must_use]
    pub fn paper_8kb() -> Self {
        Self::with_avg_size(8 * 1024).expect("paper parameters are valid")
    }

    /// Validates the parameter combination.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed [`ParamError`].
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.min_size == 0 {
            return Err(ParamError::ZeroMin);
        }
        if self.min_size > self.avg_size {
            return Err(ParamError::MinAboveAvg {
                min_size: self.min_size,
                avg_size: self.avg_size,
            });
        }
        if self.avg_size > self.max_size {
            return Err(ParamError::AvgAboveMax {
                avg_size: self.avg_size,
                max_size: self.max_size,
            });
        }
        if self.window == 0 {
            return Err(ParamError::ZeroWindow);
        }
        Ok(())
    }

    /// The boundary mask: with `mask = 2^k - 1` where `2^k` is the expected
    /// gap beyond the minimum size, `hash & mask == mask` fires with
    /// probability `2^-k` per byte.
    fn mask(&self) -> u64 {
        let gap = (self.avg_size.saturating_sub(self.min_size)).max(1);
        let bits = 64 - (gap as u64).leading_zeros();
        let bits = if gap.is_power_of_two() {
            bits - 1
        } else {
            bits
        };
        (1u64 << bits) - 1
    }

    /// The boundary scan shared by [`crate::Chunker::cuts`] and
    /// [`crate::Chunker::next_cut`]: slides `hasher` over `data[from..]`
    /// and returns the end of the chunk starting at `from`.
    fn scan(&self, hasher: &mut RabinHasher, mask: u64, data: &[u8], from: usize) -> Option<usize> {
        let max_end = data.len().min(from.saturating_add(self.max_size));
        for (k, &byte) in data[from..max_end].iter().enumerate() {
            let fp = hasher.slide(byte);
            if k + 1 >= self.min_size && (fp & mask) == mask {
                return Some(from + k + 1);
            }
        }
        if max_end == from + self.max_size {
            Some(max_end)
        } else {
            None
        }
    }
}

impl Default for CdcParams {
    fn default() -> Self {
        Self::paper_8kb()
    }
}

impl crate::Chunker for CdcParams {
    fn name(&self) -> &'static str {
        "rabin-cdc"
    }

    fn max_size(&self) -> usize {
        self.max_size
    }

    /// One-off boundary search. Builds a fresh [`RabinHasher`] per call —
    /// fine for seam re-chunking in [`crate::par`]; use
    /// [`crate::Chunker::cuts`] for whole buffers (single hasher, reset at
    /// each cut).
    fn next_cut(&self, data: &[u8], from: usize) -> Option<usize> {
        let mut hasher = RabinHasher::new(self.poly, self.window);
        self.scan(&mut hasher, self.mask(), data, from)
    }

    fn cuts(&self, data: &[u8]) -> Vec<usize> {
        let mask = self.mask();
        let mut hasher = RabinHasher::new(self.poly, self.window);
        let mut cuts = Vec::with_capacity(data.len() / self.max_size.max(1) + 1);
        let mut pos = 0usize;
        while let Some(cut) = self.scan(&mut hasher, mask, data, pos) {
            cuts.push(cut);
            pos = cut;
            hasher.reset();
        }
        cuts
    }
}

/// Computes the chunk boundaries of `data` as byte ranges.
///
/// Every byte of `data` is covered exactly once, in order; the final chunk
/// may be shorter than `min_size`.
///
/// # Panics
///
/// Panics if `params` fail [`CdcParams::validate`].
#[must_use]
pub fn chunk_spans(data: &[u8], params: &CdcParams) -> Vec<Range<usize>> {
    params.validate().expect("invalid CDC parameters");
    crate::Chunker::spans(params, data)
}

/// An iterator over the chunk slices of a buffer.
///
/// # Example
///
/// ```
/// use freqdedup_chunking::cdc::{CdcChunker, CdcParams};
///
/// let data = vec![0xabu8; 32 * 1024];
/// let params = CdcParams::with_avg_size(1024).unwrap();
/// let total: usize = CdcChunker::new(&data, &params).map(<[u8]>::len).sum();
/// assert_eq!(total, data.len());
/// ```
#[derive(Debug)]
pub struct CdcChunker<'a> {
    data: &'a [u8],
    spans: std::vec::IntoIter<Range<usize>>,
}

impl<'a> CdcChunker<'a> {
    /// Creates a chunker over `data`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`CdcParams::validate`].
    #[must_use]
    pub fn new(data: &'a [u8], params: &CdcParams) -> Self {
        CdcChunker {
            data,
            spans: chunk_spans(data, params).into_iter(),
        }
    }
}

impl<'a> Iterator for CdcChunker<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<Self::Item> {
        self.spans.next().map(|span| &self.data[span])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.spans.size_hint()
    }
}

impl ExactSizeIterator for CdcChunker<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Chunker;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn spans_cover_input_exactly() {
        let data = pseudo_random(200_000, 7);
        let params = CdcParams::with_avg_size(4096).unwrap();
        let spans = chunk_spans(&data, &params);
        let mut pos = 0;
        for span in &spans {
            assert_eq!(span.start, pos);
            assert!(span.end > span.start);
            pos = span.end;
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn size_bounds_respected() {
        let data = pseudo_random(500_000, 13);
        let params = CdcParams::with_avg_size(4096).unwrap();
        let spans = chunk_spans(&data, &params);
        for (i, span) in spans.iter().enumerate() {
            let len = span.end - span.start;
            assert!(len <= params.max_size, "chunk {i} len {len}");
            if i + 1 < spans.len() {
                assert!(len >= params.min_size, "chunk {i} len {len}");
            }
        }
    }

    #[test]
    fn average_size_in_ballpark() {
        let data = pseudo_random(4_000_000, 99);
        let params = CdcParams::with_avg_size(4096).unwrap();
        let spans = chunk_spans(&data, &params);
        let avg = data.len() as f64 / spans.len() as f64;
        // Expected mean ≈ min + gap (geometric), clipped by max. Accept a
        // generous band around the nominal average.
        assert!(
            (2048.0..8192.0).contains(&avg),
            "observed average chunk size {avg}"
        );
    }

    #[test]
    fn deterministic() {
        let data = pseudo_random(100_000, 3);
        let params = CdcParams::default();
        assert_eq!(chunk_spans(&data, &params), chunk_spans(&data, &params));
    }

    #[test]
    fn content_shift_resynchronizes() {
        // Insert a byte at the front; interior boundaries must realign after
        // at most a few chunks (the whole point of CDC, §2.1).
        let data = pseudo_random(400_000, 21);
        let params = CdcParams::with_avg_size(2048).unwrap();
        let spans_a = chunk_spans(&data, &params);
        let mut shifted = vec![0x55u8];
        shifted.extend_from_slice(&data);
        let spans_b = chunk_spans(&shifted, &params);

        // Compare boundary positions in original coordinates.
        let ends_a: std::collections::HashSet<usize> = spans_a.iter().map(|s| s.end).collect();
        let realigned = spans_b
            .iter()
            .map(|s| s.end.wrapping_sub(1))
            .filter(|e| ends_a.contains(e))
            .count();
        assert!(
            realigned * 2 > spans_a.len(),
            "only {realigned} of {} boundaries realigned after shift",
            spans_a.len()
        );
    }

    #[test]
    fn empty_input_no_chunks() {
        assert!(chunk_spans(&[], &CdcParams::default()).is_empty());
    }

    #[test]
    fn tiny_input_single_chunk() {
        let spans = chunk_spans(b"tiny", &CdcParams::default());
        assert_eq!(spans, vec![0..4]);
    }

    #[test]
    fn constant_data_cut_at_max() {
        // All-zero data never matches the mask (hash of zero window is 0 and
        // mask != 0), so every chunk is exactly max_size.
        let data = vec![0u8; 100_000];
        let params = CdcParams::with_avg_size(1024).unwrap();
        let spans = chunk_spans(&data, &params);
        for span in &spans[..spans.len() - 1] {
            assert_eq!(span.end - span.start, params.max_size);
        }
    }

    #[test]
    fn chunker_iterator_matches_spans() {
        let data = pseudo_random(50_000, 5);
        let params = CdcParams::with_avg_size(1024).unwrap();
        let via_iter: Vec<usize> = CdcChunker::new(&data, &params).map(<[u8]>::len).collect();
        let via_spans: Vec<usize> = chunk_spans(&data, &params)
            .iter()
            .map(|s| s.end - s.start)
            .collect();
        assert_eq!(via_iter, via_spans);
    }

    #[test]
    fn next_cut_agrees_with_cuts() {
        // The per-call path (fresh hasher) and the whole-buffer path
        // (single hasher, reset at cuts) must agree everywhere — the seam
        // re-chunk in `par` depends on it.
        let data = pseudo_random(120_000, 17);
        let params = CdcParams::with_avg_size(1024).unwrap();
        let cuts = params.cuts(&data);
        let mut pos = 0usize;
        for &cut in &cuts {
            assert_eq!(params.next_cut(&data, pos), Some(cut));
            pos = cut;
        }
        assert_eq!(params.next_cut(&data, pos), None);
    }

    #[test]
    fn with_avg_size_rejects_small_averages() {
        assert_eq!(
            CdcParams::with_avg_size(63),
            Err(ParamError::AvgTooSmall {
                avg_size: 63,
                floor: 64
            })
        );
        assert!(CdcParams::with_avg_size(64).is_ok());
    }

    #[test]
    fn validate_rejects_bad_params() {
        let p = CdcParams {
            min_size: 0,
            ..CdcParams::default()
        };
        assert_eq!(p.validate(), Err(ParamError::ZeroMin));
        let d = CdcParams::default();
        let p = CdcParams {
            min_size: d.avg_size + 1,
            ..d
        };
        assert!(matches!(p.validate(), Err(ParamError::MinAboveAvg { .. })));
        let d = CdcParams::default();
        let p = CdcParams {
            max_size: d.avg_size - 1,
            ..d
        };
        assert!(matches!(p.validate(), Err(ParamError::AvgAboveMax { .. })));
        let p = CdcParams {
            window: 0,
            ..CdcParams::default()
        };
        assert_eq!(p.validate(), Err(ParamError::ZeroWindow));
    }

    #[test]
    fn mask_expected_density() {
        let p = CdcParams::with_avg_size(8192).unwrap();
        // gap = 8192 - 2048 = 6144 → next pow2 bits = 13 → mask = 2^13 - 1.
        assert_eq!(p.mask(), (1 << 13) - 1);
        let p2 = CdcParams {
            min_size: 1,
            avg_size: 4097,
            max_size: 16384,
            ..CdcParams::default()
        };
        // gap = 4096 (power of two) → mask = 2^12 - 1.
        assert_eq!(p2.mask(), (1 << 12) - 1);
    }
}
