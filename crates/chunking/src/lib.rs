//! Chunking substrate: Rabin fingerprinting, content-defined chunking,
//! fixed-size chunking, and segmentation.
//!
//! The paper's systems depend on three layers of data partitioning:
//!
//! 1. **Content-defined chunking** (§2.1): variable-size chunks cut where a
//!    rolling [Rabin fingerprint](rabin) matches a content pattern, with
//!    configurable minimum / average / maximum sizes — see [`cdc`].
//! 2. **Fixed-size chunking** for the VM dataset (4 KB chunks) — see
//!    [`fixed`].
//! 3. **Segmentation** (§7.1): grouping the *chunk stream* into variable-size
//!    segments (default 512 KB min / 1 MB avg / 2 MB max) whose boundaries
//!    depend on chunk fingerprints; MinHash encryption and scrambling both
//!    operate per segment — see [`segment`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdc;
pub mod fixed;
pub mod rabin;
pub mod segment;

use freqdedup_crypto::sha256;
use freqdedup_trace::{ChunkRecord, Fingerprint};

/// Computes the content fingerprint of a chunk: the first 8 bytes of its
/// SHA-256 digest (§2.1, "each chunk is identified by a fingerprint, which is
/// computed from the cryptographic hash of the content of the chunk").
#[must_use]
pub fn content_fingerprint(chunk: &[u8]) -> Fingerprint {
    Fingerprint::from_digest(&sha256::digest(chunk))
}

/// Chunks `data` with the given chunker and maps every chunk to a
/// [`ChunkRecord`] via [`content_fingerprint`].
///
/// This is the convenience entry point for turning raw snapshot bytes into a
/// logical backup stream.
///
/// # Example
///
/// ```
/// use freqdedup_chunking::{cdc::CdcParams, records_from_bytes};
///
/// let data = vec![7u8; 64 * 1024];
/// let records = records_from_bytes(&data, &CdcParams::with_avg_size(4096));
/// assert!(!records.is_empty());
/// assert_eq!(records.iter().map(|r| u64::from(r.size)).sum::<u64>(), data.len() as u64);
/// ```
#[must_use]
pub fn records_from_bytes(data: &[u8], params: &cdc::CdcParams) -> Vec<ChunkRecord> {
    cdc::chunk_spans(data, params)
        .into_iter()
        .map(|span| {
            let bytes = &data[span.clone()];
            ChunkRecord::new(content_fingerprint(bytes), bytes.len() as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_fingerprint_is_sha256_prefix() {
        let fp = content_fingerprint(b"abc");
        let digest = sha256::digest(b"abc");
        assert_eq!(fp, Fingerprint::from_digest(&digest));
    }

    #[test]
    fn identical_content_identical_fingerprint() {
        assert_eq!(content_fingerprint(b"xyz"), content_fingerprint(b"xyz"));
        assert_ne!(content_fingerprint(b"xyz"), content_fingerprint(b"xyw"));
    }

    #[test]
    fn records_cover_all_bytes() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let params = cdc::CdcParams::with_avg_size(4096);
        let records = records_from_bytes(&data, &params);
        let total: u64 = records.iter().map(|r| u64::from(r.size)).sum();
        assert_eq!(total, data.len() as u64);
    }
}
