//! Chunking substrate: Rabin fingerprinting, content-defined chunking,
//! gear-hash FastCDC, fixed-size chunking, parallel chunking, and
//! segmentation.
//!
//! The paper's systems depend on three layers of data partitioning:
//!
//! 1. **Content-defined chunking** (§2.1): variable-size chunks cut where a
//!    rolling hash matches a content pattern, with configurable minimum /
//!    average / maximum sizes. Two engines implement it behind the
//!    [`Chunker`] trait: the classic byte-at-a-time
//!    [Rabin fingerprint](rabin) chunker ([`cdc`]) and the hardware-fast
//!    [gear-hash](gear) [FastCDC](fastcdc) chunker with normalized
//!    chunking and skip-min.
//! 2. **Fixed-size chunking** for the VM dataset (4 KB chunks) — see
//!    [`fixed`].
//! 3. **Segmentation** (§7.1): grouping the *chunk stream* into variable-size
//!    segments (default 512 KB min / 1 MB avg / 2 MB max) whose boundaries
//!    depend on chunk fingerprints; MinHash encryption and scrambling both
//!    operate per segment — see [`segment`].
//!
//! [`par::chunk_stream_par`] shards a buffer across worker threads and
//! re-chunks across the seams so the parallel output is bit-identical to
//! sequential at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdc;
pub mod fastcdc;
pub mod fixed;
pub mod gear;
pub mod par;
pub mod rabin;
pub mod segment;

use std::ops::Range;

use freqdedup_crypto::sha256;
use freqdedup_trace::{ChunkRecord, Fingerprint};

pub use fastcdc::{FastCdc, FastCdcParams};
pub use par::chunk_stream_par;

/// A chunking-parameter validation failure.
///
/// Every constructor and `validate()` in this crate reports invalid
/// configurations through this type instead of panicking, so callers that
/// accept parameters from configuration files or the wire can surface the
/// violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// The average chunk size is below the supported floor.
    AvgTooSmall {
        /// Requested average size.
        avg_size: usize,
        /// Smallest supported average size.
        floor: usize,
    },
    /// FastCDC requires a power-of-two average size (it fixes the mask
    /// bit counts).
    AvgNotPowerOfTwo {
        /// Requested average size.
        avg_size: usize,
    },
    /// The minimum chunk size is zero.
    ZeroMin,
    /// The minimum chunk size must stay strictly below the average
    /// (skip-min would otherwise swallow the whole boundary-search
    /// window).
    MinNotBelowAvg {
        /// Requested minimum size.
        min_size: usize,
        /// Requested average size.
        avg_size: usize,
    },
    /// The minimum chunk size exceeds the average.
    MinAboveAvg {
        /// Requested minimum size.
        min_size: usize,
        /// Requested average size.
        avg_size: usize,
    },
    /// The average chunk size exceeds the maximum.
    AvgAboveMax {
        /// Requested average size.
        avg_size: usize,
        /// Requested maximum size.
        max_size: usize,
    },
    /// The rolling window is zero bytes wide.
    ZeroWindow,
    /// The normalization level leaves a mask with no bits (or pushes it
    /// past the fingerprint's decision window).
    NormalizationTooWide {
        /// `log2(avg_size)`.
        bits: u32,
        /// Requested normalization level.
        normalization: u32,
    },
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::AvgTooSmall { avg_size, floor } => {
                write!(
                    f,
                    "average chunk size {avg_size} is below the {floor}-byte floor"
                )
            }
            ParamError::AvgNotPowerOfTwo { avg_size } => {
                write!(f, "average chunk size {avg_size} is not a power of two")
            }
            ParamError::ZeroMin => write!(f, "minimum chunk size must be positive"),
            ParamError::MinNotBelowAvg { min_size, avg_size } => {
                write!(
                    f,
                    "minimum chunk size {min_size} must be below the average {avg_size}"
                )
            }
            ParamError::MinAboveAvg { min_size, avg_size } => {
                write!(
                    f,
                    "minimum chunk size {min_size} exceeds the average {avg_size}"
                )
            }
            ParamError::AvgAboveMax { avg_size, max_size } => {
                write!(
                    f,
                    "average chunk size {avg_size} exceeds the maximum {max_size}"
                )
            }
            ParamError::ZeroWindow => write!(f, "rolling window must be positive"),
            ParamError::NormalizationTooWide {
                bits,
                normalization,
            } => write!(
                f,
                "normalization level {normalization} is too wide for a {bits}-bit average mask"
            ),
        }
    }
}

impl std::error::Error for ParamError {}

/// A deterministic content chunker: a pure function from bytes to cut
/// positions.
///
/// The contract every implementation upholds (and the property suite in
/// `tests/chunking_equivalence.rs` pins):
///
/// - **Purity**: cuts depend only on the bytes and the chunker's
///   parameters — no interior mutability, no ambient state. Equal inputs
///   give equal cuts, forever.
/// - **Reset-at-cut**: the decision for the chunk starting at position
///   `p` depends only on `data[p..]`. This is what lets
///   [`par::chunk_stream_par`] resume chunking from any known cut and
///   produce bit-identical output to sequential.
/// - **Bounded lookahead**: [`Chunker::next_cut`] examines at most
///   [`Chunker::max_size`] bytes past `from`, and a cut is always forced
///   at `from + max_size` when that many bytes are available.
pub trait Chunker {
    /// A short stable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// The maximum chunk size: `next_cut(data, from)` never returns a cut
    /// past `from + max_size()` and never returns `None` when
    /// `data.len() - from >= max_size()`.
    fn max_size(&self) -> usize;

    /// The end of the chunk that starts at `from`, or `None` when the
    /// remainder `data[from..]` is a trailing partial chunk (no boundary
    /// fires and the data ends before the forced maximum).
    ///
    /// Returned cuts satisfy `from < cut <= data.len()`.
    fn next_cut(&self, data: &[u8], from: usize) -> Option<usize>;

    /// All cut positions of `data`, in increasing order. The trailing
    /// partial chunk (if any) has no cut; [`Chunker::spans`] adds it.
    fn cuts(&self, data: &[u8]) -> Vec<usize> {
        let mut cuts = Vec::with_capacity(data.len() / self.max_size().max(1) + 1);
        let mut pos = 0usize;
        while let Some(cut) = self.next_cut(data, pos) {
            debug_assert!(cut > pos && cut <= data.len());
            cuts.push(cut);
            pos = cut;
        }
        cuts
    }

    /// The chunk byte ranges of `data`: every byte covered exactly once,
    /// in order, including the trailing partial chunk.
    fn spans(&self, data: &[u8]) -> Vec<Range<usize>> {
        spans_from_cuts(data.len(), &self.cuts(data))
    }
}

/// Expands a strictly increasing cut list into chunk spans over
/// `0..data_len`, appending the trailing partial span when the last cut
/// falls short of `data_len`.
#[must_use]
pub fn spans_from_cuts(data_len: usize, cuts: &[usize]) -> Vec<Range<usize>> {
    let trailing = usize::from(cuts.last().copied().unwrap_or(0) < data_len);
    let mut spans = Vec::with_capacity(cuts.len() + trailing);
    let mut start = 0usize;
    for &cut in cuts {
        debug_assert!(cut > start && cut <= data_len);
        spans.push(start..cut);
        start = cut;
    }
    if start < data_len {
        spans.push(start..data_len);
    }
    spans
}

/// Computes the content fingerprint of a chunk: the first 8 bytes of its
/// SHA-256 digest (§2.1, "each chunk is identified by a fingerprint, which is
/// computed from the cryptographic hash of the content of the chunk").
#[must_use]
pub fn content_fingerprint(chunk: &[u8]) -> Fingerprint {
    Fingerprint::from_digest(&sha256::digest(chunk))
}

/// Chunks `data` with the given chunker and maps every chunk to a
/// [`ChunkRecord`] via [`content_fingerprint`].
///
/// This is the convenience entry point for turning raw snapshot bytes into a
/// logical backup stream.
///
/// # Example
///
/// ```
/// use freqdedup_chunking::{fastcdc::FastCdc, records_from_bytes};
///
/// let data = vec![7u8; 64 * 1024];
/// let records = records_from_bytes(&data, &FastCdc::with_avg_size(4096).unwrap());
/// assert!(!records.is_empty());
/// assert_eq!(records.iter().map(|r| u64::from(r.size)).sum::<u64>(), data.len() as u64);
/// ```
#[must_use]
pub fn records_from_bytes<C: Chunker + ?Sized>(data: &[u8], chunker: &C) -> Vec<ChunkRecord> {
    chunker
        .spans(data)
        .into_iter()
        .map(|span| {
            let bytes = &data[span];
            ChunkRecord::new(content_fingerprint(bytes), bytes.len() as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_fingerprint_is_sha256_prefix() {
        let fp = content_fingerprint(b"abc");
        let digest = sha256::digest(b"abc");
        assert_eq!(fp, Fingerprint::from_digest(&digest));
    }

    #[test]
    fn identical_content_identical_fingerprint() {
        assert_eq!(content_fingerprint(b"xyz"), content_fingerprint(b"xyz"));
        assert_ne!(content_fingerprint(b"xyz"), content_fingerprint(b"xyw"));
    }

    #[test]
    fn records_cover_all_bytes_any_chunker() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let cdc = cdc::CdcParams::with_avg_size(4096).unwrap();
        let fast = FastCdc::with_avg_size(4096).unwrap();
        let fixed = fixed::FixedChunker::new(4096).unwrap();
        for chunker in [&cdc as &dyn Chunker, &fast, &fixed] {
            let records = records_from_bytes(&data, chunker);
            let total: u64 = records.iter().map(|r| u64::from(r.size)).sum();
            assert_eq!(total, data.len() as u64, "chunker {}", chunker.name());
        }
    }

    #[test]
    fn spans_from_cuts_appends_trailing_partial() {
        assert_eq!(spans_from_cuts(10, &[4, 8]), vec![0..4, 4..8, 8..10]);
        assert_eq!(spans_from_cuts(8, &[4, 8]), vec![0..4, 4..8]);
        assert_eq!(spans_from_cuts(3, &[]), vec![0..3]);
        assert!(spans_from_cuts(0, &[]).is_empty());
    }

    #[test]
    fn param_error_messages_mention_values() {
        let err = ParamError::AvgTooSmall {
            avg_size: 32,
            floor: 64,
        };
        assert!(err.to_string().contains("32"));
        let err = ParamError::AvgNotPowerOfTwo { avg_size: 100 };
        assert!(err.to_string().contains("100"));
        let err = ParamError::NormalizationTooWide {
            bits: 13,
            normalization: 20,
        };
        assert!(err.to_string().contains("20"));
    }
}
