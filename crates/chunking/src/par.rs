//! Deterministic parallel chunking: shard, chunk, re-chunk the seams.
//!
//! [`chunk_stream_par`] splits a buffer into contiguous shards
//! ([`freqdedup_trace::par::shard_ranges`]), chunks every shard
//! independently on scoped worker threads, then stitches the per-shard cut
//! lists back together on the calling thread so the result is
//! **bit-identical to sequential chunking at any thread count**.
//!
//! ## Why the stitch is exact
//!
//! Every [`Chunker`] resets its rolling state at each cut
//! (reset-at-cut, see the trait contract), so the sequence of cuts after
//! any known cut position `p` is a pure function of `data[p..]`. Workers
//! restart chunking at their shard's start as if it were a cut, which is
//! only *sometimes* true — so the stitch walks shards in order and:
//!
//! 1. if the last confirmed cut lands **exactly on the shard start**, the
//!    shard's precomputed cuts are exactly what sequential would produce,
//!    and they are adopted wholesale;
//! 2. otherwise the seam is **re-chunked** with [`Chunker::next_cut`] from
//!    the last confirmed cut until a re-chunked cut coincides with a
//!    precomputed cut of the current shard (from there on the precomputed
//!    suffix is sequential's output — adopt it) or leaves the shard.
//!
//! Re-chunking a seam touches at most `max_size` bytes per cut and
//! resynchronizes after O(1) chunks in practice (boundaries are content
//! markers; the first re-chunked cut inside a shard usually already
//! appears in the shard's own cut list). The worst case — adversarial
//! data with no interior boundaries, e.g. all zeros — degrades to the
//! sequential scan, never to a wrong answer.

use std::ops::Range;

use freqdedup_trace::par::{par_map, shard_ranges, ParConfig};

use crate::Chunker;

/// Minimum shard length, in units of the chunker's `max_size`: shards
/// shorter than a few maximum chunks spend more time re-chunking seams
/// than chunking, so small inputs collapse to fewer shards (or one).
const MIN_SHARD_MAX_CHUNKS: usize = 4;

/// Chunks `data` across up to `cfg` worker threads; the returned spans
/// are bit-identical to `chunker.spans(data)` for every thread count.
///
/// # Example
///
/// ```
/// use freqdedup_chunking::{chunk_stream_par, fastcdc::FastCdc, Chunker};
/// use freqdedup_trace::par::ParConfig;
///
/// let chunker = FastCdc::with_avg_size(1024).unwrap();
/// let data: Vec<u8> = (0..200_000u32).map(|i| (i.wrapping_mul(2654435761) >> 11) as u8).collect();
/// let par = chunk_stream_par(&data, &chunker, ParConfig::with_threads(4));
/// assert_eq!(par, chunker.spans(&data));
/// ```
pub fn chunk_stream_par<C>(data: &[u8], chunker: &C, cfg: ParConfig) -> Vec<Range<usize>>
where
    C: Chunker + Sync + ?Sized,
{
    let threads = cfg.resolve().max(1);
    let max_size = chunker.max_size().max(1);
    let shards = threads
        .min(data.len() / (MIN_SHARD_MAX_CHUNKS * max_size))
        .max(1);
    if shards <= 1 {
        return chunker.spans(data);
    }
    let ranges = shard_ranges(data.len(), shards);
    // Each worker chunks its shard as if the shard start were a cut and
    // reports absolute cut positions.
    let shard_cuts: Vec<Vec<usize>> = par_map(threads, &ranges, |r| {
        chunker
            .cuts(&data[r.clone()])
            .into_iter()
            .map(|c| r.start + c)
            .collect()
    });

    let mut cuts: Vec<usize> = Vec::with_capacity(shard_cuts.iter().map(Vec::len).sum());
    // Last confirmed cut (0 is a chunk start by definition).
    let mut cur = 0usize;
    'shards: for (r, pre) in ranges.iter().zip(&shard_cuts) {
        if cur >= r.end {
            // A confirmed chunk already spans this whole shard.
            continue;
        }
        loop {
            if cur == r.start {
                // Sequential restarts exactly where the worker restarted:
                // the precomputed cuts ARE sequential's cuts.
                cuts.extend_from_slice(pre);
                if let Some(&last) = pre.last() {
                    cur = last;
                }
                continue 'shards;
            }
            if let Ok(i) = pre.binary_search(&cur) {
                // Re-chunked onto a precomputed cut: the worker's suffix
                // from here is sequential's output.
                cuts.extend_from_slice(&pre[i + 1..]);
                if let Some(&last) = pre.last() {
                    cur = last;
                }
                continue 'shards;
            }
            // Seam re-chunk: continue sequentially from the last
            // confirmed cut.
            match chunker.next_cut(data, cur) {
                None => break 'shards, // trailing partial reaches data end
                Some(next) => {
                    debug_assert!(next > cur && next <= data.len());
                    cuts.push(next);
                    cur = next;
                    if cur >= r.end {
                        continue 'shards;
                    }
                }
            }
        }
    }
    crate::spans_from_cuts(data.len(), &cuts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdc::CdcParams;
    use crate::fastcdc::FastCdc;
    use crate::fixed::FixedChunker;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn par_identical_to_sequential_fastcdc() {
        let chunker = FastCdc::with_avg_size(1024).unwrap();
        for (len, seed) in [(0usize, 1u64), (100, 2), (50_000, 3), (400_000, 4)] {
            let data = pseudo_random(len, seed);
            let seq = chunker.spans(&data);
            for threads in [1usize, 2, 3, 8, 16] {
                assert_eq!(
                    chunk_stream_par(&data, &chunker, ParConfig::with_threads(threads)),
                    seq,
                    "len {len} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn par_identical_to_sequential_rabin() {
        let params = CdcParams::with_avg_size(1024).unwrap();
        let data = pseudo_random(300_000, 9);
        let seq = params.spans(&data);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                chunk_stream_par(&data, &params, ParConfig::with_threads(threads)),
                seq
            );
        }
    }

    #[test]
    fn par_identical_on_fixed_chunker() {
        let chunker = FixedChunker::new(4096).unwrap();
        let data = pseudo_random(150_001, 6);
        assert_eq!(
            chunk_stream_par(&data, &chunker, ParConfig::with_threads(8)),
            chunker.spans(&data)
        );
    }

    #[test]
    fn par_identical_on_pathological_constant_data() {
        // All zeros: no content boundaries, every cut forced at max_size.
        // Shard starts almost never coincide with cuts, so this exercises
        // the seam re-chunk path maximally.
        let chunker = FastCdc::with_avg_size(1024).unwrap();
        let data = vec![0u8; 123_457];
        let seq = chunker.spans(&data);
        for threads in [2usize, 5, 8] {
            assert_eq!(
                chunk_stream_par(&data, &chunker, ParConfig::with_threads(threads)),
                seq
            );
        }
    }

    #[test]
    fn auto_threads_matches_sequential() {
        let chunker = FastCdc::with_avg_size(2048).unwrap();
        let data = pseudo_random(500_000, 31);
        assert_eq!(
            chunk_stream_par(&data, &chunker, ParConfig::auto()),
            chunker.spans(&data)
        );
    }

    #[test]
    fn small_inputs_collapse_to_sequential_path() {
        let chunker = FastCdc::with_avg_size(1024).unwrap();
        // Below MIN_SHARD_MAX_CHUNKS * max_size the parallel path is not
        // worth it; result must still be exact.
        let data = pseudo_random(8_000, 12);
        assert_eq!(
            chunk_stream_par(&data, &chunker, ParConfig::with_threads(16)),
            chunker.spans(&data)
        );
    }
}
