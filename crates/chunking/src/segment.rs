//! Variable-size segmentation of a chunk stream (§7.1).
//!
//! The defenses (MinHash encryption and scrambling, §6) operate per
//! *segment*: a non-overlapping sub-sequence of adjacent chunks. Segment
//! boundaries are content-defined over the chunk **fingerprints** (following
//! the variable-size segmentation scheme of Sparse Indexing \[45\]):
//!
//! > "It places a segment boundary at the end of a chunk fingerprint if
//! > (i) the size of each segment is at least the minimum segment size, and
//! > (ii) the chunk fingerprint modulo a pre-defined divisor (which
//! > determines the average segment size) is equal to some constant (e.g.
//! > −1), or the inclusion of the chunk makes the segment size larger than
//! > the maximum segment size."
//!
//! Content-defined segment boundaries are what make MinHash encryption work:
//! similar backup streams produce the same segments, hence (mostly) the same
//! minimum fingerprints and the same segment keys.

use std::ops::Range;

use freqdedup_trace::ChunkRecord;

/// Segmentation parameters. The paper's defaults are 512 KB minimum, 1 MB
/// average and 2 MB maximum segment size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentParams {
    /// Minimum segment size in bytes.
    pub min_bytes: u64,
    /// Maximum segment size in bytes (a boundary is forced once exceeded).
    pub max_bytes: u64,
    /// Boundary divisor: a boundary is placed after a chunk whose fingerprint
    /// satisfies `fp % divisor == divisor - 1` (once past the minimum size).
    pub divisor: u64,
}

impl SegmentParams {
    /// The paper's configuration (§7.1): 512 KB / 1 MB / 2 MB segments,
    /// assuming the given average chunk size (8 KB for FSL, 4 KB for VM)
    /// to derive the divisor.
    ///
    /// The divisor is chosen so that the expected segment size is the average:
    /// beyond the minimum, each chunk is a boundary with probability
    /// `1/divisor`, so `divisor = (avg - min) / avg_chunk_size`.
    ///
    /// # Panics
    ///
    /// Panics if `avg_chunk_size` is zero.
    #[must_use]
    pub fn paper_default(avg_chunk_size: u32) -> Self {
        Self::derived(512 * 1024, 1024 * 1024, 2 * 1024 * 1024, avg_chunk_size)
    }

    /// Builds parameters with a divisor derived from the expected chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `avg_chunk_size == 0`, or if the sizes are not ordered
    /// `min <= avg <= max`.
    #[must_use]
    pub fn derived(min_bytes: u64, avg_bytes: u64, max_bytes: u64, avg_chunk_size: u32) -> Self {
        assert!(avg_chunk_size > 0, "average chunk size must be positive");
        assert!(
            min_bytes <= avg_bytes && avg_bytes <= max_bytes,
            "segment sizes must satisfy min <= avg <= max"
        );
        let divisor = ((avg_bytes - min_bytes) / u64::from(avg_chunk_size)).max(1);
        SegmentParams {
            min_bytes,
            max_bytes,
            divisor,
        }
    }
}

impl Default for SegmentParams {
    fn default() -> Self {
        Self::paper_default(8 * 1024)
    }
}

/// Splits a chunk stream into segments, returned as index ranges over
/// `chunks`. Every chunk belongs to exactly one segment, in order.
///
/// # Example
///
/// ```
/// use freqdedup_chunking::segment::{segment_spans, SegmentParams};
/// use freqdedup_trace::ChunkRecord;
///
/// let chunks: Vec<ChunkRecord> =
///     (0..1000u64).map(|i| ChunkRecord::new(i * 7919, 8192)).collect();
/// let spans = segment_spans(&chunks, &SegmentParams::default());
/// assert_eq!(spans.iter().map(|s| s.end - s.start).sum::<usize>(), chunks.len());
/// ```
#[must_use]
pub fn segment_spans(chunks: &[ChunkRecord], params: &SegmentParams) -> Vec<Range<usize>> {
    assert!(params.divisor > 0, "divisor must be positive");
    let mut spans = Vec::new();
    let mut start = 0usize;
    let mut seg_bytes = 0u64;

    for (i, rec) in chunks.iter().enumerate() {
        seg_bytes += u64::from(rec.size);
        let content_boundary =
            seg_bytes >= params.min_bytes && rec.fp.value() % params.divisor == params.divisor - 1;
        let forced_boundary = seg_bytes > params.max_bytes;
        if content_boundary || forced_boundary {
            spans.push(start..i + 1);
            start = i + 1;
            seg_bytes = 0;
        }
    }
    if start < chunks.len() {
        spans.push(start..chunks.len());
    }
    spans
}

/// Statistics over a segmentation, used by tests and the calibration tools.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SegmentStats {
    /// Number of segments.
    pub count: usize,
    /// Mean segment size in bytes.
    pub mean_bytes: f64,
    /// Largest segment in bytes.
    pub max_bytes: u64,
    /// Smallest segment in bytes.
    pub min_bytes: u64,
}

/// Computes [`SegmentStats`] for a segmentation of `chunks`.
#[must_use]
pub fn segment_stats(chunks: &[ChunkRecord], spans: &[Range<usize>]) -> SegmentStats {
    if spans.is_empty() {
        return SegmentStats::default();
    }
    let sizes: Vec<u64> = spans
        .iter()
        .map(|s| chunks[s.clone()].iter().map(|c| u64::from(c.size)).sum())
        .collect();
    let total: u64 = sizes.iter().sum();
    SegmentStats {
        count: spans.len(),
        mean_bytes: total as f64 / spans.len() as f64,
        max_bytes: sizes.iter().copied().max().unwrap_or(0),
        min_bytes: sizes.iter().copied().min().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::Fingerprint;

    fn stream(n: usize, size: u32, seed: u64) -> Vec<ChunkRecord> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ChunkRecord::new(Fingerprint(x), size)
            })
            .collect()
    }

    #[test]
    fn spans_partition_stream() {
        let chunks = stream(5000, 8192, 11);
        let spans = segment_spans(&chunks, &SegmentParams::default());
        let mut pos = 0;
        for s in &spans {
            assert_eq!(s.start, pos);
            assert!(s.end > s.start);
            pos = s.end;
        }
        assert_eq!(pos, chunks.len());
    }

    #[test]
    fn segment_sizes_within_bounds() {
        let chunks = stream(20_000, 8192, 23);
        let params = SegmentParams::default();
        let spans = segment_spans(&chunks, &params);
        let stats = segment_stats(&chunks, &spans);
        // Interior segments must be at least min_bytes; the last may be short.
        for s in &spans[..spans.len() - 1] {
            let bytes: u64 = chunks[s.clone()].iter().map(|c| u64::from(c.size)).sum();
            assert!(bytes >= params.min_bytes, "segment below minimum");
            // A forced boundary triggers on the chunk that crossed max, so
            // the hard cap is max + one chunk.
            assert!(bytes <= params.max_bytes + 8192, "segment above maximum");
        }
        // Average should be in the right ballpark (0.5–2 MB band).
        assert!(
            (512.0 * 1024.0..2.2 * 1024.0 * 1024.0).contains(&stats.mean_bytes),
            "mean segment size {}",
            stats.mean_bytes
        );
    }

    #[test]
    fn boundaries_are_content_defined() {
        // Same fingerprints => same boundaries, independent of where the
        // stream begins: after skipping a whole leading segment, the
        // remaining boundaries must be identical.
        let chunks = stream(10_000, 8192, 5);
        let params = SegmentParams::default();
        let spans = segment_spans(&chunks, &params);
        assert!(spans.len() > 2);
        let first_end = spans[0].end;
        let tail_spans = segment_spans(&chunks[first_end..], &params);
        let shifted: Vec<Range<usize>> = spans[1..]
            .iter()
            .map(|s| s.start - first_end..s.end - first_end)
            .collect();
        assert_eq!(tail_spans, shifted);
    }

    #[test]
    fn empty_stream() {
        assert!(segment_spans(&[], &SegmentParams::default()).is_empty());
    }

    #[test]
    fn single_chunk_single_segment() {
        let chunks = vec![ChunkRecord::new(42u64, 100)];
        let spans = segment_spans(&chunks, &SegmentParams::default());
        assert_eq!(spans, vec![0..1]);
    }

    #[test]
    fn oversized_chunk_forces_boundary() {
        // One chunk larger than max forms its own segment.
        let params = SegmentParams::derived(1024, 2048, 4096, 512);
        let chunks = vec![
            ChunkRecord::new(2u64, 10_000),
            ChunkRecord::new(4u64, 100),
            ChunkRecord::new(6u64, 100),
        ];
        let spans = segment_spans(&chunks, &params);
        assert_eq!(spans[0], 0..1);
    }

    #[test]
    fn derived_divisor() {
        let p = SegmentParams::derived(512 * 1024, 1024 * 1024, 2 * 1024 * 1024, 8192);
        assert_eq!(p.divisor, 64);
        let p4k = SegmentParams::paper_default(4096);
        assert_eq!(p4k.divisor, 128);
    }

    #[test]
    #[should_panic(expected = "min <= avg <= max")]
    fn derived_rejects_unordered_sizes() {
        let _ = SegmentParams::derived(10, 5, 20, 1);
    }

    #[test]
    fn stats_empty() {
        assert_eq!(segment_stats(&[], &[]), SegmentStats::default());
    }

    #[test]
    fn deterministic() {
        let chunks = stream(3000, 4096, 77);
        let params = SegmentParams::paper_default(4096);
        assert_eq!(
            segment_spans(&chunks, &params),
            segment_spans(&chunks, &params)
        );
    }
}
