//! FastCDC content-defined chunking (Xia et al., USENIX ATC 2016) on the
//! [gear hash](crate::gear).
//!
//! Three optimizations over classic Rabin CDC, all load-bearing here:
//!
//! 1. **Gear hash**: one shift + add + table lookup per byte (vs two
//!    lookups + window bookkeeping for Rabin).
//! 2. **Skip-min**: no byte before `min_size` can be a boundary, so the
//!    scan for each chunk starts `min_size` bytes past the previous cut
//!    with a zero fingerprint — a quarter of the input is never hashed at
//!    the default 1:4 min:avg ratio.
//! 3. **Normalized chunking**: two masks instead of one. Before the
//!    average-size point a *harder* mask (`bits + normalization` one-bits)
//!    suppresses small chunks; after it an *easier* mask
//!    (`bits - normalization`) pulls the distribution back toward the
//!    average and makes forced max-size cuts rare. The boundary test is
//!    `(fp & mask) == 0` — cheaper to satisfy uniformly than Rabin CDC's
//!    `== mask` against low bits, because gear's low bits mix only the
//!    most recent bytes. Both masks live in the *high* bits (top bit at
//!    position 47), giving a ~48-byte effective decision window, matching
//!    the workspace's Rabin window.
//!
//! Determinism: boundaries are a pure function of `(bytes, params)` — the
//! gear table derives from `params.seed`, and the scan state resets to
//! zero at every cut. That last property is what makes the parallel
//! seam-rechunk in [`crate::par`] exact: continuing from any known cut
//! position is a pure function of that position.

use crate::gear::{gear_table, DEFAULT_GEAR_SEED};
use crate::{Chunker, ParamError};

/// The highest fingerprint bit examined by the boundary masks. Bit `p` of
/// a gear fingerprint mixes the last `p + 1` bytes, so anchoring masks at
/// bit 47 gives a 48-byte effective window — the same horizon as
/// [`crate::rabin::DEFAULT_WINDOW`].
const MASK_TOP_BIT: u32 = 47;

/// A contiguous run of `bits` one-bits anchored just below
/// [`MASK_TOP_BIT`].
fn high_mask(bits: u32) -> u64 {
    debug_assert!((1..=MASK_TOP_BIT + 1).contains(&bits));
    ((1u64 << bits) - 1) << (MASK_TOP_BIT + 1 - bits)
}

/// Parameters of the FastCDC chunker.
///
/// Unlike [`crate::cdc::CdcParams`] there is no polynomial and no explicit
/// window: the gear table is derived from `seed` and the window is
/// implicit in the mask placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastCdcParams {
    /// Minimum chunk size in bytes; the scan skips this many bytes past
    /// each cut without hashing.
    pub min_size: usize,
    /// Target average chunk size in bytes; must be a power of two (it
    /// determines the mask bit counts).
    pub avg_size: usize,
    /// Maximum chunk size in bytes (forced cut).
    pub max_size: usize,
    /// Seed of the gear table (see [`crate::gear::gear_table`]).
    pub seed: u64,
    /// Normalization level: the small-regime mask has
    /// `log2(avg) + normalization` one-bits, the large-regime mask
    /// `log2(avg) - normalization`. Level 0 disables normalized chunking;
    /// 2 is the paper's recommended setting.
    pub normalization: u32,
}

impl FastCdcParams {
    /// Standard parameters for a given average chunk size: minimum
    /// `avg/4`, maximum `avg*4`, default gear seed, normalization level 2.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when `avg_size` is below 256 bytes or not a
    /// power of two.
    pub fn with_avg_size(avg_size: usize) -> Result<Self, ParamError> {
        let params = FastCdcParams {
            min_size: avg_size / 4,
            avg_size,
            max_size: avg_size.saturating_mul(4),
            seed: DEFAULT_GEAR_SEED,
            normalization: 2,
        };
        params.validate()?;
        Ok(params)
    }

    /// The paper's FSL/synthetic configuration: 8 KB average chunks.
    #[must_use]
    pub fn paper_8kb() -> Self {
        Self::with_avg_size(8 * 1024).expect("paper parameters are valid")
    }

    /// Validates the parameter combination.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed [`ParamError`].
    pub fn validate(&self) -> Result<(), ParamError> {
        if !self.avg_size.is_power_of_two() {
            return Err(ParamError::AvgNotPowerOfTwo {
                avg_size: self.avg_size,
            });
        }
        let bits = self.avg_size.ilog2();
        // Both masks must keep at least one bit and fit under the top bit:
        // bits + norm <= 48 and bits - norm >= 1. The 256-byte floor keeps
        // bits >= 8 so level-2 normalization always has room.
        if self.avg_size < 256 {
            return Err(ParamError::AvgTooSmall {
                avg_size: self.avg_size,
                floor: 256,
            });
        }
        if self.normalization >= bits || bits + self.normalization > MASK_TOP_BIT + 1 {
            return Err(ParamError::NormalizationTooWide {
                bits,
                normalization: self.normalization,
            });
        }
        if self.min_size == 0 {
            return Err(ParamError::ZeroMin);
        }
        if self.min_size >= self.avg_size {
            return Err(ParamError::MinNotBelowAvg {
                min_size: self.min_size,
                avg_size: self.avg_size,
            });
        }
        if self.avg_size > self.max_size {
            return Err(ParamError::AvgAboveMax {
                avg_size: self.avg_size,
                max_size: self.max_size,
            });
        }
        Ok(())
    }
}

impl Default for FastCdcParams {
    fn default() -> Self {
        Self::paper_8kb()
    }
}

/// A compiled FastCDC chunker: parameters plus the derived gear table and
/// the two normalized-chunking masks.
///
/// # Example
///
/// ```
/// use freqdedup_chunking::{fastcdc::FastCdc, Chunker};
///
/// let chunker = FastCdc::paper_8kb();
/// let data: Vec<u8> = (0..100_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
/// let spans = chunker.spans(&data);
/// assert_eq!(spans.iter().map(std::ops::Range::len).sum::<usize>(), data.len());
/// ```
#[derive(Clone)]
pub struct FastCdc {
    params: FastCdcParams,
    table: Box<[u64; 256]>,
    mask_s: u64,
    mask_l: u64,
}

impl std::fmt::Debug for FastCdc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastCdc")
            .field("params", &self.params)
            .field("mask_s", &format_args!("{:#x}", self.mask_s))
            .field("mask_l", &format_args!("{:#x}", self.mask_l))
            .finish_non_exhaustive()
    }
}

impl FastCdc {
    /// Compiles a chunker from validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when `params` fail
    /// [`FastCdcParams::validate`].
    pub fn new(params: FastCdcParams) -> Result<Self, ParamError> {
        params.validate()?;
        let bits = params.avg_size.ilog2();
        let table = gear_table(params.seed);
        Ok(FastCdc {
            mask_s: high_mask(bits + params.normalization),
            mask_l: high_mask(bits - params.normalization),
            table,
            params,
        })
    }

    /// Compiles the paper's 8 KB-average configuration.
    #[must_use]
    pub fn paper_8kb() -> Self {
        Self::new(FastCdcParams::paper_8kb()).expect("paper parameters are valid")
    }

    /// Compiles the standard configuration for an average chunk size.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the derived parameters are invalid (see
    /// [`FastCdcParams::with_avg_size`]).
    pub fn with_avg_size(avg_size: usize) -> Result<Self, ParamError> {
        Self::new(FastCdcParams::with_avg_size(avg_size)?)
    }

    /// The compiled parameters.
    #[must_use]
    pub fn params(&self) -> &FastCdcParams {
        &self.params
    }

    /// The small-regime (pre-average, harder) boundary mask.
    #[must_use]
    pub fn mask_small(&self) -> u64 {
        self.mask_s
    }

    /// The large-regime (post-average, easier) boundary mask.
    #[must_use]
    pub fn mask_large(&self) -> u64 {
        self.mask_l
    }
}

impl Chunker for FastCdc {
    fn name(&self) -> &'static str {
        "fastcdc"
    }

    fn max_size(&self) -> usize {
        self.params.max_size
    }

    fn next_cut(&self, data: &[u8], from: usize) -> Option<usize> {
        let n = data.len();
        debug_assert!(from <= n);
        // Skip-min: no boundary can land at or before from + min_size, so
        // start hashing there with a zero fingerprint. Bytes in the
        // skipped prefix are never read.
        let start = from.saturating_add(self.params.min_size);
        if start >= n {
            // Remainder fits inside min_size: trailing partial, no cut.
            return None;
        }
        let normal_end = n.min(from + self.params.avg_size).max(start);
        let max_end = n.min(from + self.params.max_size).max(normal_end);
        let table: &[u64; 256] = &self.table;
        let mut fp = 0u64;
        // Small regime: harder mask until the average-size point.
        for (k, &byte) in data[start..normal_end].iter().enumerate() {
            fp = (fp << 1).wrapping_add(table[byte as usize]);
            if fp & self.mask_s == 0 {
                return Some(start + k + 1);
            }
        }
        // Large regime: easier mask until the forced maximum.
        for (k, &byte) in data[normal_end..max_end].iter().enumerate() {
            fp = (fp << 1).wrapping_add(table[byte as usize]);
            if fp & self.mask_l == 0 {
                return Some(normal_end + k + 1);
            }
        }
        if max_end == from + self.params.max_size {
            // Forced cut at the maximum chunk size.
            Some(max_end)
        } else {
            // Ran out of data before max_size: trailing partial, no cut.
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn spans_cover_input_exactly() {
        let data = pseudo_random(300_000, 11);
        let chunker = FastCdc::with_avg_size(4096).unwrap();
        let spans = chunker.spans(&data);
        let mut pos = 0;
        for span in &spans {
            assert_eq!(span.start, pos);
            assert!(span.end > span.start);
            pos = span.end;
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn size_bounds_respected() {
        let data = pseudo_random(600_000, 29);
        let chunker = FastCdc::with_avg_size(4096).unwrap();
        let p = chunker.params().clone();
        let spans = chunker.spans(&data);
        for (i, span) in spans.iter().enumerate() {
            let len = span.len();
            assert!(len <= p.max_size, "chunk {i} len {len}");
            if i + 1 < spans.len() {
                assert!(len > p.min_size, "chunk {i} len {len}");
            }
        }
    }

    #[test]
    fn average_size_in_ballpark() {
        let data = pseudo_random(8_000_000, 5);
        let chunker = FastCdc::with_avg_size(4096).unwrap();
        let spans = chunker.spans(&data);
        let avg = data.len() as f64 / spans.len() as f64;
        // Normalized chunking holds the mean close to the target.
        assert!((2800.0..6000.0).contains(&avg), "observed average {avg}");
    }

    #[test]
    fn normalization_tightens_distribution() {
        // With normalization the spread around the average shrinks versus
        // the single-mask (level 0) chunker on the same data.
        let data = pseudo_random(4_000_000, 77);
        let spread = |norm: u32| {
            let params = FastCdcParams {
                normalization: norm,
                ..FastCdcParams::with_avg_size(4096).unwrap()
            };
            let chunker = FastCdc::new(params).unwrap();
            let lens: Vec<f64> = chunker
                .spans(&data)
                .iter()
                .map(|s| s.len() as f64)
                .collect();
            let mean = lens.iter().sum::<f64>() / lens.len() as f64;
            (lens.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / lens.len() as f64).sqrt() / mean
        };
        assert!(
            spread(2) < spread(0),
            "normalized spread {} not below plain spread {}",
            spread(2),
            spread(0)
        );
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let data = pseudo_random(200_000, 9);
        let a = FastCdc::with_avg_size(2048).unwrap();
        assert_eq!(
            a.spans(&data),
            FastCdc::with_avg_size(2048).unwrap().spans(&data)
        );
        let other_seed = FastCdc::new(FastCdcParams {
            seed: 1234,
            ..FastCdcParams::with_avg_size(2048).unwrap()
        })
        .unwrap();
        assert_ne!(a.spans(&data), other_seed.spans(&data));
    }

    #[test]
    fn constant_data_cut_at_max() {
        // All-zero data: gear fp after k zero bytes is G[0] * (2^k - 1)
        // truncated; whether it ever matches is table-dependent, but the
        // default table happens not to, so every chunk is forced to max.
        let data = vec![0u8; 80_000];
        let chunker = FastCdc::with_avg_size(1024).unwrap();
        let spans = chunker.spans(&data);
        for span in &spans[..spans.len() - 1] {
            assert_eq!(span.len(), chunker.params().max_size);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let chunker = FastCdc::paper_8kb();
        assert!(chunker.spans(&[]).is_empty());
        assert!(chunker.cuts(&[]).is_empty());
        assert_eq!(chunker.spans(b"tiny"), vec![0..4]);
        assert!(chunker.cuts(b"tiny").is_empty());
    }

    #[test]
    fn exactly_max_input_is_one_forced_cut() {
        let chunker = FastCdc::with_avg_size(1024).unwrap();
        let data = vec![0u8; chunker.params().max_size];
        assert_eq!(chunker.cuts(&data), vec![data.len()]);
        assert_eq!(chunker.spans(&data), vec![0..data.len()]);
    }

    #[test]
    fn skip_min_never_reads_skipped_bytes() {
        // Corrupting bytes strictly inside the skipped prefix of each
        // chunk must not move any boundary.
        let data = pseudo_random(300_000, 41);
        let chunker = FastCdc::with_avg_size(4096).unwrap();
        let min = chunker.params().min_size;
        let spans = chunker.spans(&data);
        let mut mutated = data.clone();
        for span in &spans {
            if span.len() > min {
                // First byte of the chunk is inside the skip window.
                mutated[span.start] ^= 0xff;
            }
        }
        assert_eq!(chunker.spans(&mutated), spans);
    }

    #[test]
    fn validation_errors_are_typed() {
        assert!(matches!(
            FastCdcParams::with_avg_size(100),
            Err(ParamError::AvgNotPowerOfTwo { avg_size: 100 })
        ));
        assert!(matches!(
            FastCdcParams::with_avg_size(64),
            Err(ParamError::AvgTooSmall {
                avg_size: 64,
                floor: 256
            })
        ));
        let bad = FastCdcParams {
            normalization: 20,
            ..FastCdcParams::paper_8kb()
        };
        assert!(matches!(
            bad.validate(),
            Err(ParamError::NormalizationTooWide { .. })
        ));
        let bad = FastCdcParams {
            min_size: 0,
            ..FastCdcParams::paper_8kb()
        };
        assert_eq!(bad.validate(), Err(ParamError::ZeroMin));
        let bad = FastCdcParams {
            min_size: 8 * 1024,
            ..FastCdcParams::paper_8kb()
        };
        assert!(matches!(
            bad.validate(),
            Err(ParamError::MinNotBelowAvg { .. })
        ));
        let bad = FastCdcParams {
            max_size: 4 * 1024,
            ..FastCdcParams::paper_8kb()
        };
        assert!(matches!(
            bad.validate(),
            Err(ParamError::AvgAboveMax { .. })
        ));
    }

    #[test]
    fn masks_have_expected_widths() {
        let chunker = FastCdc::paper_8kb();
        // avg 8192 → bits 13, norm 2 → 15-bit and 11-bit masks at bit 47.
        assert_eq!(chunker.mask_small().count_ones(), 15);
        assert_eq!(chunker.mask_large().count_ones(), 11);
        assert_eq!(63 - chunker.mask_small().leading_zeros(), 47);
        assert_eq!(63 - chunker.mask_large().leading_zeros(), 47);
        // The easier mask is a subset of the harder one: any small-regime
        // match is also a large-regime match.
        assert_eq!(
            chunker.mask_small() & chunker.mask_large(),
            chunker.mask_large()
        );
    }
}
