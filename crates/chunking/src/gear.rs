//! Gear rolling hash (Xia et al., USENIX ATC 2016 "FastCDC"), the
//! hardware-fast alternative to [Rabin fingerprinting](crate::rabin).
//!
//! Where the Rabin hash needs two table lookups, two shifts and window
//! bookkeeping per byte, gear needs exactly **one shift, one add and one
//! table lookup**:
//!
//! ```text
//! fp = (fp << 1) + GEAR[byte]
//! ```
//!
//! The window is *implicit*: after `k` steps the gear value of the byte
//! consumed `k` steps ago has been shifted left `k` times, so bit `p` of
//! the fingerprint mixes exactly the last `p + 1` bytes — old bytes fall
//! off the top on their own, no un-append table and no ring buffer. A
//! boundary test that masks bits around position 47 therefore looks at a
//! ~48-byte effective window, the same horizon as the workspace's default
//! Rabin configuration.
//!
//! The 256-entry table is **derived, not hardcoded**: it is the first 256
//! outputs of the workspace's vendored ChaCha8 RNG seeded with
//! [`DEFAULT_GEAR_SEED`], so every build and every run agrees on the same
//! boundaries without shipping 2 KiB of magic numbers. Anyone holding the
//! seed can reproduce the table; anyone without it cannot predict
//! boundaries — which is exactly the knob a keyed/parameter-hidden CDC
//! defense will turn (ROADMAP item 3a).

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Seed of the default gear table (ASCII "gear-v01"): fixed so chunk
/// boundaries are reproducible across runs, machines and PRs.
pub const DEFAULT_GEAR_SEED: u64 = 0x6765_6172_2d76_3031;

/// Derives a 256-entry gear table from `seed` via the vendored ChaCha8
/// RNG (deterministic: same seed, same table, forever).
#[must_use]
pub fn gear_table(seed: u64) -> Box<[u64; 256]> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut table = Box::new([0u64; 256]);
    for slot in table.iter_mut() {
        *slot = rng.next_u64();
    }
    table
}

/// The default gear table ([`DEFAULT_GEAR_SEED`]), derived once per
/// process and shared.
#[must_use]
pub fn default_table() -> &'static [u64; 256] {
    static TABLE: std::sync::OnceLock<Box<[u64; 256]>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| gear_table(DEFAULT_GEAR_SEED))
}

/// A gear rolling hash over an implicit ~64-byte window.
///
/// # Example
///
/// ```
/// use freqdedup_chunking::gear::GearHasher;
///
/// let mut h = GearHasher::default();
/// for b in b"hello rolling world" {
///     h.slide(*b);
/// }
/// let _fp = h.fingerprint();
/// ```
#[derive(Clone)]
pub struct GearHasher {
    table: Box<[u64; 256]>,
    fp: u64,
}

impl std::fmt::Debug for GearHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GearHasher")
            .field("fingerprint", &format_args!("{:#x}", self.fp))
            .finish()
    }
}

impl Default for GearHasher {
    fn default() -> Self {
        Self::new(DEFAULT_GEAR_SEED)
    }
}

impl GearHasher {
    /// Creates a hasher over the table derived from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        GearHasher {
            table: gear_table(seed),
            fp: 0,
        }
    }

    /// Slides one byte into the window and returns the new fingerprint.
    #[inline]
    pub fn slide(&mut self, byte: u8) -> u64 {
        self.fp = (self.fp << 1).wrapping_add(self.table[byte as usize]);
        self.fp
    }

    /// Current fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Resets the fingerprint to zero (a fresh chunk start).
    pub fn reset(&mut self) {
        self.fp = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_deterministic_and_seed_sensitive() {
        assert_eq!(gear_table(DEFAULT_GEAR_SEED), gear_table(DEFAULT_GEAR_SEED));
        assert_eq!(&*gear_table(DEFAULT_GEAR_SEED), default_table());
        assert_ne!(gear_table(1), gear_table(2));
    }

    #[test]
    fn table_entries_look_random() {
        // All 256 entries distinct, and the population count across the
        // table is near 50% — a degenerate table (zeros, small values)
        // would break boundary-probability assumptions.
        let table = gear_table(DEFAULT_GEAR_SEED);
        let mut sorted = table.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256, "duplicate gear entries");
        let ones: u32 = table.iter().map(|v| v.count_ones()).sum();
        let frac = f64::from(ones) / (256.0 * 64.0);
        assert!((0.45..0.55).contains(&frac), "bit density {frac}");
    }

    #[test]
    fn old_bytes_age_out_of_high_bits() {
        // Bit p depends on the last p+1 bytes only: two streams sharing a
        // 64-byte suffix agree exactly on the full fingerprint.
        let tail: Vec<u8> = (0..64u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(5))
            .collect();
        let mut a = GearHasher::default();
        let mut b = GearHasher::default();
        for byte in b"completely different prefix A" {
            a.slide(*byte);
        }
        for byte in b"prefix B" {
            b.slide(*byte);
        }
        for &byte in &tail {
            a.slide(byte);
            b.slide(byte);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn masked_bits_roughly_uniform() {
        // The FastCDC boundary test masks bits around position 47; check
        // those bits are not pathologically biased over random input.
        let mut h = GearHasher::default();
        let mut hits = 0u32;
        let mut x = 7u64;
        let n = 1 << 16;
        let mask = 0xfu64 << 44;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if h.slide((x >> 33) as u8) & mask == 0 {
                hits += 1;
            }
        }
        // Expected rate 1/16; accept a generous band.
        let frac = f64::from(hits) / f64::from(n);
        assert!((0.03..0.11).contains(&frac), "mask-hit rate {frac}");
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut h = GearHasher::default();
        for b in b"some data" {
            h.slide(*b);
        }
        h.reset();
        let mut fresh = GearHasher::default();
        for b in b"xyz" {
            h.slide(*b);
            fresh.slide(*b);
        }
        assert_eq!(h.fingerprint(), fresh.fingerprint());
    }
}
