//! Rabin fingerprinting by random polynomials (Rabin 1981), the rolling hash
//! behind content-defined chunking.
//!
//! A window of bytes is interpreted as a polynomial over GF(2) and reduced
//! modulo an irreducible polynomial `P`. The fingerprint can be *rolled*:
//! sliding the window one byte forward costs O(1) thanks to two precomputed
//! 256-entry tables. The implementation follows the classic LBFS
//! `rabinpoly` structure.

/// The default irreducible polynomial (degree 53), the same default used by
/// several production CDC implementations.
pub const DEFAULT_POLY: u64 = 0x3DA3358B4DC173;

/// The default rolling window size in bytes.
pub const DEFAULT_WINDOW: usize = 48;

/// Degree of a nonzero polynomial represented as bits of a `u64`.
fn deg(p: u64) -> i32 {
    63 - p.leading_zeros() as i32
}

/// Computes `(nh·2^64 + nl) mod d` in GF(2) polynomial arithmetic.
fn polymod(mut nh: u64, mut nl: u64, d: u64) -> u64 {
    assert_ne!(d, 0, "modulus polynomial must be nonzero");
    let k = deg(d);
    if nh != 0 {
        // Reduce the high word first.
        let mut i = deg(nh) + 64;
        while i >= 64 {
            if (nh >> (i - 64)) & 1 != 0 {
                let shift = i - k;
                if shift >= 64 {
                    nh ^= d << (shift - 64);
                } else {
                    nl ^= d << shift;
                    if shift > 0 {
                        nh ^= d >> (64 - shift);
                    } else {
                        // shift == 0: clears bit k of nl only; nh untouched,
                        // but bit i (= 64 + something) can't reach here since
                        // i >= 64 implies shift = i - k >= 64 - 63 = 1 for k < 63.
                    }
                }
            }
            i -= 1;
            if nh == 0 {
                break;
            }
            while i >= 64 && (nh >> (i - 64)) & 1 == 0 {
                i -= 1;
            }
        }
    }
    // Now reduce the low word.
    let mut i = 63;
    while i >= k {
        if (nl >> i) & 1 != 0 {
            nl ^= d << (i - k);
        }
        i -= 1;
    }
    nl
}

/// Computes `(x · y) mod d` in GF(2) polynomial arithmetic.
fn polymmult(x: u64, y: u64, d: u64) -> u64 {
    let mut hi = 0u64;
    let mut lo = 0u64;
    for i in 0..64 {
        if (y >> i) & 1 != 0 {
            lo ^= x << i;
            if i > 0 {
                hi ^= x >> (64 - i);
            }
        }
    }
    polymod(hi, lo, d)
}

/// A windowed Rabin rolling hash.
///
/// # Example
///
/// ```
/// use freqdedup_chunking::rabin::RabinHasher;
///
/// let mut h = RabinHasher::default();
/// for b in b"hello rolling world" {
///     h.slide(*b);
/// }
/// let _fp = h.fingerprint();
/// ```
#[derive(Clone)]
pub struct RabinHasher {
    poly: u64,
    shift: i32,
    /// Append table: reduces the byte shifted off the top.
    t: Box<[u64; 256]>,
    /// Un-append table: removes the influence of the byte leaving the window.
    u: Box<[u64; 256]>,
    window: Vec<u8>,
    pos: usize,
    fingerprint: u64,
}

impl std::fmt::Debug for RabinHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RabinHasher")
            .field("poly", &format_args!("{:#x}", self.poly))
            .field("window", &self.window.len())
            .field("fingerprint", &format_args!("{:#x}", self.fingerprint))
            .finish()
    }
}

impl Default for RabinHasher {
    fn default() -> Self {
        Self::new(DEFAULT_POLY, DEFAULT_WINDOW)
    }
}

impl RabinHasher {
    /// Creates a hasher for the irreducible polynomial `poly` and the given
    /// window size.
    ///
    /// # Panics
    ///
    /// Panics if `poly` has degree < 9 (the byte-append table would be
    /// meaningless) or if `window_size` is zero.
    #[must_use]
    pub fn new(poly: u64, window_size: usize) -> Self {
        assert!(window_size > 0, "window size must be positive");
        let xshift = deg(poly);
        assert!(xshift >= 9, "polynomial degree must be at least 9");
        let shift = xshift - 8;

        let t1 = polymod(0, 1u64 << xshift, poly);
        let mut t = Box::new([0u64; 256]);
        for (j, slot) in t.iter_mut().enumerate() {
            *slot = polymmult(j as u64, t1, poly) | ((j as u64) << xshift);
        }

        // sizeshift = x^(8·window_size) mod poly, built by appending zeros.
        let mut sizeshift = 1u64;
        for _ in 1..window_size {
            sizeshift = append8(sizeshift, 0, shift, &t);
        }
        let mut u = Box::new([0u64; 256]);
        for (j, slot) in u.iter_mut().enumerate() {
            *slot = polymmult(j as u64, sizeshift, poly);
        }

        RabinHasher {
            poly,
            shift,
            t,
            u,
            window: vec![0u8; window_size],
            pos: 0,
            fingerprint: 0,
        }
    }

    /// The window size in bytes.
    #[must_use]
    pub fn window_size(&self) -> usize {
        self.window.len()
    }

    /// Slides the window forward by one byte and returns the new fingerprint.
    #[inline]
    pub fn slide(&mut self, byte: u8) -> u64 {
        let out = self.window[self.pos];
        self.window[self.pos] = byte;
        self.pos += 1;
        if self.pos == self.window.len() {
            self.pos = 0;
        }
        self.fingerprint = append8(
            self.fingerprint ^ self.u[out as usize],
            byte,
            self.shift,
            &self.t,
        );
        self.fingerprint
    }

    /// Current fingerprint of the window contents.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Resets the window to all-zero bytes and the fingerprint to zero.
    pub fn reset(&mut self) {
        self.window.fill(0);
        self.pos = 0;
        self.fingerprint = 0;
    }

    /// Hashes an entire buffer from a fresh window (non-rolling reference
    /// computation; used by tests and one-shot callers).
    #[must_use]
    pub fn hash_of(&self, data: &[u8]) -> u64 {
        let mut clone = self.clone();
        clone.reset();
        let mut fp = 0;
        for &b in data {
            fp = clone.slide(b);
        }
        fp
    }
}

#[inline]
fn append8(fp: u64, byte: u8, shift: i32, t: &[u64; 256]) -> u64 {
    ((fp << 8) | u64::from(byte)) ^ t[(fp >> shift) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polymod_small_cases() {
        // x^3 mod x = 0
        assert_eq!(polymod(0, 0b1000, 0b10), 0);
        // (x^2 + 1) mod (x + 1): x^2+1 = (x+1)^2 over GF(2), remainder 0.
        assert_eq!(polymod(0, 0b101, 0b11), 0);
        // x mod (x + 1) = 1
        assert_eq!(polymod(0, 0b10, 0b11), 1);
        // anything mod itself = 0
        assert_eq!(polymod(0, DEFAULT_POLY, DEFAULT_POLY), 0);
    }

    #[test]
    fn polymod_reduces_high_word() {
        // (x^64) mod poly must equal polymmult(x^32, x^32) mod poly.
        let a = polymod(1, 0, DEFAULT_POLY);
        let b = polymmult(1u64 << 32, 1u64 << 32, DEFAULT_POLY);
        assert_eq!(a, b);
    }

    #[test]
    fn polymmult_identity_and_commutativity() {
        let vals = [1u64, 2, 0xdeadbeef, 0x0123456789abcdef];
        for &v in &vals {
            assert_eq!(polymmult(v, 1, DEFAULT_POLY), polymod(0, v, DEFAULT_POLY));
            for &w in &vals {
                assert_eq!(polymmult(v, w, DEFAULT_POLY), polymmult(w, v, DEFAULT_POLY));
            }
        }
    }

    #[test]
    fn polymmult_distributes_over_xor() {
        let (a, b, c) = (0x1234u64, 0xabcdu64, 0x9999u64);
        assert_eq!(
            polymmult(a ^ b, c, DEFAULT_POLY),
            polymmult(a, c, DEFAULT_POLY) ^ polymmult(b, c, DEFAULT_POLY)
        );
    }

    #[test]
    fn rolling_matches_fresh_hash() {
        // The defining property: after sliding over data, the fingerprint
        // equals a fresh hash of the final window contents.
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 131 + 7) as u8).collect();
        let window = 48;
        let mut roller = RabinHasher::new(DEFAULT_POLY, window);
        for (i, &b) in data.iter().enumerate() {
            roller.slide(b);
            if i + 1 >= window {
                let fresh = roller.hash_of(&data[i + 1 - window..=i]);
                assert_eq!(roller.fingerprint(), fresh, "mismatch at offset {i}");
            }
        }
    }

    #[test]
    fn window_content_determines_fingerprint() {
        // Two streams with the same final window agree regardless of prefix.
        let window = 16;
        let tail: Vec<u8> = (0..window as u8).map(|i| i * 3 + 1).collect();
        let mut h1 = RabinHasher::new(DEFAULT_POLY, window);
        let mut h2 = RabinHasher::new(DEFAULT_POLY, window);
        for b in [1u8, 2, 3, 4, 5] {
            h1.slide(b);
        }
        for b in [9u8, 8, 7] {
            h2.slide(b);
        }
        for &b in &tail {
            h1.slide(b);
            h2.slide(b);
        }
        assert_eq!(h1.fingerprint(), h2.fingerprint());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = RabinHasher::default();
        for b in b"some data to hash" {
            h.slide(*b);
        }
        h.reset();
        assert_eq!(h.fingerprint(), 0);
        let mut fresh = RabinHasher::default();
        for b in b"xyz" {
            h.slide(*b);
            fresh.slide(*b);
        }
        assert_eq!(h.fingerprint(), fresh.fingerprint());
    }

    #[test]
    fn fingerprint_degree_below_poly_degree() {
        let mut h = RabinHasher::default();
        let bound = 1u64 << deg(DEFAULT_POLY);
        let mut x = 1u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.slide((x >> 56) as u8);
            assert!(h.fingerprint() < bound);
        }
    }

    #[test]
    fn low_bits_roughly_uniform() {
        // The boundary test of CDC uses the low bits; check they are not
        // pathologically biased: over 64k random slides, each of the 16
        // values of the low 4 bits should appear between 2% and 11%.
        let mut h = RabinHasher::default();
        let mut counts = [0u32; 16];
        let mut x = 42u64;
        let n = 65536;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let fp = h.slide((x >> 33) as u8);
            counts[(fp & 0xf) as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            let frac = f64::from(c) / f64::from(n);
            assert!(
                (0.02..0.11).contains(&frac),
                "low-bit value {v} frequency {frac}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_rejected() {
        let _ = RabinHasher::new(DEFAULT_POLY, 0);
    }

    #[test]
    fn custom_polynomial_works() {
        // A different degree-63 polynomial still satisfies the rolling
        // property.
        let poly = 0xbfe6_b8a5_bf37_8d83u64;
        let window = 32;
        let data: Vec<u8> = (0..200u8).collect();
        let mut h = RabinHasher::new(poly, window);
        for &b in &data {
            h.slide(b);
        }
        let fresh = h.hash_of(&data[data.len() - window..]);
        assert_eq!(h.fingerprint(), fresh);
    }
}
