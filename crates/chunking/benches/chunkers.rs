//! Chunking-engine microbenchmarks: rabin vs gear rolling hash, and
//! rabin-cdc vs fastcdc chunkers, per input size.
//!
//! The `perf_report --chunking` section records the end-to-end MB/s
//! numbers that `ci/bench_guard.py` gates; these microbenches exist to
//! localize a regression (rolling-hash inner loop vs boundary logic vs
//! parallel stitch) once the guard fires.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use freqdedup_chunking::cdc::CdcParams;
use freqdedup_chunking::fastcdc::FastCdc;
use freqdedup_chunking::gear::GearHasher;
use freqdedup_chunking::rabin::RabinHasher;
use freqdedup_chunking::{chunk_stream_par, Chunker};
use freqdedup_trace::par::ParConfig;

fn pseudo_random(len: usize) -> Vec<u8> {
    let mut x = 0x243f_6a88_85a3_08d3u64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn bench_rolling_hashes(c: &mut Criterion) {
    let data = pseudo_random(1 << 20);
    let mut group = c.benchmark_group("rolling_hash");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("rabin_1MiB", |b| {
        b.iter(|| {
            let mut h = RabinHasher::default();
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= h.slide(byte);
            }
            acc
        });
    });
    group.bench_function("gear_1MiB", |b| {
        b.iter(|| {
            let mut h = GearHasher::default();
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= h.slide(byte);
            }
            acc
        });
    });
    group.finish();
}

fn bench_chunkers(c: &mut Criterion) {
    let rabin = CdcParams::paper_8kb();
    let fast = FastCdc::paper_8kb();
    let mut group = c.benchmark_group("chunkers");
    for mib in [1usize, 4, 16] {
        let data = pseudo_random(mib << 20);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("rabin_cdc", mib), &data, |b, data| {
            b.iter(|| rabin.spans(data));
        });
        group.bench_with_input(BenchmarkId::new("fastcdc", mib), &data, |b, data| {
            b.iter(|| fast.spans(data));
        });
        group.bench_with_input(BenchmarkId::new("fastcdc_par", mib), &data, |b, data| {
            b.iter(|| chunk_stream_par(data, &fast, ParConfig::auto()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rolling_hashes, bench_chunkers);
criterion_main!(benches);
