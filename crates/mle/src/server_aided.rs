//! Server-aided MLE in the style of DupLESS (Bellare et al., USENIX Security
//! 2013; paper §2.2).
//!
//! Key derivation is outsourced to a dedicated [`KeyServer`] that computes
//! `HMAC(system_secret, chunk_fingerprint)`. Because the secret never leaves
//! the server, an adversary without server access cannot run the offline
//! brute-force attack of §2.2; the server additionally rate-limits
//! derivations to slow *online* brute force.
//!
//! The server here is in-process (the network hop of the real DupLESS
//! deployment is irrelevant to the paper's attacks — see DESIGN.md §2);
//! the trust boundary and the rate-limiting behaviour are preserved.

use std::sync::Mutex;

use freqdedup_crypto::{ctr::Aes256Ctr, hmac, sha256};

use crate::{ChunkKey, Mle, MleError};

/// A deterministic token-bucket rate limiter.
///
/// Time is modelled explicitly: the owner calls [`RateLimiter::refill`] to
/// grant tokens (e.g. once per simulated second), keeping experiments
/// reproducible.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    capacity: u64,
    tokens: u64,
}

impl RateLimiter {
    /// Creates a limiter with the given bucket capacity, initially full.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        RateLimiter {
            capacity,
            tokens: capacity,
        }
    }

    /// Attempts to consume one token.
    pub fn try_acquire(&mut self) -> bool {
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Grants `n` tokens, saturating at the capacity.
    pub fn refill(&mut self, n: u64) {
        self.tokens = (self.tokens + n).min(self.capacity);
    }

    /// Tokens currently available.
    #[must_use]
    pub fn available(&self) -> u64 {
        self.tokens
    }
}

/// The dedicated key manager: holds the system-wide secret and derives
/// per-chunk keys for authenticated clients (§2.2).
#[derive(Debug)]
pub struct KeyServer {
    secret: [u8; 32],
    limiter: Option<RateLimiter>,
    derivations: u64,
}

impl KeyServer {
    /// Creates a key server from a raw system secret.
    #[must_use]
    pub fn new(secret: [u8; 32]) -> Self {
        KeyServer {
            secret,
            limiter: None,
            derivations: 0,
        }
    }

    /// Creates a key server whose derivations are rate-limited.
    #[must_use]
    pub fn with_rate_limit(secret: [u8; 32], requests: u64) -> Self {
        KeyServer {
            secret,
            limiter: Some(RateLimiter::new(requests)),
            derivations: 0,
        }
    }

    /// Derives the MLE key for a chunk fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`MleError::RateLimited`] when the token bucket is empty.
    pub fn derive(&mut self, fingerprint: &[u8; 32]) -> Result<ChunkKey, MleError> {
        if let Some(limiter) = &mut self.limiter {
            if !limiter.try_acquire() {
                return Err(MleError::RateLimited);
            }
        }
        self.derivations += 1;
        Ok(ChunkKey(hmac::hmac(&self.secret, fingerprint)))
    }

    /// Grants rate-limit tokens (no-op for unlimited servers).
    pub fn refill(&mut self, n: u64) {
        if let Some(limiter) = &mut self.limiter {
            limiter.refill(n);
        }
    }

    /// Total successful key derivations served.
    #[must_use]
    pub fn derivations(&self) -> u64 {
        self.derivations
    }
}

/// Client-side server-aided MLE scheme.
///
/// The client hashes each chunk locally to its fingerprint and asks the
/// server for the chunk key; encryption itself happens client-side with
/// AES-256-CTR, deterministic as required for deduplication.
///
/// # Example
///
/// ```
/// use freqdedup_mle::{server_aided::{KeyServer, ServerAidedMle}, Mle};
///
/// let server = KeyServer::new([7u8; 32]);
/// let mle = ServerAidedMle::new(server);
/// let (key, ct) = mle.encrypt(b"chunk")?;
/// assert_eq!(mle.decrypt_with_key(&key, &ct), b"chunk");
/// # Ok::<(), freqdedup_mle::MleError>(())
/// ```
#[derive(Debug)]
pub struct ServerAidedMle {
    server: Mutex<KeyServer>,
}

impl ServerAidedMle {
    /// Wraps a key server.
    #[must_use]
    pub fn new(server: KeyServer) -> Self {
        ServerAidedMle {
            server: Mutex::new(server),
        }
    }

    /// Grants rate-limit tokens to the underlying server.
    pub fn refill(&self, n: u64) {
        self.server.lock().expect("poisoned").refill(n);
    }

    /// Total key derivations the server has performed.
    #[must_use]
    pub fn derivations(&self) -> u64 {
        self.server.lock().expect("poisoned").derivations()
    }
}

impl Mle for ServerAidedMle {
    fn derive_key(&self, plaintext: &[u8]) -> Result<ChunkKey, MleError> {
        let fingerprint = sha256::digest(plaintext);
        self.server.lock().expect("poisoned").derive(&fingerprint)
    }

    fn encrypt_with_key(&self, key: &ChunkKey, plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        Aes256Ctr::new(&key.0, &[0u8; 16]).apply_keystream(&mut out);
        out
    }

    fn decrypt_with_key(&self, key: &ChunkKey, ciphertext: &[u8]) -> Vec<u8> {
        self.encrypt_with_key(key, ciphertext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clients_with_same_server_secret() {
        let a = ServerAidedMle::new(KeyServer::new([1u8; 32]));
        let b = ServerAidedMle::new(KeyServer::new([1u8; 32]));
        assert_eq!(
            a.encrypt(b"chunk").unwrap().1,
            b.encrypt(b"chunk").unwrap().1
        );
    }

    #[test]
    fn different_secret_different_ciphertext() {
        let a = ServerAidedMle::new(KeyServer::new([1u8; 32]));
        let b = ServerAidedMle::new(KeyServer::new([2u8; 32]));
        assert_ne!(
            a.encrypt(b"chunk").unwrap().1,
            b.encrypt(b"chunk").unwrap().1
        );
    }

    #[test]
    fn round_trip() {
        let mle = ServerAidedMle::new(KeyServer::new([9u8; 32]));
        let (key, ct) = mle.encrypt(b"some chunk data").unwrap();
        assert_eq!(mle.decrypt_with_key(&key, &ct), b"some chunk data");
    }

    #[test]
    fn offline_brute_force_defeated_without_secret() {
        // Unlike convergent encryption, a local adversary cannot re-derive
        // keys without the server secret: encrypting the right guess under a
        // *wrong* secret does not reproduce the ciphertext.
        let victim = ServerAidedMle::new(KeyServer::new([1u8; 32]));
        let (_, target) = victim.encrypt(b"password123").unwrap();
        let adversary = ServerAidedMle::new(KeyServer::new([0u8; 32]));
        assert_ne!(adversary.encrypt(b"password123").unwrap().1, target);
    }

    #[test]
    fn rate_limit_enforced_and_refilled() {
        let mle = ServerAidedMle::new(KeyServer::with_rate_limit([3u8; 32], 2));
        assert!(mle.encrypt(b"a").is_ok());
        assert!(mle.encrypt(b"b").is_ok());
        assert_eq!(mle.encrypt(b"c").unwrap_err(), MleError::RateLimited);
        mle.refill(1);
        assert!(mle.encrypt(b"c").is_ok());
        assert_eq!(mle.derivations(), 3);
    }

    #[test]
    fn limiter_saturates_at_capacity() {
        let mut l = RateLimiter::new(2);
        l.refill(100);
        assert_eq!(l.available(), 2);
        assert!(l.try_acquire());
        assert!(l.try_acquire());
        assert!(!l.try_acquire());
        assert_eq!(l.available(), 0);
    }

    #[test]
    fn derivation_counter() {
        let mut server = KeyServer::new([0u8; 32]);
        let fp = sha256::digest(b"m");
        let _ = server.derive(&fp).unwrap();
        let _ = server.derive(&fp).unwrap();
        assert_eq!(server.derivations(), 2);
    }
}
