//! Random convergent encryption (RCE), the non-deterministic MLE variant of
//! Bellare et al. (EUROCRYPT 2013), included as a baseline (paper §8).
//!
//! RCE encrypts each chunk under a fresh random key `L`, then wraps `L` under
//! the message-locked key `K = H(M)`. Deduplication requires a
//! **deterministic tag** `T = H(K)` attached to every ciphertext — and it is
//! precisely this tag that still reveals the chunk frequency distribution:
//!
//! > "RCE needs to add deterministic tags into ciphertext chunks for checking
//! > any duplicates, so that the adversary can count the deterministic tags
//! > to obtain the frequency distribution." (§8)
//!
//! The [`RceCiphertext::tag`] is therefore exactly as attackable by frequency
//! analysis as a deterministic ciphertext, which the crate-level tests and
//! the ablation bench demonstrate.

use freqdedup_crypto::{ctr::Aes256Ctr, sha256};

use crate::{ChunkKey, MleError};

/// An RCE ciphertext: randomized body plus deterministic metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RceCiphertext {
    /// `CTR(L, M)` — the chunk body under the random key (randomized).
    pub body: Vec<u8>,
    /// `L ⊕ K` — the random key wrapped under the MLE key (randomized).
    pub wrapped_key: [u8; 32],
    /// `H(K)` — the deterministic deduplication tag (leaks frequency!).
    pub tag: [u8; 32],
}

/// The RCE scheme. Randomness is supplied by the caller per encryption so
/// the scheme itself stays deterministic and testable.
#[derive(Clone, Copy, Debug, Default)]
pub struct Rce;

impl Rce {
    /// Creates the scheme (stateless).
    #[must_use]
    pub fn new() -> Self {
        Rce
    }

    /// Derives the message-locked key `K = SHA-256(M)`.
    #[must_use]
    pub fn derive_key(&self, plaintext: &[u8]) -> ChunkKey {
        ChunkKey(sha256::digest(plaintext))
    }

    /// Encrypts `plaintext` with the caller-supplied 32-byte randomness `l`
    /// (the per-chunk random key).
    #[must_use]
    pub fn encrypt(&self, plaintext: &[u8], l: &[u8; 32]) -> RceCiphertext {
        let k = self.derive_key(plaintext);
        let mut body = plaintext.to_vec();
        Aes256Ctr::new(l, &[0u8; 16]).apply_keystream(&mut body);
        let mut wrapped_key = [0u8; 32];
        for i in 0..32 {
            wrapped_key[i] = l[i] ^ k.0[i];
        }
        let tag = sha256::digest(&k.0);
        RceCiphertext {
            body,
            wrapped_key,
            tag,
        }
    }

    /// Decrypts a ciphertext given the message-locked key `K`.
    ///
    /// # Errors
    ///
    /// Returns [`MleError::BadAuthentication`] when `K` does not match the
    /// ciphertext tag.
    pub fn decrypt(&self, ct: &RceCiphertext, key: &ChunkKey) -> Result<Vec<u8>, MleError> {
        if sha256::digest(&key.0) != ct.tag {
            return Err(MleError::BadAuthentication);
        }
        let mut l = [0u8; 32];
        for (li, (w, k)) in l.iter_mut().zip(ct.wrapped_key.iter().zip(key.0.iter())) {
            *li = w ^ k;
        }
        let mut out = ct.body.clone();
        Aes256Ctr::new(&l, &[0u8; 16]).apply_keystream(&mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let rce = Rce::new();
        let ct = rce.encrypt(b"chunk data", &[7u8; 32]);
        let key = rce.derive_key(b"chunk data");
        assert_eq!(rce.decrypt(&ct, &key).unwrap(), b"chunk data");
    }

    #[test]
    fn body_randomized_but_tag_deterministic() {
        let rce = Rce::new();
        let c1 = rce.encrypt(b"chunk", &[1u8; 32]);
        let c2 = rce.encrypt(b"chunk", &[2u8; 32]);
        assert_ne!(
            c1.body, c2.body,
            "bodies must differ under fresh randomness"
        );
        assert_ne!(c1.wrapped_key, c2.wrapped_key);
        // The deterministic tag is the frequency-analysis foothold.
        assert_eq!(c1.tag, c2.tag);
    }

    #[test]
    fn distinct_chunks_distinct_tags() {
        let rce = Rce::new();
        assert_ne!(
            rce.encrypt(b"a", &[0u8; 32]).tag,
            rce.encrypt(b"b", &[0u8; 32]).tag
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let rce = Rce::new();
        let ct = rce.encrypt(b"chunk", &[9u8; 32]);
        let wrong = rce.derive_key(b"other");
        assert_eq!(rce.decrypt(&ct, &wrong), Err(MleError::BadAuthentication));
    }

    #[test]
    fn dedup_by_tag_works() {
        // A store deduplicating on tags keeps one copy per unique chunk even
        // though ciphertext bodies differ.
        let rce = Rce::new();
        let mut seen = std::collections::HashSet::new();
        let mut stored = 0;
        let chunks: [&[u8]; 4] = [b"x", b"y", b"x", b"x"];
        for (i, m) in chunks.iter().enumerate() {
            let mut l = [0u8; 32];
            l[0] = i as u8; // fresh randomness each time
            let ct = rce.encrypt(m, &l);
            if seen.insert(ct.tag) {
                stored += 1;
            }
        }
        assert_eq!(stored, 2);
    }
}
