//! Convergent encryption (Douceur et al., ICDCS 2002): the classical MLE
//! instantiation where the key is the cryptographic hash of the chunk
//! (paper §2.2).

use freqdedup_crypto::{ctr::Aes256Ctr, sha256};

use crate::{ChunkKey, Mle, MleError};

/// Convergent encryption: `key = SHA-256(chunk)`, ciphertext =
/// AES-256-CTR(key, zero IV, chunk).
///
/// Deterministic by construction — identical plaintext chunks always yield
/// identical ciphertext chunks, preserving deduplication.
///
/// # Example
///
/// ```
/// use freqdedup_mle::{convergent::Convergent, Mle};
///
/// let mle = Convergent::new();
/// let (k1, c1) = mle.encrypt(b"same chunk")?;
/// let (k2, c2) = mle.encrypt(b"same chunk")?;
/// assert_eq!(c1, c2); // deduplicable
/// assert_eq!(mle.decrypt_with_key(&k1, &c1), b"same chunk");
/// # let _ = k2;
/// # Ok::<(), freqdedup_mle::MleError>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Convergent;

impl Convergent {
    /// Creates the scheme (stateless).
    #[must_use]
    pub fn new() -> Self {
        Convergent
    }
}

impl Mle for Convergent {
    fn derive_key(&self, plaintext: &[u8]) -> Result<ChunkKey, MleError> {
        Ok(ChunkKey(sha256::digest(plaintext)))
    }

    fn encrypt_with_key(&self, key: &ChunkKey, plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        Aes256Ctr::new(&key.0, &[0u8; 16]).apply_keystream(&mut out);
        out
    }

    fn decrypt_with_key(&self, key: &ChunkKey, ciphertext: &[u8]) -> Vec<u8> {
        // CTR is an involution under the same key/IV.
        self.encrypt_with_key(key, ciphertext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_ciphertext() {
        let mle = Convergent::new();
        let (_, c1) = mle.encrypt(b"chunk A").unwrap();
        let (_, c2) = mle.encrypt(b"chunk A").unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn different_chunks_different_ciphertext() {
        let mle = Convergent::new();
        let (_, c1) = mle.encrypt(b"chunk A").unwrap();
        let (_, c2) = mle.encrypt(b"chunk B").unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn round_trip() {
        let mle = Convergent::new();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        let (key, ct) = mle.encrypt(&data).unwrap();
        assert_ne!(ct, data);
        assert_eq!(mle.decrypt_with_key(&key, &ct), data);
    }

    #[test]
    fn length_preserving() {
        let mle = Convergent::new();
        for len in [0usize, 1, 15, 16, 17, 4096] {
            let data = vec![7u8; len];
            let (_, ct) = mle.encrypt(&data).unwrap();
            assert_eq!(ct.len(), len);
        }
    }

    #[test]
    fn key_is_content_hash() {
        let mle = Convergent::new();
        let key = mle.derive_key(b"xyz").unwrap();
        assert_eq!(key.0, sha256::digest(b"xyz"));
    }

    #[test]
    fn vulnerable_to_offline_brute_force() {
        // The attack the paper describes in §2.2: with a known candidate set,
        // an adversary can confirm which plaintext a ciphertext encrypts.
        let mle = Convergent::new();
        let (_, target_ct) = mle.encrypt(b"password123").unwrap();
        let candidates: [&[u8]; 3] = [b"hunter2", b"password123", b"letmein"];
        let found = candidates
            .iter()
            .find(|m| mle.encrypt(m).unwrap().1 == target_ct);
        assert_eq!(found, Some(&b"password123".as_slice()));
    }
}
