//! File recipes and key recipes (§2, §6.2).
//!
//! * A **file recipe** lists the chunk fingerprints of a file in the
//!   *original* plaintext order — after scrambling, this is what lets a
//!   client restore the pre-scramble ordering.
//! * A **key recipe** tracks the per-chunk MLE keys for decryption.
//!
//! Both are metadata and are **not** deduplicated; they are sealed under the
//! user's own secret key with conventional, randomized authenticated
//! encryption (encrypt-then-MAC), matching §3.3: "the file recipes and key
//! recipes can be encrypted by user-specific secret keys". The adversary of
//! the threat model never sees their contents.

use freqdedup_crypto::{constant_time_eq, ctr::Aes256Ctr, hmac::HmacSha256, kdf};
use freqdedup_trace::{ChunkRecord, Fingerprint};

use crate::{ChunkKey, MleError};

/// A file recipe: ordered chunk references for reconstruction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileRecipe {
    /// File identifier (path or name).
    pub file_name: String,
    /// Chunk records in the file's original logical order.
    pub chunks: Vec<ChunkRecord>,
}

impl FileRecipe {
    /// Creates an empty recipe for `file_name`.
    #[must_use]
    pub fn new(file_name: impl Into<String>) -> Self {
        FileRecipe {
            file_name: file_name.into(),
            chunks: Vec::new(),
        }
    }

    /// Serializes the recipe to bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.file_name.len() + self.chunks.len() * 12);
        out.extend_from_slice(&(self.file_name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.file_name.as_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for rec in &self.chunks {
            out.extend_from_slice(&rec.fp.to_bytes());
            out.extend_from_slice(&rec.size.to_le_bytes());
        }
        out
    }

    /// Deserializes a recipe.
    ///
    /// # Errors
    ///
    /// Returns [`MleError::Malformed`] on truncated or invalid input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MleError> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let name_len = cursor.read_u32()? as usize;
        let name_bytes = cursor.read_slice(name_len)?;
        let file_name = std::str::from_utf8(name_bytes)
            .map_err(|_| MleError::Malformed("recipe name not utf-8"))?
            .to_owned();
        let count = cursor.read_u32()? as usize;
        let mut chunks = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let fp = cursor.read_u64()?;
            let size = cursor.read_u32()?;
            chunks.push(ChunkRecord::new(Fingerprint(fp), size));
        }
        cursor.expect_end()?;
        Ok(FileRecipe { file_name, chunks })
    }
}

/// A key recipe: per-chunk MLE keys, index-aligned with the corresponding
/// [`FileRecipe`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeyRecipe {
    /// Per-chunk keys, in the file's original logical order.
    pub keys: Vec<ChunkKey>,
}

impl KeyRecipe {
    /// Creates an empty key recipe.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Serializes to bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.keys.len() * 32);
        out.extend_from_slice(&(self.keys.len() as u32).to_le_bytes());
        for key in &self.keys {
            out.extend_from_slice(&key.0);
        }
        out
    }

    /// Deserializes from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MleError::Malformed`] on truncated or invalid input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MleError> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let count = cursor.read_u32()? as usize;
        let mut keys = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let raw = cursor.read_slice(32)?;
            let mut key = [0u8; 32];
            key.copy_from_slice(raw);
            keys.push(ChunkKey(key));
        }
        cursor.expect_end()?;
        Ok(KeyRecipe { keys })
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn read_slice(&mut self, len: usize) -> Result<&'a [u8], MleError> {
        if self.pos + len > self.bytes.len() {
            return Err(MleError::Malformed("truncated recipe"));
        }
        let s = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn read_u32(&mut self) -> Result<u32, MleError> {
        let s = self.read_slice(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn read_u64(&mut self) -> Result<u64, MleError> {
        let s = self.read_slice(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn expect_end(&self) -> Result<(), MleError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(MleError::Malformed("trailing bytes after recipe"))
        }
    }
}

/// A sealed (conventionally encrypted + authenticated) metadata blob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBlob {
    /// Random nonce chosen by the caller (must be unique per seal).
    pub nonce: [u8; 16],
    /// AES-256-CTR encrypted payload.
    pub body: Vec<u8>,
    /// HMAC-SHA256 over nonce ‖ body (encrypt-then-MAC).
    pub tag: [u8; 32],
}

fn subkeys(user_key: &[u8; 32]) -> ([u8; 32], [u8; 32]) {
    let enc = kdf::derive_key(b"freqdedup-recipe", user_key, b"enc");
    let mac = kdf::derive_key(b"freqdedup-recipe", user_key, b"mac");
    (enc, mac)
}

/// Seals `plaintext` under the user's secret key with the caller-supplied
/// `nonce` (randomized encryption: callers must use fresh nonces).
#[must_use]
pub fn seal(user_key: &[u8; 32], nonce: &[u8; 16], plaintext: &[u8]) -> SealedBlob {
    let (enc, mac) = subkeys(user_key);
    let mut body = plaintext.to_vec();
    Aes256Ctr::new(&enc, nonce).apply_keystream(&mut body);
    let mut hm = HmacSha256::new(&mac);
    hm.update(nonce);
    hm.update(&body);
    SealedBlob {
        nonce: *nonce,
        body,
        tag: hm.finalize(),
    }
}

/// Opens a sealed blob, verifying authenticity before decrypting.
///
/// # Errors
///
/// Returns [`MleError::BadAuthentication`] when the tag does not verify
/// (wrong key or tampered blob).
pub fn open(user_key: &[u8; 32], blob: &SealedBlob) -> Result<Vec<u8>, MleError> {
    let (enc, mac) = subkeys(user_key);
    let mut hm = HmacSha256::new(&mac);
    hm.update(&blob.nonce);
    hm.update(&blob.body);
    let expected = hm.finalize();
    if !constant_time_eq(&expected, &blob.tag) {
        return Err(MleError::BadAuthentication);
    }
    let mut out = blob.body.clone();
    Aes256Ctr::new(&enc, &blob.nonce).apply_keystream(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recipe() -> FileRecipe {
        FileRecipe {
            file_name: "home/user/doc.txt".into(),
            chunks: vec![
                ChunkRecord::new(0xdead_beefu64, 8192),
                ChunkRecord::new(0xcafe_babeu64, 4096),
                ChunkRecord::new(0xdead_beefu64, 8192),
            ],
        }
    }

    #[test]
    fn file_recipe_round_trip() {
        let r = sample_recipe();
        assert_eq!(FileRecipe::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn empty_file_recipe_round_trip() {
        let r = FileRecipe::new("");
        assert_eq!(FileRecipe::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn key_recipe_round_trip() {
        let r = KeyRecipe {
            keys: vec![ChunkKey([1u8; 32]), ChunkKey([2u8; 32])],
        };
        assert_eq!(KeyRecipe::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn truncated_recipe_rejected() {
        let bytes = sample_recipe().to_bytes();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(
                FileRecipe::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_recipe().to_bytes();
        bytes.push(0);
        assert!(matches!(
            FileRecipe::from_bytes(&bytes),
            Err(MleError::Malformed(_))
        ));
    }

    #[test]
    fn seal_open_round_trip() {
        let key = [5u8; 32];
        let blob = seal(&key, &[1u8; 16], b"recipe payload");
        assert_eq!(open(&key, &blob).unwrap(), b"recipe payload");
    }

    #[test]
    fn sealing_is_randomized_by_nonce() {
        // Same plaintext, different nonces → different ciphertexts: recipes
        // do NOT leak equality, unlike deterministic chunk encryption.
        let key = [5u8; 32];
        let a = seal(&key, &[1u8; 16], b"same");
        let b = seal(&key, &[2u8; 16], b"same");
        assert_ne!(a.body, b.body);
    }

    #[test]
    fn tamper_detected() {
        let key = [5u8; 32];
        let mut blob = seal(&key, &[1u8; 16], b"payload");
        blob.body[0] ^= 1;
        assert_eq!(open(&key, &blob), Err(MleError::BadAuthentication));
    }

    #[test]
    fn wrong_key_rejected() {
        let blob = seal(&[5u8; 32], &[1u8; 16], b"payload");
        assert_eq!(open(&[6u8; 32], &blob), Err(MleError::BadAuthentication));
    }

    #[test]
    fn sealed_recipe_end_to_end() {
        let user_key = [9u8; 32];
        let recipe = sample_recipe();
        let blob = seal(&user_key, &[3u8; 16], &recipe.to_bytes());
        let opened = FileRecipe::from_bytes(&open(&user_key, &blob).unwrap()).unwrap();
        assert_eq!(opened, recipe);
    }
}
