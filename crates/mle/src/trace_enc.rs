//! Fingerprint-space encryption for the trace-driven evaluation (§7.1).
//!
//! The FSL and VM datasets contain only chunk fingerprints, not content, so
//! the paper simulates encryption by operating directly on fingerprints.
//! Deterministic MLE maps each plaintext fingerprint `M` to a ciphertext
//! fingerprint `C = F(secret, M)` — a pseudorandom, content-independent
//! bijection, exactly what an adversary tapping the upload stream of a
//! DupLESS-style system observes.
//!
//! [`GroundTruth`] records the cipher→plain mapping so attack results can be
//! scored; the adversary of course never sees it.

use std::collections::HashMap;

use freqdedup_crypto::hmac;
use freqdedup_trace::par::{self, ParConfig};
use freqdedup_trace::{Backup, ChunkRecord, Fingerprint};

/// The secret mapping from ciphertext fingerprints back to the plaintext
/// fingerprints they encrypt — the scoring oracle for inference attacks.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    map: HashMap<Fingerprint, Fingerprint>,
}

impl GroundTruth {
    /// Creates an empty ground truth.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that ciphertext chunk `cipher` encrypts plaintext chunk
    /// `plain`.
    ///
    /// # Panics
    ///
    /// Panics if `cipher` was already recorded with a *different* plaintext —
    /// that would mean the encryption scheme is not well-defined (two
    /// plaintexts produced the same ciphertext fingerprint).
    pub fn record(&mut self, cipher: Fingerprint, plain: Fingerprint) {
        if let Some(&existing) = self.map.get(&cipher) {
            assert_eq!(
                existing, plain,
                "ciphertext fingerprint {cipher} maps to two plaintexts"
            );
        } else {
            self.map.insert(cipher, plain);
        }
    }

    /// The true plaintext fingerprint of a ciphertext chunk.
    #[must_use]
    pub fn plain_of(&self, cipher: Fingerprint) -> Option<Fingerprint> {
        self.map.get(&cipher).copied()
    }

    /// Whether the inferred pair `(cipher, plain)` is correct.
    #[must_use]
    pub fn is_correct(&self, cipher: Fingerprint, plain: Fingerprint) -> bool {
        self.plain_of(cipher) == Some(plain)
    }

    /// Number of ciphertext fingerprints recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the ground truth is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(cipher, plain)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (Fingerprint, Fingerprint)> + '_ {
        self.map.iter().map(|(&c, &m)| (c, m))
    }

    /// Merges another ground truth into this one.
    ///
    /// # Panics
    ///
    /// Panics on conflicting entries (see [`GroundTruth::record`]).
    pub fn merge(&mut self, other: &GroundTruth) {
        for (c, m) in other.iter() {
            self.record(c, m);
        }
    }
}

/// A backup encrypted in fingerprint space, together with its ground truth.
#[derive(Clone, Debug)]
pub struct EncryptedBackup {
    /// The ciphertext chunk stream as the adversary sees it (logical order,
    /// before deduplication).
    pub backup: Backup,
    /// The secret cipher→plain mapping (for scoring only).
    pub truth: GroundTruth,
}

/// Deterministic MLE in fingerprint space: `C = HMAC(secret, M)` truncated to
/// 64 bits, sizes preserved (CTR encryption is length-preserving).
///
/// This models every deterministic scheme of §2.2 (convergent encryption and
/// server-aided MLE are indistinguishable from the adversary's viewpoint:
/// both are fixed pseudorandom mappings of chunk identity).
///
/// # Example
///
/// ```
/// use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
/// use freqdedup_trace::{Backup, ChunkRecord};
///
/// let enc = DeterministicTraceEncryptor::new(b"system secret");
/// let plain = Backup::from_chunks("b", vec![ChunkRecord::new(1u64, 8192)]);
/// let out = enc.encrypt_backup(&plain);
/// let c = out.backup.chunks[0];
/// assert_eq!(out.truth.plain_of(c.fp).unwrap().value(), 1);
/// assert_eq!(c.size, 8192);
/// ```
#[derive(Clone, Debug)]
pub struct DeterministicTraceEncryptor {
    secret: Vec<u8>,
}

impl DeterministicTraceEncryptor {
    /// Creates an encryptor with the given system-wide secret.
    #[must_use]
    pub fn new(secret: &[u8]) -> Self {
        DeterministicTraceEncryptor {
            secret: secret.to_vec(),
        }
    }

    /// Encrypts a single fingerprint.
    #[must_use]
    pub fn encrypt_fp(&self, plain: Fingerprint) -> Fingerprint {
        Fingerprint(hmac::hmac_u64(&self.secret, &plain.to_bytes()))
    }

    /// Encrypts a whole backup, producing the adversary's view plus the
    /// ground truth.
    #[must_use]
    pub fn encrypt_backup(&self, plain: &Backup) -> EncryptedBackup {
        let mut truth = GroundTruth::new();
        let mut out = Backup::new(plain.label.clone());
        // Deterministic encryption: cache per unique fingerprint.
        let mut memo: HashMap<Fingerprint, Fingerprint> = HashMap::new();
        for rec in plain {
            let cipher = *memo
                .entry(rec.fp)
                .or_insert_with(|| self.encrypt_fp(rec.fp));
            truth.record(cipher, rec.fp);
            out.push(ChunkRecord::new(cipher, rec.size));
        }
        EncryptedBackup { backup: out, truth }
    }

    /// [`Self::encrypt_backup`] with the HMAC work sharded across worker
    /// threads.
    ///
    /// The chunk stream is split into contiguous index shards; each worker
    /// encrypts its shard with a private per-shard memo (a fingerprint
    /// repeated across shards is re-hashed once per shard — deterministic
    /// encryption makes every computation of `F(secret, M)` equal, so the
    /// merged stream and ground truth are **bit-identical** to the
    /// sequential output at any thread count). Shard outputs are merged in
    /// index order on the calling thread.
    #[must_use]
    pub fn encrypt_backup_par(&self, plain: &Backup, par: ParConfig) -> EncryptedBackup {
        let threads = par.resolve();
        if threads <= 1 {
            return self.encrypt_backup(plain);
        }
        let shards = par::par_shards(threads, plain.chunks.len(), |_, range| {
            let mut memo: HashMap<Fingerprint, Fingerprint> = HashMap::new();
            plain.chunks[range]
                .iter()
                .map(|rec| {
                    let cipher = *memo
                        .entry(rec.fp)
                        .or_insert_with(|| self.encrypt_fp(rec.fp));
                    ChunkRecord::new(cipher, rec.size)
                })
                .collect::<Vec<ChunkRecord>>()
        });
        let mut truth = GroundTruth::new();
        let mut out = Backup::new(plain.label.clone());
        for (cipher_rec, plain_rec) in shards.into_iter().flatten().zip(&plain.chunks) {
            truth.record(cipher_rec.fp, plain_rec.fp);
            out.push(cipher_rec);
        }
        EncryptedBackup { backup: out, truth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backup(fps: &[u64]) -> Backup {
        Backup::from_chunks("t", fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
    }

    #[test]
    fn deterministic_mapping() {
        let enc = DeterministicTraceEncryptor::new(b"k");
        assert_eq!(
            enc.encrypt_fp(Fingerprint(5)),
            enc.encrypt_fp(Fingerprint(5))
        );
        assert_ne!(
            enc.encrypt_fp(Fingerprint(5)),
            enc.encrypt_fp(Fingerprint(6))
        );
    }

    #[test]
    fn frequency_distribution_preserved() {
        // The core leak: occurrence counts carry over to ciphertext space.
        let enc = DeterministicTraceEncryptor::new(b"k");
        let plain = backup(&[1, 1, 1, 2, 2, 3]);
        let out = enc.encrypt_backup(&plain);
        let freq = freqdedup_trace::stats::frequency_map(&out.backup);
        let mut counts: Vec<u64> = freq.values().copied().collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2, 3]);
    }

    #[test]
    fn order_preserved() {
        // Deterministic encryption does not reorder the stream — chunk
        // locality survives, which is what the locality attack exploits.
        let enc = DeterministicTraceEncryptor::new(b"k");
        let plain = backup(&[1, 2, 3, 1, 2, 3]);
        let out = enc.encrypt_backup(&plain);
        assert_eq!(out.backup.chunks[0].fp, out.backup.chunks[3].fp);
        assert_eq!(out.backup.chunks[1].fp, out.backup.chunks[4].fp);
        assert_ne!(out.backup.chunks[0].fp, out.backup.chunks[1].fp);
    }

    #[test]
    fn ground_truth_scores_correctly() {
        let enc = DeterministicTraceEncryptor::new(b"k");
        let out = enc.encrypt_backup(&backup(&[10, 20]));
        let c0 = out.backup.chunks[0].fp;
        assert!(out.truth.is_correct(c0, Fingerprint(10)));
        assert!(!out.truth.is_correct(c0, Fingerprint(20)));
        assert_eq!(out.truth.len(), 2);
    }

    #[test]
    fn secrets_matter() {
        let a = DeterministicTraceEncryptor::new(b"k1");
        let b = DeterministicTraceEncryptor::new(b"k2");
        assert_ne!(a.encrypt_fp(Fingerprint(1)), b.encrypt_fp(Fingerprint(1)));
    }

    #[test]
    fn sizes_preserved() {
        let enc = DeterministicTraceEncryptor::new(b"k");
        let plain = Backup::from_chunks(
            "t",
            vec![ChunkRecord::new(1u64, 4096), ChunkRecord::new(2u64, 777)],
        );
        let out = enc.encrypt_backup(&plain);
        assert_eq!(out.backup.chunks[0].size, 4096);
        assert_eq!(out.backup.chunks[1].size, 777);
    }

    #[test]
    fn parallel_encryption_identical_to_sequential() {
        // Duplicates deliberately straddle shard boundaries: each shard's
        // private memo re-derives the same deterministic ciphertext.
        let fps: Vec<u64> = (0..200u64).map(|i| i % 17).collect();
        let plain = Backup::from_chunks(
            "t",
            fps.iter()
                .map(|&f| ChunkRecord::new(f, 100 + f as u32))
                .collect(),
        );
        let enc = DeterministicTraceEncryptor::new(b"k");
        let seq = enc.encrypt_backup(&plain);
        for threads in [1usize, 2, 3, 8] {
            let par = enc.encrypt_backup_par(&plain, ParConfig::with_threads(threads));
            assert_eq!(par.backup.chunks, seq.backup.chunks, "threads {threads}");
            assert_eq!(par.backup.label, seq.backup.label);
            let mut pt: Vec<_> = par.truth.iter().collect();
            let mut st: Vec<_> = seq.truth.iter().collect();
            pt.sort_unstable();
            st.sort_unstable();
            assert_eq!(pt, st, "threads {threads}");
        }
    }

    #[test]
    fn parallel_encryption_of_empty_backup() {
        let enc = DeterministicTraceEncryptor::new(b"k");
        let out = enc.encrypt_backup_par(&backup(&[]), ParConfig::with_threads(8));
        assert!(out.backup.chunks.is_empty());
        assert!(out.truth.is_empty());
    }

    #[test]
    fn merge_ground_truths() {
        let enc = DeterministicTraceEncryptor::new(b"k");
        let a = enc.encrypt_backup(&backup(&[1, 2]));
        let b = enc.encrypt_backup(&backup(&[2, 3]));
        let mut merged = a.truth.clone();
        merged.merge(&b.truth);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    #[should_panic(expected = "maps to two plaintexts")]
    fn conflicting_truth_detected() {
        let mut t = GroundTruth::new();
        t.record(Fingerprint(1), Fingerprint(10));
        t.record(Fingerprint(1), Fingerprint(11));
    }
}
