//! Message-locked encryption (MLE) and the encrypted-deduplication key
//! machinery (paper §2.2).
//!
//! MLE derives each chunk's encryption key from the chunk content itself, so
//! identical plaintext chunks become identical ciphertext chunks and remain
//! deduplicable. This crate provides:
//!
//! * [`Mle`] — the scheme trait (key generation + deterministic
//!   encryption/decryption).
//! * [`convergent`] — convergent encryption (key = SHA-256 of the chunk),
//!   the classical MLE instantiation of Douceur et al.
//! * [`server_aided`] — DupLESS-style server-aided MLE: keys are derived by
//!   a [`server_aided::KeyServer`] holding a system-wide secret, behind a
//!   rate limiter, which defeats offline brute-force attacks.
//! * [`rce`] — random convergent encryption (Bellare et al.'s RCE variant):
//!   random per-chunk keys, but a *deterministic tag* for deduplication —
//!   included as a baseline showing that tags still leak the frequency
//!   distribution (§8).
//! * [`recipes`] — file recipes and key recipes, sealed under a user secret
//!   with conventional (non-deterministic) authenticated encryption (§2.2,
//!   §3.3: metadata is protected by conventional encryption).
//! * [`trace_enc`] — fingerprint-space encryption used by the trace-driven
//!   evaluation (§7.1), plus the ground-truth oracle for scoring attacks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergent;
pub mod rce;
pub mod recipes;
pub mod server_aided;
pub mod trace_enc;

use std::fmt;

/// A 256-bit chunk encryption key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkKey(pub [u8; 32]);

impl fmt::Debug for ChunkKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keys are secrets: show only a short, non-invertible preview.
        write!(f, "ChunkKey(…{:02x}{:02x})", self.0[30], self.0[31])
    }
}

/// Errors produced by MLE operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MleError {
    /// The key server refused the request (rate limit exhausted).
    RateLimited,
    /// Authentication failed while opening a sealed recipe.
    BadAuthentication,
    /// Malformed ciphertext (too short, bad framing).
    Malformed(&'static str),
}

impl fmt::Display for MleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MleError::RateLimited => write!(f, "key server rate limit exhausted"),
            MleError::BadAuthentication => write!(f, "authentication tag mismatch"),
            MleError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for MleError {}

/// A message-locked encryption scheme (§2.2).
///
/// Implementations must be **deterministic**: encrypting the same plaintext
/// twice yields byte-identical ciphertext, which is exactly the property the
/// paper's frequency-analysis attacks exploit.
pub trait Mle {
    /// Derives the message-locked key for `plaintext`.
    ///
    /// # Errors
    ///
    /// Returns [`MleError::RateLimited`] for server-aided schemes whose key
    /// server refuses the derivation.
    fn derive_key(&self, plaintext: &[u8]) -> Result<ChunkKey, MleError>;

    /// Encrypts `plaintext` under `key`. Length-preserving (AES-256-CTR).
    fn encrypt_with_key(&self, key: &ChunkKey, plaintext: &[u8]) -> Vec<u8>;

    /// Decrypts `ciphertext` under `key`.
    fn decrypt_with_key(&self, key: &ChunkKey, ciphertext: &[u8]) -> Vec<u8>;

    /// Convenience: derive the key and encrypt in one call.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::derive_key`] failures.
    fn encrypt(&self, plaintext: &[u8]) -> Result<(ChunkKey, Vec<u8>), MleError> {
        let key = self.derive_key(plaintext)?;
        let ct = self.encrypt_with_key(&key, plaintext);
        Ok((key, ct))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_key_debug_redacted() {
        let key = ChunkKey([0x42; 32]);
        let s = format!("{key:?}");
        // Only the last two bytes are shown.
        assert_eq!(s.matches("42").count(), 2, "{s}");
    }

    #[test]
    fn error_display() {
        assert!(MleError::RateLimited.to_string().contains("rate limit"));
        assert!(MleError::BadAuthentication.to_string().contains("tag"));
        assert!(MleError::Malformed("x").to_string().contains('x'));
    }
}
