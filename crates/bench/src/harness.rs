//! Attack/defense experiment drivers shared by the figure binaries.

use freqdedup_chunking::segment::SegmentParams;
use freqdedup_core::attacks::locality::LocalityParams;
use freqdedup_core::attacks::{self, AttackKind};
use freqdedup_core::defense::{DefenseScheme, KeyContext};
use freqdedup_core::metrics::{self, InferenceReport};
use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
use freqdedup_trace::Backup;

/// The system-wide MLE secret used by all experiments (arbitrary; the
/// adversary never learns it).
pub const MLE_SECRET: &[u8] = b"freqdedup-experiment-secret";

/// The determinism seed every experiment hands to its defense scheme.
pub const DEFENSE_SEED: u64 = 0xdef;

/// The experiment-wide [`KeyContext`]: [`MLE_SECRET`] + [`DEFENSE_SEED`].
#[must_use]
pub fn key_context() -> KeyContext {
    KeyContext::new(MLE_SECRET, DEFENSE_SEED)
}

/// The paper's default attack parameters for ciphertext-only experiments
/// (§5.3.2): `u=1, v=15, w=200,000`.
#[must_use]
pub fn co_params() -> LocalityParams {
    LocalityParams::new(1, 15, 200_000)
}

/// The paper's known-plaintext parameters (§5.3.3): `w` raised to 500,000.
#[must_use]
pub fn kp_params() -> LocalityParams {
    LocalityParams::new(1, 15, 500_000)
}

/// Runs `kind` in ciphertext-only mode against deterministically encrypted
/// `target_plain`, using `aux_plain` as the auxiliary information, and
/// scores it.
#[must_use]
pub fn run_ciphertext_only(
    kind: AttackKind,
    aux_plain: &Backup,
    target_plain: &Backup,
    params: &LocalityParams,
) -> InferenceReport {
    let enc = DeterministicTraceEncryptor::new(MLE_SECRET);
    let observed = enc.encrypt_backup(target_plain);
    let inferred = attacks::run_ciphertext_only(kind, &observed.backup, aux_plain, params);
    metrics::score(&inferred, &observed.backup, &observed.truth)
}

/// Runs `kind` in known-plaintext mode with `leakage_rate` of the target's
/// unique ciphertext chunks leaked (sampled with `leak_seed`).
#[must_use]
pub fn run_known_plaintext(
    kind: AttackKind,
    aux_plain: &Backup,
    target_plain: &Backup,
    params: &LocalityParams,
    leakage_rate: f64,
    leak_seed: u64,
) -> InferenceReport {
    let enc = DeterministicTraceEncryptor::new(MLE_SECRET);
    let observed = enc.encrypt_backup(target_plain);
    let leaked = metrics::leak_pairs(&observed.backup, &observed.truth, leakage_rate, leak_seed);
    let inferred = attacks::run_known_plaintext(kind, &observed.backup, aux_plain, &leaked, params);
    metrics::score(&inferred, &observed.backup, &observed.truth)
}

/// Runs the advanced attack in known-plaintext mode against a **defended**
/// target (Fig. 10): the target is encrypted with `scheme` — any
/// [`DefenseScheme`] implementation — under the experiment-wide
/// [`key_context`] instead of plain deterministic MLE.
#[must_use]
pub fn run_defended(
    scheme: &dyn DefenseScheme,
    aux_plain: &Backup,
    target_plain: &Backup,
    params: &LocalityParams,
    leakage_rate: f64,
    leak_seed: u64,
) -> InferenceReport {
    let observed = scheme.encrypt_backup(target_plain, &key_context());
    let leaked = metrics::leak_pairs(&observed.backup, &observed.truth, leakage_rate, leak_seed);
    let inferred = attacks::run_known_plaintext(
        AttackKind::Advanced,
        &observed.backup,
        aux_plain,
        &leaked,
        params,
    );
    metrics::score(&inferred, &observed.backup, &observed.truth)
}

/// Segmentation parameters for a dataset's average chunk size (the paper's
/// 512 KB / 1 MB / 2 MB segments).
#[must_use]
pub fn segment_params(avg_chunk_size: u32) -> SegmentParams {
    SegmentParams::paper_default(avg_chunk_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::ChunkRecord;

    fn chain_backup(label: &str, start: u64, n: u64) -> Backup {
        let mut fps: Vec<ChunkRecord> = Vec::new();
        for _ in 0..30 {
            fps.push(ChunkRecord::new(1u64, 8192));
            fps.push(ChunkRecord::new(2u64, 8192));
            fps.push(ChunkRecord::new(2u64, 8192));
        }
        fps.extend((start..start + n).map(|i| ChunkRecord::new(i, 8192)));
        Backup::from_chunks(label, fps)
    }

    #[test]
    fn ciphertext_only_pipeline() {
        let aux = chain_backup("aux", 1000, 500);
        let target = chain_backup("target", 1000, 500);
        let r = run_ciphertext_only(AttackKind::Locality, &aux, &target, &co_params());
        assert!(r.rate > 0.9, "rate {}", r.rate);
        let basic = run_ciphertext_only(AttackKind::Basic, &aux, &target, &co_params());
        assert!(basic.rate < r.rate);
    }

    #[test]
    fn known_plaintext_beats_ciphertext_only_under_defense() {
        let aux = chain_backup("aux", 1000, 2000);
        let target = chain_backup("target", 1000, 2000);
        let scheme =
            freqdedup_core::defense::MinHashScrambleScheme::combined(segment_params(8192), 1);
        let defended = run_defended(&scheme, &aux, &target, &kp_params(), 0.002, 7);
        let undefended =
            run_known_plaintext(AttackKind::Advanced, &aux, &target, &kp_params(), 0.002, 7);
        assert!(
            defended.rate < undefended.rate,
            "defense did not reduce the rate: {} vs {}",
            defended.rate,
            undefended.rate
        );
    }
}
