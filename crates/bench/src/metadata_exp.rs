//! Shared driver for the metadata-access experiments (Figures 13 and 14).

use freqdedup_core::defense::MinHashScrambleScheme;
use freqdedup_store::engine::{DedupConfig, DedupEngine};
use freqdedup_store::stats::MetadataAccess;
use freqdedup_trace::BackupSeries;

use crate::{data, harness, output};

/// Result of ingesting one series: per-backup metadata-access deltas.
#[derive(Clone, Debug)]
pub struct MetadataRun {
    /// Backup labels, in ingest order.
    pub labels: Vec<String>,
    /// Per-backup metadata access (delta, not cumulative).
    pub per_backup: Vec<MetadataAccess>,
}

impl MetadataRun {
    /// Total metadata bytes across all backups.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.per_backup
            .iter()
            .map(MetadataAccess::total_bytes)
            .sum()
    }
}

/// Ingests a series through the DDFS-like engine and records per-backup
/// metadata-access deltas. `cache_entries` sizes the fingerprint cache.
#[must_use]
pub fn ingest(series: &BackupSeries, cache_entries: usize) -> MetadataRun {
    let total_unique: usize = {
        let mut seen = std::collections::HashSet::new();
        for b in series {
            for rec in b {
                seen.insert(rec.fp);
            }
        }
        seen.len()
    };
    let mut engine = DedupEngine::new(DedupConfig {
        container_bytes: 4 * 1024 * 1024,
        cache_entries,
        entry_bytes: 32,
        bloom_expected: (total_unique as u64).max(1024),
        bloom_fp_rate: 0.01,
        index_shards: 1,
        persist: None,
    })
    .expect("valid config");

    let mut labels = Vec::new();
    let mut per_backup = Vec::new();
    let mut prev = MetadataAccess::default();
    for backup in series {
        engine.ingest_backup(backup);
        let now = engine.metadata_access();
        labels.push(backup.label.clone());
        per_backup.push(now - prev);
        prev = now;
    }
    engine.finish();
    MetadataRun { labels, per_backup }
}

/// Counts distinct fingerprints across a series.
#[must_use]
pub fn unique_fingerprints(series: &BackupSeries) -> usize {
    let mut seen = std::collections::HashSet::new();
    for b in series {
        for rec in b {
            seen.insert(rec.fp);
        }
    }
    seen.len()
}

/// Runs the full Figure 13/14 experiment: the FSL series under plain MLE and
/// under the combined defense, through a cache holding `cache_frac` of the
/// total fingerprint population (the paper's 512 MB ≈ 25% of fingerprint
/// metadata; 4 GB ≈ 200%).
pub fn run(scale: f64, seed: Option<u64>, cache_frac: f64, csv: bool) {
    let series = data::fsl_series(scale, seed);
    let scheme = MinHashScrambleScheme::combined(harness::segment_params(8192), 0xdef);

    // Under plain deterministic MLE the ciphertext stream has exactly the
    // plaintext's fingerprint structure, so ingest the plaintext series;
    // the combined scheme changes both the fingerprints and the order.
    let (defended, _) = scheme.encrypt_series(&series);

    let n_mle = unique_fingerprints(&series);
    let n_comb = unique_fingerprints(&defended);
    let cache_entries = ((n_mle as f64) * cache_frac) as usize;
    println!(
        "# cache: {cache_entries} entries (= {} of {} unique MLE fingerprints, {} combined)",
        format_args!("{:.0}%", cache_frac * 100.0),
        n_mle,
        n_comb
    );

    let mle = ingest(&series, cache_entries);
    let comb = ingest(&defended, cache_entries);

    let mut overall = output::Table::new(&["backup", "mle_MiB", "combined_MiB", "overhead_%"]);
    for i in 0..mle.labels.len() {
        let m = mle.per_backup[i].total_bytes();
        let c = comb.per_backup[i].total_bytes();
        let overhead = if m == 0 {
            0.0
        } else {
            (c as f64 - m as f64) / m as f64 * 100.0
        };
        overall.push_row(vec![
            mle.labels[i].clone(),
            output::mib(m),
            output::mib(c),
            format!("{overhead:+.1}"),
        ]);
    }
    println!("\n## (a) overall metadata access per backup");
    overall.print(csv);

    for (name, run) in [("MLE", &mle), ("combined", &comb)] {
        let mut breakdown = output::Table::new(&[
            "backup",
            "update_MiB",
            "index_MiB",
            "loading_MiB",
            "loading_frac_%",
        ]);
        for (label, m) in run.labels.iter().zip(&run.per_backup) {
            breakdown.push_row(vec![
                label.clone(),
                output::mib(m.update_bytes),
                output::mib(m.index_bytes),
                output::mib(m.loading_bytes),
                format!("{:.1}", m.loading_fraction() * 100.0),
            ]);
        }
        println!("\n## breakdown for {name}");
        breakdown.print(csv);
    }
}
