//! Experiment harness shared by the per-figure binaries.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (see DESIGN.md §4 for the full index). They share:
//!
//! * [`cli`] — a tiny flag parser (`--scale`, `--seed`, `--csv`);
//! * [`data`] — dataset construction at a given scale;
//! * [`harness`] — attack/defense experiment drivers;
//! * [`output`] — aligned table and CSV emission.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod data;
pub mod harness;
pub mod metadata_exp;
pub mod output;
