//! Minimal command-line parsing for the experiment binaries.

/// Common experiment flags.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Dataset scale factor (1.0 = the default reproduction scale).
    pub scale: f64,
    /// Master seed override.
    pub seed: Option<u64>,
    /// Emit machine-readable CSV instead of the aligned table.
    pub csv: bool,
    /// Worker threads for the parallel pipeline stages (1 = sequential,
    /// 0 = auto-detect; results are bit-identical at any value).
    pub threads: usize,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            scale: 1.0,
            seed: None,
            csv: false,
            threads: 1,
        }
    }
}

/// Parses `--scale <f64>`, `--seed <u64>`, `--threads <usize>` and `--csv`
/// from an argument iterator; unknown flags abort with a usage message.
///
/// # Panics
///
/// Exits the process (status 2) on malformed arguments.
#[must_use]
pub fn parse(args: impl Iterator<Item = String>, usage: &str) -> CommonArgs {
    let mut out = CommonArgs::default();
    let mut it = args.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die(usage, "--scale needs a value"));
                out.scale = v
                    .parse()
                    .unwrap_or_else(|_| die(usage, "--scale must be a number"));
                if out.scale <= 0.0 {
                    die::<f64>(usage, "--scale must be positive");
                }
            }
            "--seed" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die(usage, "--seed needs a value"));
                out.seed = Some(
                    v.parse()
                        .unwrap_or_else(|_| die(usage, "--seed must be an integer")),
                );
            }
            "--threads" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die(usage, "--threads needs a value"));
                out.threads = v
                    .parse()
                    .unwrap_or_else(|_| die(usage, "--threads must be an integer (0 = auto)"));
            }
            "--csv" => out.csv = true,
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                die::<()>(usage, &format!("unknown flag {other}"));
            }
        }
    }
    out
}

fn die<T>(usage: &str, msg: &str) -> T {
    eprintln!("error: {msg}\n{usage}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> impl Iterator<Item = String> {
        v.iter()
            .map(|s| (*s).to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn defaults() {
        let a = parse(args(&[]), "u");
        assert!((a.scale - 1.0).abs() < 1e-12);
        assert_eq!(a.seed, None);
        assert!(!a.csv);
        assert_eq!(a.threads, 1);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(
            args(&["--scale", "0.5", "--seed", "7", "--csv", "--threads", "8"]),
            "u",
        );
        assert!((a.scale - 0.5).abs() < 1e-12);
        assert_eq!(a.seed, Some(7));
        assert!(a.csv);
        assert_eq!(a.threads, 8);
    }

    #[test]
    fn threads_zero_means_auto() {
        let a = parse(args(&["--threads", "0"]), "u");
        assert_eq!(a.threads, 0);
    }
}
