//! Table/CSV output for the experiment binaries.

/// A simple result table: header row plus data rows, printed either as an
/// aligned text table (human) or CSV (machines).
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as an aligned text table.
    #[must_use]
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints CSV when `csv` is set, the aligned table otherwise.
    pub fn print(&self, csv: bool) {
        if csv {
            print!("{}", self.to_csv());
        } else {
            print!("{}", self.to_aligned());
        }
    }
}

/// Formats a rate as a percentage with adaptive precision (tiny rates keep
/// significant digits, like the paper's "0.0001%").
#[must_use]
pub fn pct(rate: f64) -> String {
    let p = rate * 100.0;
    if p == 0.0 {
        "0".into()
    } else if p < 0.01 {
        format!("{p:.4}")
    } else if p < 1.0 {
        format!("{p:.3}")
    } else {
        format!("{p:.1}")
    }
}

/// Formats a byte count as mebibytes with one decimal.
#[must_use]
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn aligned_pads() {
        let mut t = Table::new(&["col", "x"]);
        t.push_row(vec!["1".into(), "value".into()]);
        let s = t.to_aligned();
        assert!(s.contains("col"));
        assert!(s.contains("value"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_checked() {
        let mut t = Table::new(&["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0), "0");
        assert_eq!(pct(0.232), "23.2");
        assert_eq!(pct(0.000001), "0.0001");
        assert_eq!(pct(0.0023), "0.230");
    }

    #[test]
    fn mib_formats() {
        assert_eq!(mib(1024 * 1024), "1.0");
        assert_eq!(mib(1536 * 1024), "1.5");
    }
}
