//! Dataset construction at a configurable scale.
//!
//! `scale = 1.0` is the default reproduction scale (see DESIGN.md §4 for
//! the sizes); smaller scales run faster for smoke tests, larger scales
//! approach the paper's population sizes.

use freqdedup_datasets::{fsl, synthetic, vm};
use freqdedup_trace::BackupSeries;

/// The three datasets of the evaluation (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// FSL-like: 6 users × 5 monthly fulls, variable 8 KB chunks.
    Fsl,
    /// Synthetic: 10 content-level snapshots chunked at 8 KB average.
    Synthetic,
    /// VM-like: 20 users × 13 weekly fulls, fixed 4 KB chunks.
    Vm,
}

impl Dataset {
    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Fsl => "FSL",
            Dataset::Synthetic => "Synthetic",
            Dataset::Vm => "VM",
        }
    }

    /// Average chunk size, used to derive segmentation parameters.
    #[must_use]
    pub fn avg_chunk_size(self) -> u32 {
        match self {
            Dataset::Fsl | Dataset::Synthetic => 8 * 1024,
            Dataset::Vm => 4 * 1024,
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the FSL-like series at `scale` (chunks per user = 20,000·scale).
#[must_use]
pub fn fsl_series(scale: f64, seed: Option<u64>) -> BackupSeries {
    let mut cfg = fsl::FslConfig::scaled(((20_000.0 * scale) as usize).max(500));
    if let Some(s) = seed {
        cfg.seed = s;
    }
    fsl::generate(&cfg)
}

/// Builds the VM-like series at `scale` (base image = 12,000·scale chunks).
#[must_use]
pub fn vm_series(scale: f64, seed: Option<u64>) -> BackupSeries {
    let mut cfg = vm::VmConfig::scaled(
        ((12_000.0 * scale) as usize).max(500),
        ((3_000.0 * scale) as usize).max(100),
    );
    if let Some(s) = seed {
        cfg.seed = s;
    }
    vm::generate(&cfg)
}

/// Builds the synthetic content series at `scale`
/// (initial volume = 32 MiB·scale), chunked at 8 KB average.
#[must_use]
pub fn synthetic_series(scale: f64, seed: Option<u64>) -> BackupSeries {
    let mut cfg = synthetic::SyntheticConfig::scaled(
        ((32.0 * 1024.0 * 1024.0 * scale) as usize).max(256 * 1024),
    );
    if let Some(s) = seed {
        cfg.seed = s;
    }
    let cdc = freqdedup_chunking::cdc::CdcParams::paper_8kb();
    synthetic::generate_series(&cfg, &cdc)
}

/// Builds one dataset by kind.
#[must_use]
pub fn series(dataset: Dataset, scale: f64, seed: Option<u64>) -> BackupSeries {
    match dataset {
        Dataset::Fsl => fsl_series(scale, seed),
        Dataset::Synthetic => synthetic_series(scale, seed),
        Dataset::Vm => vm_series(scale, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scales_build() {
        assert_eq!(fsl_series(0.05, None).len(), 5);
        assert_eq!(vm_series(0.05, None).len(), 13);
        assert_eq!(synthetic_series(0.02, None).len(), 10);
    }

    #[test]
    fn names() {
        assert_eq!(Dataset::Fsl.name(), "FSL");
        assert_eq!(Dataset::Vm.to_string(), "VM");
        assert_eq!(Dataset::Synthetic.avg_chunk_size(), 8192);
        assert_eq!(Dataset::Vm.avg_chunk_size(), 4096);
    }
}
