//! Figure 5: inference rate in ciphertext-only mode — fixed target (the
//! latest backup), varying the auxiliary backup.
//!
//! Paper shape: the basic attack is negligible everywhere (≤ 0.02%); the
//! locality-based and advanced attacks climb as the auxiliary backup gets
//! closer to the target, reaching tens of percent with the most recent
//! auxiliary; the advanced attack dominates the locality attack on
//! variable-size datasets and equals it on the fixed-size VM dataset, where
//! backups before the heavy-activity window are nearly useless as auxiliary
//! information.

use freqdedup_bench::{cli, data, harness, output};
use freqdedup_core::attacks::AttackKind;

const USAGE: &str = "fig05_vary_aux [--scale f] [--seed n] [--threads t] [--csv]";

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Figure 5: ciphertext-only inference rate, varying auxiliary backup");
    for dataset in [
        data::Dataset::Fsl,
        data::Dataset::Synthetic,
        data::Dataset::Vm,
    ] {
        let series = data::series(dataset, args.scale, args.seed);
        let target = series.latest().expect("non-empty series");
        let mut table = output::Table::new(&[
            "dataset",
            "aux_backup",
            "basic_%",
            "locality_%",
            "advanced_%",
        ]);
        for aux_idx in 0..series.len() - 1 {
            let aux = series.get(aux_idx).expect("aux");
            let params = harness::co_params().threads(args.threads);
            let basic = harness::run_ciphertext_only(AttackKind::Basic, aux, target, &params);
            let locality = harness::run_ciphertext_only(AttackKind::Locality, aux, target, &params);
            // On fixed-size chunking the advanced attack is identical.
            let advanced = if dataset == data::Dataset::Vm {
                locality
            } else {
                harness::run_ciphertext_only(AttackKind::Advanced, aux, target, &params)
            };
            table.push_row(vec![
                dataset.name().into(),
                aux.label.clone(),
                output::pct(basic.rate),
                output::pct(locality.rate),
                output::pct(advanced.rate),
            ]);
        }
        println!("\n## {dataset} dataset (target: {})", target.label);
        table.print(args.csv);
    }
}
