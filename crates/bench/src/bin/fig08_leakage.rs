//! Figure 8: inference rate in known-plaintext mode, varying the leakage
//! rate (0–0.2% of the target's unique ciphertext chunks).
//!
//! Paper setup: FSL Mar 22 → May 21, synthetic snap-00 → snap-05, VM week 9
//! → week 13; `w` raised to 500,000. Paper shape: a tiny leakage lifts the
//! inference rate substantially (every leaked pair seeds new crawls).

use freqdedup_bench::{cli, data, harness, output};
use freqdedup_core::attacks::AttackKind;

const USAGE: &str = "fig08_leakage [--scale f] [--seed n] [--threads t] [--csv]";

/// (dataset, aux index, target index) per the paper's §5.3.3 setup.
pub const PAIRS: [(data::Dataset, usize, usize); 3] = [
    (data::Dataset::Fsl, 2, 4),
    (data::Dataset::Synthetic, 0, 5),
    (data::Dataset::Vm, 8, 12),
];

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Figure 8: known-plaintext mode, varying leakage rate");
    let mut table = output::Table::new(&["dataset", "leakage_%", "locality_%", "advanced_%"]);
    for (dataset, aux_idx, target_idx) in PAIRS {
        let series = data::series(dataset, args.scale, args.seed);
        let aux = series.get(aux_idx).expect("aux");
        let target = series.get(target_idx).expect("target");
        let params = harness::kp_params().threads(args.threads);
        for leakage in [0.0, 0.0005, 0.001, 0.0015, 0.002] {
            let locality = harness::run_known_plaintext(
                AttackKind::Locality,
                aux,
                target,
                &params,
                leakage,
                42,
            );
            let advanced = if dataset == data::Dataset::Vm {
                locality
            } else {
                harness::run_known_plaintext(
                    AttackKind::Advanced,
                    aux,
                    target,
                    &params,
                    leakage,
                    42,
                )
            };
            table.push_row(vec![
                dataset.name().into(),
                format!("{:.2}", leakage * 100.0),
                output::pct(locality.rate),
                output::pct(advanced.rate),
            ]);
        }
    }
    table.print(args.csv);
}
