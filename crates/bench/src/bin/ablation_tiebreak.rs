//! Ablation: tie-break policy in frequency analysis.
//!
//! §4.1 of the paper notes that "how to break a tie during sorting also
//! affects the frequency rank and hence the inference results". This
//! ablation quantifies just how much: the locality attack is run twice on
//! the same FSL pair, once with the paper's sequential-list neighbour order
//! (`StreamOrder`, ties stay aligned across versions) and once with
//! fingerprint key order (`KeyOrder`, ties randomize). The gap is typically
//! an order of magnitude — the single most result-sensitive implementation
//! detail in the whole attack.

use freqdedup_bench::{cli, data, harness, output};
use freqdedup_core::attacks::locality::LocalityAttack;
use freqdedup_core::counting::TiePolicy;
use freqdedup_core::metrics;
use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;

const USAGE: &str = "ablation_tiebreak [--scale f] [--seed n] [--threads t] [--csv]";

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Ablation: neighbour-table tie-break policy (locality attack, ciphertext-only)");
    let mut table = output::Table::new(&["dataset", "aux_backup", "stream_order_%", "key_order_%"]);
    for dataset in [data::Dataset::Fsl, data::Dataset::Vm] {
        let series = data::series(dataset, args.scale, args.seed);
        let target = series.latest().expect("non-empty");
        let enc = DeterministicTraceEncryptor::new(harness::MLE_SECRET);
        let observed = enc.encrypt_backup(target);
        for aux_idx in [series.len() - 3, series.len() - 2] {
            let aux = series.get(aux_idx).expect("aux");
            let mut rates = Vec::new();
            for policy in [TiePolicy::StreamOrder, TiePolicy::KeyOrder] {
                let attack = LocalityAttack::new(
                    harness::co_params()
                        .threads(args.threads)
                        .tie_policy(policy),
                );
                let inferred = attack.run_ciphertext_only(&observed.backup, aux);
                rates.push(metrics::score(&inferred, &observed.backup, &observed.truth).rate);
            }
            table.push_row(vec![
                dataset.name().into(),
                aux.label.clone(),
                output::pct(rates[0]),
                output::pct(rates[1]),
            ]);
        }
    }
    table.print(args.csv);
}
