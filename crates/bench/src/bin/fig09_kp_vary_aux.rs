//! Figure 9: inference rate in known-plaintext mode (leakage fixed at
//! 0.05%), varying the auxiliary backup.
//!
//! Same targets as Figure 8. Paper shape: the same recency gradient as
//! Figure 5, uniformly lifted by the leaked seeds.

use freqdedup_bench::{cli, data, harness, output};
use freqdedup_core::attacks::AttackKind;

const USAGE: &str = "fig09_kp_vary_aux [--scale f] [--seed n] [--threads t] [--csv]";

/// Per-dataset target index (same as Figure 8).
const TARGETS: [(data::Dataset, usize); 3] = [
    (data::Dataset::Fsl, 4),
    (data::Dataset::Synthetic, 5),
    (data::Dataset::Vm, 12),
];

const LEAKAGE: f64 = 0.0005; // 0.05%

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Figure 9: known-plaintext mode (leakage 0.05%), varying auxiliary backup");
    for (dataset, target_idx) in TARGETS {
        let series = data::series(dataset, args.scale, args.seed);
        let target = series.get(target_idx).expect("target");
        let params = harness::kp_params().threads(args.threads);
        let mut table = output::Table::new(&["dataset", "aux_backup", "locality_%", "advanced_%"]);
        for aux_idx in 0..target_idx {
            let aux = series.get(aux_idx).expect("aux");
            let locality = harness::run_known_plaintext(
                AttackKind::Locality,
                aux,
                target,
                &params,
                LEAKAGE,
                42,
            );
            let advanced = if dataset == data::Dataset::Vm {
                locality
            } else {
                harness::run_known_plaintext(
                    AttackKind::Advanced,
                    aux,
                    target,
                    &params,
                    LEAKAGE,
                    42,
                )
            };
            table.push_row(vec![
                dataset.name().into(),
                aux.label.clone(),
                output::pct(locality.rate),
                output::pct(advanced.rate),
            ]);
        }
        println!("\n## {dataset} dataset (target: {})", target.label);
        table.print(args.csv);
    }
}
