//! Figure 11: storage efficiency — cumulative storage saving after each
//! backup, original MLE (exact chunk dedup) vs. the combined MinHash +
//! scrambling scheme.
//!
//! Paper shape: the combined scheme tracks MLE closely, ending at most a few
//! percentage points lower (3.6% FSL, ~3% synthetic, 0.7% VM).

use freqdedup_bench::{cli, data, harness, output};
use freqdedup_core::defense::MinHashScrambleScheme;
use freqdedup_trace::stats::DedupAccumulator;

const USAGE: &str = "fig11_storage_saving [--scale f] [--seed n] [--csv]";

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Figure 11: cumulative storage saving, MLE vs Combined");
    for dataset in [
        data::Dataset::Fsl,
        data::Dataset::Synthetic,
        data::Dataset::Vm,
    ] {
        let series = data::series(dataset, args.scale, args.seed);
        let scheme = MinHashScrambleScheme::combined(
            harness::segment_params(dataset.avg_chunk_size()),
            0xdef,
        );
        let (defended, _) = scheme.encrypt_series(&series);

        let mut table = output::Table::new(&[
            "dataset",
            "backup",
            "mle_saving_%",
            "combined_saving_%",
            "delta_pp",
        ]);
        let mut mle_acc = DedupAccumulator::new();
        let mut combined_acc = DedupAccumulator::new();
        for (plain, enc) in series.iter().zip(defended.iter()) {
            mle_acc.add_backup(plain);
            combined_acc.add_backup(enc);
            let mle = mle_acc.storage_saving() * 100.0;
            let comb = combined_acc.storage_saving() * 100.0;
            table.push_row(vec![
                dataset.name().into(),
                plain.label.clone(),
                format!("{mle:.1}"),
                format!("{comb:.1}"),
                format!("{:.2}", mle - comb),
            ]);
        }
        println!(
            "\n## {dataset} dataset (final dedup ratio: MLE {:.1}x, combined {:.1}x)",
            mle_acc.dedup_ratio(),
            combined_acc.dedup_ratio()
        );
        table.print(args.csv);
    }
}
