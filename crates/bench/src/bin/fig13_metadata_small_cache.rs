//! Figure 13: on-disk metadata access through the DDFS-like prototype with a
//! fingerprint cache **too small to hold every fingerprint** (the paper's
//! 512 MB cache ≈ 25% of the FSL fingerprint metadata).
//!
//! Paper shape: the combined scheme costs at most ≈ +1.2% extra metadata
//! access vs MLE (it stores more unique chunks, so it prefetches more), the
//! first backup is cheaper for the combined scheme, and loading access
//! dominates (≥ 74% of all metadata traffic).

use freqdedup_bench::{cli, metadata_exp};

const USAGE: &str = "fig13_metadata_small_cache [--scale f] [--seed n] [--csv]";

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Figure 13: metadata access, small fingerprint cache (25% of fingerprints)");
    metadata_exp::run(args.scale, args.seed, 0.25, args.csv);
}
