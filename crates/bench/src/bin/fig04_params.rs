//! Figure 4: impact of the locality-attack parameters `u`, `v`, `w` on the
//! inference rate (ciphertext-only mode).
//!
//! Paper setup: FSL with the Mar 22 backup as auxiliary information against
//! the May 21 target; VM with week 12 against week 13. Paper shape: the rate
//! *decreases* with `u` (bad seeds pollute the inferred set), peaks around
//! `v = 15`, and increases with `w` until saturating around 200,000.

use freqdedup_bench::{cli, data, harness, output};
use freqdedup_core::attacks::locality::{LocalityAttack, LocalityParams};
use freqdedup_core::metrics;
use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
use freqdedup_trace::Backup;

const USAGE: &str = "fig04_params [--scale f] [--seed n] [--threads t] [--csv]";

fn rate(u: usize, v: usize, w: usize, threads: usize, aux: &Backup, target: &Backup) -> f64 {
    let enc = DeterministicTraceEncryptor::new(harness::MLE_SECRET);
    let observed = enc.encrypt_backup(target);
    let attack = LocalityAttack::new(LocalityParams::new(u, v, w).threads(threads));
    let inferred = attack.run_ciphertext_only(&observed.backup, aux);
    metrics::score(&inferred, &observed.backup, &observed.truth).rate
}

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Figure 4: locality-attack parameter sensitivity (ciphertext-only)");

    let fsl = data::fsl_series(args.scale, args.seed);
    let vm = data::vm_series(args.scale, args.seed);
    let pairs: [(&str, &Backup, &Backup); 2] = [
        ("FSL", fsl.get(2).unwrap(), fsl.get(4).unwrap()),
        ("VM", vm.get(11).unwrap(), vm.get(12).unwrap()),
    ];

    // (a) varying u, fixed v=20, w=100,000.
    let mut ta = output::Table::new(&["dataset", "u", "inference_%"]);
    for &(name, aux, target) in &pairs {
        for u in [1usize, 3, 5, 7, 10, 13, 15, 17, 20] {
            ta.push_row(vec![
                name.into(),
                u.to_string(),
                output::pct(rate(u, 20, 100_000, args.threads, aux, target)),
            ]);
        }
    }
    println!("\n## (a) varying u (v=20, w=100,000)");
    ta.print(args.csv);

    // (b) varying v, fixed u=10, w=100,000.
    let mut tb = output::Table::new(&["dataset", "v", "inference_%"]);
    for &(name, aux, target) in &pairs {
        for v in [5usize, 10, 15, 20, 25, 30, 35, 40] {
            tb.push_row(vec![
                name.into(),
                v.to_string(),
                output::pct(rate(10, v, 100_000, args.threads, aux, target)),
            ]);
        }
    }
    println!("\n## (b) varying v (u=10, w=100,000)");
    tb.print(args.csv);

    // (c) varying w, fixed u=10, v=20.
    let mut tc = output::Table::new(&["dataset", "w", "inference_%"]);
    for &(name, aux, target) in &pairs {
        for w in [50_000usize, 100_000, 150_000, 200_000] {
            tc.push_row(vec![
                name.into(),
                w.to_string(),
                output::pct(rate(10, 20, w, args.threads, aux, target)),
            ]);
        }
    }
    println!("\n## (c) varying w (u=10, v=20)");
    tc.print(args.csv);
}
