//! Figure 7: inference rate over a sliding window — auxiliary backup `t`,
//! target backup `t+s`.
//!
//! Paper shape: the advanced attack dominates the locality attack for every
//! window on variable-size datasets; larger `s` lowers the rate; the VM
//! dataset fluctuates wildly around its heavy-activity window.

use freqdedup_bench::{cli, data, harness, output};
use freqdedup_core::attacks::AttackKind;

const USAGE: &str = "fig07_sliding_window [--scale f] [--seed n] [--threads t] [--csv]";

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Figure 7: ciphertext-only inference rate over a sliding window");
    for dataset in [
        data::Dataset::Fsl,
        data::Dataset::Synthetic,
        data::Dataset::Vm,
    ] {
        let series = data::series(dataset, args.scale, args.seed);
        let windows: &[usize] = if dataset == data::Dataset::Vm {
            &[1, 2, 3]
        } else {
            &[1, 2]
        };
        let mut table =
            output::Table::new(&["dataset", "aux_backup", "s", "locality_%", "advanced_%"]);
        for &s in windows {
            for t in 0..series.len().saturating_sub(s) {
                let aux = series.get(t).expect("aux");
                let target = series.get(t + s).expect("target");
                let params = harness::co_params().threads(args.threads);
                let locality =
                    harness::run_ciphertext_only(AttackKind::Locality, aux, target, &params);
                let advanced = if dataset == data::Dataset::Vm {
                    locality
                } else {
                    harness::run_ciphertext_only(AttackKind::Advanced, aux, target, &params)
                };
                table.push_row(vec![
                    dataset.name().into(),
                    aux.label.clone(),
                    s.to_string(),
                    output::pct(locality.rate),
                    output::pct(advanced.rate),
                ]);
            }
        }
        println!("\n## {dataset} dataset");
        table.print(args.csv);
    }
}
