//! Figure 10: defense effectiveness — inference rate of the advanced attack
//! in known-plaintext mode against MinHash encryption alone and against the
//! combined MinHash + scrambling scheme, varying the leakage rate.
//!
//! Paper shape: MinHash encryption alone suppresses the attack to single
//! digits; the combined scheme suppresses it to ≈ 0.2%, essentially just the
//! leaked chunks themselves.

use freqdedup_bench::{cli, data, harness, output};
use freqdedup_core::defense::MinHashScrambleScheme;

const USAGE: &str = "fig10_defense [--scale f] [--seed n] [--threads t] [--csv]";

/// Same (dataset, aux, target) pairs as Figure 8.
const PAIRS: [(data::Dataset, usize, usize); 3] = [
    (data::Dataset::Fsl, 2, 4),
    (data::Dataset::Synthetic, 0, 5),
    (data::Dataset::Vm, 8, 12),
];

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Figure 10: inference rate under MinHash-only and Combined defenses");
    let mut table = output::Table::new(&[
        "dataset",
        "leakage_%",
        "undefended_%",
        "minhash_%",
        "combined_%",
    ]);
    for (dataset, aux_idx, target_idx) in PAIRS {
        let series = data::series(dataset, args.scale, args.seed);
        let aux = series.get(aux_idx).expect("aux");
        let target = series.get(target_idx).expect("target");
        let params = harness::kp_params().threads(args.threads);
        let seg = harness::segment_params(dataset.avg_chunk_size());
        let minhash = MinHashScrambleScheme::minhash_only(seg.clone());
        let combined = MinHashScrambleScheme::combined(seg, 0xdef);
        for leakage in [0.0, 0.0005, 0.001, 0.0015, 0.002] {
            let undefended = harness::run_known_plaintext(
                freqdedup_core::attacks::AttackKind::Advanced,
                aux,
                target,
                &params,
                leakage,
                42,
            );
            let mh = harness::run_defended(&minhash, aux, target, &params, leakage, 42);
            let cb = harness::run_defended(&combined, aux, target, &params, leakage, 42);
            table.push_row(vec![
                dataset.name().into(),
                format!("{:.2}", leakage * 100.0),
                output::pct(undefended.rate),
                output::pct(mh.rate),
                output::pct(cb.rate),
            ]);
        }
    }
    table.print(args.csv);
}
