//! `perf_report` — machine-readable performance trajectory of the attack
//! pipeline.
//!
//! Runs the full pipeline — MLE trace encryption, dedup-store ingest, and
//! the locality attack (COUNT + crawl, ciphertext-only) — on a synthetic
//! FSL-like backup pair over **three** implementations:
//!
//! * the fingerprint-keyed reference path (`ChunkStats` + hash-map crawl,
//!   the pre-dense layout),
//! * the sequential dense-id/CSR path (`DenseStats`, interning + one-sort
//!   co-occurrence tables), and
//! * the sharded parallel path (`freqdedup_core::par`: sharded COUNT/CSR,
//!   batch-parallel encryption, prefix-sharded store ingest) at
//!   `--threads` workers,
//!
//! checks that all inference sets are identical, and writes the timings
//! plus the speedups to `BENCH_attack.json` so every PR's CI run leaves a
//! comparable perf artifact with thread metadata.
//!
//! With `--persist <dir>` the store layer is additionally exercised against
//! the durable backend: disk-backed ingest + close (fsync-always), then a
//! timed **cold-open recovery**, with the recovered counters checked
//! against the in-memory run. The timings land in a `persist` section of
//! the JSON.
//!
//! With `--serve` the network service is also measured on loopback:
//! multi-client ingest throughput at 1, 4 and 8 concurrent clients
//! (each uploading its contiguous slice of the cipher stream through
//! `freqdedup_server::client::Client`) plus single-client restore
//! latency of a committed manifest. The timings land in a `serve`
//! section of the JSON and are guarded by `ci/bench_guard.py`.
//!
//! With `--streaming` the incremental attack engine is measured: the
//! cipher stream is split into 64 committed epochs folded one at a time
//! into a running `IncrementalStats` (the O(delta) streaming path), with
//! per-commit update latency recorded — amortized, worst-case, and
//! worst compaction stall — plus first-half vs second-half throughput
//! (the sublinearity evidence: per-chunk update cost must not grow with
//! history) and a final-state inference equivalence check against the
//! batch series recompute. The timings land in a `streaming` section of
//! the JSON; amortized update throughput is guarded by
//! `ci/bench_guard.py`.
//!
//! With `--faults` the resilient client stack is measured under a seeded
//! network fault schedule: four `ResilientClient`s upload the cipher
//! stream through a `FaultProxy` injecting resets, torn frames and
//! delays, against a fault-free resilient baseline. The section records
//! retry counts, reconnect latency, the retry overhead factor, and a
//! `divergence` sentinel (a committed tap stream differing from what its
//! client sent, or a double-ingest) that fails the run — the exactly-once
//! protocol must keep the adversary's view bit-exact under faults.
//!
//! With `--chunking` the chunking engines are measured on raw bytes:
//! rabin-cdc vs gear-hash fastcdc throughput in MB/s, sequential and
//! parallel (`chunk_stream_par`), plus fastcdc chunk-size distribution
//! stats and a parallel-vs-sequential identity check. The timings land
//! in a `chunking` section of the JSON; fastcdc sequential throughput is
//! guarded by `ci/bench_guard.py`.
//!
//! With `--lifecycle` the storage lifecycle is measured under churn: the
//! cipher stream is committed as 8 backup generations into a durable
//! store, every other generation is deleted, a full GC compaction
//! rewrites the survivors and reclaims the dead bytes, and a REED-style
//! rekey rewrites every live container under a fresh epoch. Records
//! delete/GC/rekey latency, reclaim throughput in MB/s (guarded by
//! `ci/bench_guard.py`), and the adversary-side effect of churn: the
//! locality attack run on the churned tap (survivors only) vs the
//! append-only stream, with the inferred-pair retention ratio. Surviving
//! recipes are checked intact after the churn; a mismatch fails the run.
//!
//! Usage: `perf_report [--quick] [--chunks N] [--threads T] [--persist DIR]
//! [--serve] [--streaming] [--faults] [--chunking] [--lifecycle] [--out PATH]`
//!
//! * `--quick` — CI-sized run (~60k logical chunks per backup);
//! * `--chunks N` — logical chunks per backup (default 1,000,000);
//! * `--threads T` — parallel-path worker threads (default 0 = auto);
//! * `--persist DIR` — also time the durable store backend rooted at DIR
//!   (the directory is cleared first);
//! * `--serve` — also time the loopback network service (multi-client
//!   ingest throughput + restore latency);
//! * `--streaming` — also time the incremental attack engine (per-commit
//!   update latency over 64 epochs + equivalence check);
//! * `--faults` — also time the resilient client stack under a seeded
//!   fault schedule (retry overhead, reconnect latency, divergence check);
//! * `--chunking` — also time the chunking engines (rabin-cdc vs fastcdc
//!   MB/s, sequential and parallel, + distribution stats);
//! * `--lifecycle` — also time the storage lifecycle under churn (backup
//!   deletion, GC compaction reclaim throughput, rekey latency, churned
//!   vs append-only attack);
//! * `--out PATH` — output path (default `BENCH_attack.json`).

use std::time::Instant;

use freqdedup_bench::harness;
use freqdedup_core::attacks::locality::{LocalityAttack, LocalityParams};
use freqdedup_core::counting::ChunkStats;
use freqdedup_core::dense::DenseStats;
use freqdedup_core::metrics::Inference;
use freqdedup_core::par::ParConfig;
use freqdedup_datasets::fsl::{self, FslConfig};
use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
use freqdedup_store::engine::{DedupConfig, DedupEngine};
use freqdedup_store::persist::PersistConfig;
use freqdedup_store::sharded::ShardedDedupEngine;
use freqdedup_trace::{Backup, Fingerprint};

const USAGE: &str =
    "usage: perf_report [--quick] [--chunks N] [--threads T] [--persist DIR] [--serve] [--streaming] [--faults] [--chunking] [--lifecycle] [--out PATH]
Times MLE encryption, store ingest and the locality attack (COUNT + crawl)
on a synthetic backup pair over the reference hash-map path, the sequential
dense-id/CSR path and the sharded parallel path, verifies identical
inference output, and writes BENCH_attack.json. With --persist DIR the
durable store backend is also timed (disk ingest, close, cold-open
recovery); with --serve the loopback network service is also timed
(multi-client ingest throughput at 1/4/8 clients, restore latency); with
--streaming the incremental attack engine is also timed (per-commit
update latency over 64 committed epochs, amortized and worst-case, plus
a streaming-vs-batch inference equivalence check); with --faults the
resilient client stack is also timed under a seeded network fault
schedule (retry overhead, reconnect latency, tap divergence check); with
--chunking the chunking engines are also timed on raw bytes (rabin-cdc
vs gear-hash fastcdc MB/s, sequential and parallel, chunk-size
distribution, parallel-identity check); with --lifecycle the storage
lifecycle is also timed under churn (delete half the backup
generations, GC-compact, rekey, then re-run the attack on the churned
tap vs append-only).";

const DEFAULT_CHUNKS: usize = 1_000_000;
const QUICK_CHUNKS: usize = 60_000;

struct Args {
    chunks: usize,
    quick: bool,
    threads: usize,
    persist: Option<String>,
    serve: bool,
    streaming: bool,
    faults: bool,
    chunking: bool,
    lifecycle: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        chunks: DEFAULT_CHUNKS,
        quick: false,
        threads: 0,
        persist: None,
        serve: false,
        streaming: false,
        faults: false,
        chunking: false,
        lifecycle: false,
        out: "BENCH_attack.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                args.quick = true;
                args.chunks = QUICK_CHUNKS;
            }
            "--chunks" => {
                let v = it.next().unwrap_or_else(|| die("--chunks needs a value"));
                args.chunks = v
                    .parse()
                    .unwrap_or_else(|_| die("--chunks must be an integer"));
                if args.chunks == 0 {
                    die("--chunks must be positive");
                }
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| die("--threads needs a value"));
                args.threads = v
                    .parse()
                    .unwrap_or_else(|_| die("--threads must be an integer (0 = auto)"));
            }
            "--persist" => {
                args.persist = Some(it.next().unwrap_or_else(|| die("--persist needs a value")));
            }
            "--serve" => args.serve = true,
            "--streaming" => args.streaming = true,
            "--faults" => args.faults = true,
            "--chunking" => args.chunking = true,
            "--lifecycle" => args.lifecycle = true,
            "--out" => {
                args.out = it.next().unwrap_or_else(|| die("--out needs a value"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("perf_report: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Milliseconds spent in `f`, plus its result.
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

fn sorted_pairs(inf: &Inference) -> Vec<(Fingerprint, Fingerprint)> {
    let mut v: Vec<_> = inf.iter().collect();
    v.sort_unstable();
    v
}

/// Builds the benchmark pair: two consecutive FSL-like monthly backups of
/// ~`chunks` logical chunks each. The newer one is the encryption target
/// (the adversary's tap), the older one is the plaintext aux.
fn build_pair(chunks: usize) -> (Backup, Backup) {
    let cfg = FslConfig {
        backups: 2,
        ..FslConfig::scaled((chunks / 6).max(100))
    };
    let series = fsl::generate(&cfg);
    let aux = series.get(0).expect("two backups generated").clone();
    let target = series.get(1).expect("two backups generated").clone();
    (aux, target)
}

/// Store configuration sized for the benchmark stream.
fn store_config(unique: usize) -> DedupConfig {
    DedupConfig {
        cache_entries: unique / 4,
        bloom_expected: (unique as u64).max(1024),
        ..DedupConfig::default()
    }
}

/// Times the loopback network service: N concurrent clients each upload
/// a contiguous slice of the cipher stream (metadata mode, pipelined
/// batches) and commit, then a single client restores one committed
/// manifest. Returns the `serve` JSON section.
fn bench_serve(cipher: &Backup, unique: usize) -> String {
    use freqdedup_server::client::Client;
    use freqdedup_server::server::{Server, ServerConfig};

    let mut client_rows = Vec::new();
    for clients in [1usize, 4, 8] {
        eprintln!("perf_report: serve ingest, {clients} loopback client(s)...");
        let server = Server::bind(ServerConfig {
            workers: clients,
            engine: store_config(unique),
            ..ServerConfig::default()
        })
        .expect("bind loopback bench server");
        let addr = server.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        let slices = freqdedup_core::par::shard_ranges(cipher.chunks.len(), clients);
        let (ingest_ms, ()) = timed(|| {
            std::thread::scope(|scope| {
                for (i, range) in slices.iter().cloned().enumerate() {
                    let chunks = &cipher.chunks[range];
                    scope.spawn(move || {
                        let mut client = Client::connect(addr, &format!("bench-{i}"))
                            .expect("connect bench client");
                        let part = Backup::from_chunks(format!("part-{i:02}"), chunks.to_vec());
                        client.upload_backup(&part).expect("upload");
                        client.commit(&part.label).expect("commit");
                    });
                }
            });
        });
        let mut closer = Client::connect(addr, "bench-closer").expect("connect closer");
        let stats = closer.stats().expect("stats");
        assert_eq!(
            stats.logical_chunks,
            cipher.len() as u64,
            "serve ingest lost chunks"
        );
        closer.shutdown().expect("shutdown");
        handle.join().expect("server thread");
        let tput = cipher.len() as f64 / ingest_ms;
        eprintln!("perf_report: serve ingest x{clients}: {ingest_ms:.1} ms ({tput:.1} chunks/ms)");
        client_rows.push(format!(
            "{{ \"n\": {clients}, \"ingest_ms\": {ingest_ms:.1}, \"chunks_per_ms\": {tput:.1} }}"
        ));
    }

    // Restore latency: one committed manifest streamed back whole.
    let server = Server::bind(ServerConfig {
        workers: 1,
        engine: store_config(unique),
        ..ServerConfig::default()
    })
    .expect("bind loopback bench server");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let restore_chunks = {
        let mut client = Client::connect(addr, "bench-restore").expect("connect");
        let whole = Backup::from_chunks("whole", cipher.chunks.clone());
        client.upload_backup(&whole).expect("upload");
        client.commit("whole").expect("commit");
        let (restore_ms, restored) = timed(|| client.restore("whole").expect("restore"));
        assert_eq!(restored.backup.chunks, whole.chunks, "restore diverged");
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");
        eprintln!(
            "perf_report: serve restore: {restore_ms:.1} ms for {} chunks",
            whole.len()
        );
        format!(
            "  \"serve\": {{ \"clients\": [{}], \"restore_ms\": {restore_ms:.1}, \
             \"restore_chunks\": {} }},\n",
            client_rows.join(", "),
            whole.len()
        )
    };
    restore_chunks
}

/// Times the incremental attack engine: the cipher stream is split into 64
/// committed epochs folded one at a time into a running `IncrementalStats`
/// (what the adversary tap maintains behind live traffic). Records
/// per-commit update latency — amortized and worst-case, plus the worst
/// commit that triggered a CSR segment merge (compaction stall) — and
/// first-half vs second-half throughput as sublinearity evidence, then
/// checks the final streaming inference bit-identical against a batch
/// series recompute of the same tape. Returns the `streaming` JSON section
/// and whether the equivalence check passed.
fn bench_streaming(cipher: &Backup, aux: &Backup, threads: usize) -> (String, bool) {
    use freqdedup_core::attacks::{self, AttackKind};
    use freqdedup_core::IncrementalStats;

    const EPOCHS: usize = 64;
    eprintln!("perf_report: streaming attack updates over {EPOCHS} committed epochs...");
    let tape: Vec<Backup> = freqdedup_core::par::shard_ranges(cipher.chunks.len(), EPOCHS)
        .into_iter()
        .filter(|r| !r.is_empty())
        .enumerate()
        .map(|(i, r)| Backup::from_chunks(format!("epoch-{i:03}"), cipher.chunks[r].to_vec()))
        .collect();
    let params = LocalityParams::default().threads(threads);

    let mut stats = IncrementalStats::new(params.tie_policy);
    let mut per_commit_ms: Vec<f64> = Vec::with_capacity(tape.len());
    let mut worst_ms = 0.0f64;
    let mut worst_compaction_ms = 0.0f64;
    let mut merged_entries: usize = 0;
    for epoch in &tape {
        let (ms, receipt) = timed(|| stats.commit(epoch));
        per_commit_ms.push(ms);
        worst_ms = worst_ms.max(ms);
        if receipt.merged_entries > 0 {
            worst_compaction_ms = worst_compaction_ms.max(ms);
            merged_entries += receipt.merged_entries;
        }
    }
    let total_ms: f64 = per_commit_ms.iter().sum();
    let amortized_ms = total_ms / tape.len() as f64;
    let tput = cipher.len() as f64 / total_ms.max(1e-9);
    // Sublinearity evidence: per-chunk update cost in the second half of
    // the tape (deep history) vs the first half (shallow history).
    let half = tape.len() / 2;
    let half_tput = |epochs: &[Backup], ms: &[f64]| {
        let chunks: usize = epochs.iter().map(Backup::len).sum();
        chunks as f64 / ms.iter().sum::<f64>().max(1e-9)
    };
    let first_half_tput = half_tput(&tape[..half], &per_commit_ms[..half]);
    let second_half_tput = half_tput(&tape[half..], &per_commit_ms[half..]);
    let csr_merges = stats.left().merges() + stats.right().merges();
    let segments = stats.left().num_segments() + stats.right().num_segments();

    let (attack_ms, streamed) = timed(|| {
        attacks::run_ciphertext_only_streaming(AttackKind::Locality, &stats, aux, &params)
    });
    let (batch_ms, batch) =
        timed(|| attacks::run_ciphertext_only_series(AttackKind::Locality, &tape, aux, &params));
    let identical = sorted_pairs(&streamed) == sorted_pairs(&batch);

    eprintln!(
        "perf_report: streaming updates {total_ms:.1} ms total over {} commits \
         ({amortized_ms:.2} ms amortized, {worst_ms:.2} ms worst, {tput:.1} chunks/ms); \
         halves {first_half_tput:.1} -> {second_half_tput:.1} chunks/ms; \
         {csr_merges} CSR merges across {segments} live segments; \
         streaming attack {attack_ms:.1} ms vs batch {batch_ms:.1} ms (identical: {identical})",
        tape.len()
    );
    let section = format!(
        "  \"streaming\": {{ \"epochs\": {}, \"chunks\": {}, \"update_total_ms\": {total_ms:.1}, \
         \"update_amortized_ms\": {amortized_ms:.2}, \"update_worst_ms\": {worst_ms:.2}, \
         \"worst_compaction_ms\": {worst_compaction_ms:.2}, \"update_chunks_per_ms\": {tput:.1}, \
         \"first_half_chunks_per_ms\": {first_half_tput:.1}, \
         \"second_half_chunks_per_ms\": {second_half_tput:.1}, \"csr_merges\": {csr_merges}, \
         \"merged_entries\": {merged_entries}, \"attack_ms\": {attack_ms:.1}, \
         \"batch_attack_ms\": {batch_ms:.1}, \"identical_inference\": {identical} }},\n",
        tape.len(),
        cipher.len(),
    );
    (section, identical)
}

/// Times the resilient client stack under a seeded network fault schedule:
/// four `ResilientClient`s upload contiguous slices of the cipher stream
/// and commit under fixed commit ids — once directly against the server
/// (the fault-free baseline), once through a `FaultProxy` injecting
/// connection resets, torn frames and delays. After each run the
/// exactly-once contract is audited over the wire: every committed stream
/// must restore byte-identical to what its client sent, and retried
/// batches must never double-ingest (`logical_chunks` bounded by the
/// chunks sent). Returns the `faults` JSON section and whether the audit
/// passed on both runs.
fn bench_faults(cipher: &Backup, unique: usize) -> (String, bool) {
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    use freqdedup_server::client::{
        Client, ClientError, ResilienceReport, ResilientClient, RetryOptions,
    };
    use freqdedup_server::fault::{FaultProxy, FaultSpec};
    use freqdedup_server::server::{Server, ServerConfig};

    const CLIENTS: usize = 4;
    // Generous so the seeded schedule exercises retries without ever
    // exhausting a client: the section measures overhead, not failure.
    let opts = RetryOptions {
        max_attempts: 20,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        op_timeout: Duration::from_secs(30),
        batch: 512,
    };

    // One upload-fleet run: wall-clock ms, per-client outcome + resilience
    // report, whether the exactly-once audit held, and the injected fault
    // counts [resets, partials, delays, frames] (zero without a proxy).
    type Outcome = (Result<u64, ClientError>, ResilienceReport);
    let run = |spec: Option<FaultSpec>| -> (f64, Vec<Outcome>, bool, [u64; 4]) {
        let server = Server::bind(ServerConfig {
            workers: CLIENTS,
            engine: store_config(unique),
            ..ServerConfig::default()
        })
        .expect("bind loopback bench server");
        let server_addr = server.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        let proxy = spec.map(|s| FaultProxy::start(server_addr, s).expect("start fault proxy"));
        let upload_addr = proxy.as_ref().map_or(server_addr, FaultProxy::local_addr);

        let parts: Vec<Backup> = freqdedup_core::par::shard_ranges(cipher.chunks.len(), CLIENTS)
            .into_iter()
            .enumerate()
            .map(|(i, r)| Backup::from_chunks(format!("fault-part-{i}"), cipher.chunks[r].to_vec()))
            .collect();
        let (ms, results) = timed(|| {
            std::thread::scope(|scope| {
                let workers: Vec<_> = parts
                    .iter()
                    .enumerate()
                    .map(|(i, part)| {
                        scope.spawn(move || {
                            let mut client = ResilientClient::new(
                                upload_addr.to_string(),
                                format!("fault-bench-{i}"),
                                opts,
                            );
                            let out = client.upload_commit(part, 0x2000 + i as u64);
                            (out, client.report().clone())
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().expect("resilient client must not panic"))
                    .collect::<Vec<Outcome>>()
            })
        });
        let injected = proxy.map_or([0; 4], |p| {
            let c = p.counts();
            let counts = [
                c.resets.load(Ordering::SeqCst),
                c.partials.load(Ordering::SeqCst),
                c.delays.load(Ordering::SeqCst),
                c.frames.load(Ordering::SeqCst),
            ];
            p.stop();
            counts
        });

        // Exactly-once audit over a clean direct connection: committed
        // streams restore byte-identical, retries never double-ingested.
        let mut checker = Client::connect(server_addr, "fault-bench-check").expect("connect");
        let stats = checker.stats().expect("stats");
        let mut intact = stats.logical_chunks <= cipher.len() as u64;
        for (part, (out, _)) in parts.iter().zip(&results) {
            if let Ok(chunks) = out {
                intact &= *chunks == part.len() as u64;
                let restored = checker
                    .restore(&part.label)
                    .expect("restore committed part");
                intact &= restored.backup.chunks == part.chunks;
            }
        }
        checker.shutdown().expect("shutdown");
        handle.join().expect("server thread");
        (ms, results, intact, injected)
    };

    eprintln!("perf_report: faults — fault-free resilient baseline ({CLIENTS} clients)...");
    let (clean_ms, clean_results, clean_intact, _) = run(None);
    assert!(
        clean_results.iter().all(|(out, _)| out.is_ok()),
        "fault-free resilient baseline must commit every client"
    );
    eprintln!("perf_report: faults — seeded fault schedule through the proxy...");
    // The cut rate scales inversely with the upload length: this section
    // measures the cost of *succeeding* under faults, so it aims for a
    // couple of connection cuts per client regardless of --chunks — a
    // fixed per-frame rate would leave quick runs fault-free and exhaust
    // every full-size client's retry budget (~500 frames per upload).
    let batches_per_client = cipher.chunks.len().div_ceil(CLIENTS * opts.batch).max(1);
    let cut_per_mille = ((1500 / batches_per_client) as u16).clamp(1, 25);
    let spec = FaultSpec::quiet(0x00FA_0175)
        .resets(cut_per_mille)
        .partials(cut_per_mille)
        .delays(30, 2);
    let (faulted_ms, results, fault_intact, injected) = run(Some(spec));

    let retries: u64 = results.iter().map(|(_, r)| r.retries).sum();
    let connects: u64 = results.iter().map(|(_, r)| r.connects).sum();
    let batches_skipped: u64 = results.iter().map(|(_, r)| r.batches_skipped).sum();
    let backoff_ms = results.iter().map(|(_, r)| r.backoff_micros).sum::<u64>() as f64 / 1e3;
    let reconnects: Vec<u64> = results
        .iter()
        .flat_map(|(_, r)| r.connect_micros.iter().copied())
        .collect();
    let reconnect_mean_us = reconnects.iter().sum::<u64>() as f64 / reconnects.len().max(1) as f64;
    let reconnect_max_us = reconnects.iter().copied().max().unwrap_or(0);
    let failed_clients = results.iter().filter(|(out, _)| out.is_err()).count();
    let overhead = faulted_ms / clean_ms.max(1e-9);
    let divergence = !(clean_intact && fault_intact);
    let [resets, partials, delays, frames] = injected;

    eprintln!(
        "perf_report: faults clean {clean_ms:.1} ms vs faulted {faulted_ms:.1} ms \
         ({overhead:.2}x overhead); {retries} retries, {connects} connects, \
         {batches_skipped} batches skipped, reconnect {reconnect_mean_us:.0} us mean / \
         {reconnect_max_us} us max; injected {resets} resets / {partials} partials / \
         {delays} delays over {frames} frames; {failed_clients} failed client(s); \
         divergence: {divergence}"
    );
    let section = format!(
        "  \"faults\": {{ \"clients\": {CLIENTS}, \"clean_ms\": {clean_ms:.1}, \
         \"faulted_ms\": {faulted_ms:.1}, \"overhead\": {overhead:.2}, \"retries\": {retries}, \
         \"connects\": {connects}, \"batches_skipped\": {batches_skipped}, \
         \"backoff_ms\": {backoff_ms:.1}, \"reconnect_mean_us\": {reconnect_mean_us:.0}, \
         \"reconnect_max_us\": {reconnect_max_us}, \"injected_resets\": {resets}, \
         \"injected_partials\": {partials}, \"injected_delays\": {delays}, \
         \"proxied_frames\": {frames}, \"failed_clients\": {failed_clients}, \
         \"divergence\": {divergence} }},\n"
    );
    (section, !divergence)
}

/// Times the chunking engines on deterministic pseudo-random bytes
/// (64 MiB full / 8 MiB quick): rabin-cdc vs gear-hash fastcdc at the
/// paper's 8 KB-average configuration, sequential and parallel
/// (`chunk_stream_par` at `threads` workers). Records MB/s per engine,
/// the fastcdc-vs-rabin sequential speedup, fastcdc chunk-size
/// distribution stats, and a `par_identical` check (parallel spans
/// bit-identical to sequential for both engines). Returns the `chunking`
/// JSON section and whether the identity check passed.
fn bench_chunking(quick: bool, threads: usize) -> (String, bool) {
    use freqdedup_chunking::cdc::CdcParams;
    use freqdedup_chunking::fastcdc::FastCdc;
    use freqdedup_chunking::{chunk_stream_par, Chunker};

    let mib = if quick { 8 } else { 64 };
    eprintln!("perf_report: chunking {mib} MiB of pseudo-random bytes...");
    let mut x = 0x243f_6a88_85a3_08d3u64;
    let data: Vec<u8> = (0..mib << 20)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect();
    let mbps = |ms: f64| data.len() as f64 / 1e3 / ms.max(1e-9);

    let rabin = CdcParams::paper_8kb();
    let fast = FastCdc::paper_8kb();
    let par_cfg = ParConfig::with_threads(threads);

    // Warm each engine once on a prefix so first-touch table builds and
    // page faults don't land in a timed run, then take the best of three
    // repetitions per configuration — the minimum is the least-noise
    // estimate of the hot loop's cost on a shared machine, and what the
    // bench guard's throughput comparison wants to see.
    drop(rabin.spans(&data[..1 << 20]));
    drop(fast.spans(&data[..1 << 20]));
    fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
        let (mut ms, mut out) = timed(&mut f);
        for _ in 1..reps {
            let (m, o) = timed(&mut f);
            if m < ms {
                (ms, out) = (m, o);
            }
        }
        (ms, out)
    }
    const REPS: usize = 3;

    let (rabin_seq_ms, rabin_spans) = best_of(REPS, || rabin.spans(&data));
    let (rabin_par_ms, rabin_par_spans) =
        best_of(REPS, || chunk_stream_par(&data, &rabin, par_cfg));
    let (fast_seq_ms, fast_spans) = best_of(REPS, || fast.spans(&data));
    let (fast_par_ms, fast_par_spans) = best_of(REPS, || chunk_stream_par(&data, &fast, par_cfg));

    let par_identical = rabin_par_spans == rabin_spans && fast_par_spans == fast_spans;
    let speedup = rabin_seq_ms / fast_seq_ms.max(1e-9);

    let chunks = fast_spans.len();
    let sizes: Vec<usize> = fast_spans.iter().map(std::ops::Range::len).collect();
    let mean_size = sizes.iter().sum::<usize>() as f64 / chunks.max(1) as f64;
    let min_size = sizes.iter().copied().min().unwrap_or(0);
    let max_size = sizes.iter().copied().max().unwrap_or(0);

    eprintln!(
        "perf_report: chunking rabin-cdc {:.1} MB/s seq / {:.1} MB/s par, \
         fastcdc {:.1} MB/s seq / {:.1} MB/s par ({speedup:.2}x vs rabin seq); \
         fastcdc {chunks} chunks, {mean_size:.0} B mean, {min_size}..{max_size} B; \
         par identical: {par_identical}",
        mbps(rabin_seq_ms),
        mbps(rabin_par_ms),
        mbps(fast_seq_ms),
        mbps(fast_par_ms),
    );
    let section = format!(
        "  \"chunking\": {{ \"input_mib\": {mib}, \"rabin_seq_mbps\": {:.1}, \
         \"rabin_par_mbps\": {:.1}, \"fastcdc_seq_mbps\": {:.1}, \"fastcdc_par_mbps\": {:.1}, \
         \"speedup_vs_rabin\": {speedup:.2}, \"chunks\": {chunks}, \"mean_size\": {mean_size:.0}, \
         \"min_size\": {min_size}, \"max_size\": {max_size}, \
         \"par_identical\": {par_identical} }},\n",
        mbps(rabin_seq_ms),
        mbps(rabin_par_ms),
        mbps(fast_seq_ms),
        mbps(fast_par_ms),
    );
    (section, par_identical)
}

/// Times the storage lifecycle under churn. The cipher stream is split
/// into 8 generations committed as backups into a durable (fsync-never)
/// store under a scratch directory, then churned: every other generation
/// is deleted, a full GC compaction (`gc(1000)`) rewrites the survivors
/// and reclaims the dead bytes, and a REED-style rekey rewrites every
/// live container under epoch 1. Records delete/GC/rekey latency and the
/// physical reclaim throughput in MB/s (reclaimed dead bytes per GC
/// wall-second — the number `ci/bench_guard.py` gates), then measures
/// what churn does to the adversary: the locality attack on the churned
/// tap (surviving generations only) vs the append-only stream, with the
/// inferred-pair retention ratio. Surviving recipes are verified intact
/// after the churn; returns the `lifecycle` JSON section and whether
/// that check passed.
fn bench_lifecycle(cipher: &Backup, aux: &Backup, unique: usize, threads: usize) -> (String, bool) {
    use freqdedup_store::persist::FsyncPolicy;

    const GENERATIONS: usize = 8;
    eprintln!("perf_report: lifecycle churn over {GENERATIONS} backup generations...");
    let dir =
        std::env::temp_dir().join(format!("freqdedup-lifecycle-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DedupConfig {
        persist: Some(PersistConfig::new(&dir).fsync(FsyncPolicy::Never)),
        ..store_config(unique)
    };

    let generations: Vec<Backup> =
        freqdedup_core::par::shard_ranges(cipher.chunks.len(), GENERATIONS)
            .into_iter()
            .filter(|r| !r.is_empty())
            .enumerate()
            .map(|(i, r)| Backup::from_chunks(format!("gen-{i}"), cipher.chunks[r].to_vec()))
            .collect();

    let (ingest_ms, mut engine) = timed(|| {
        let mut engine = DedupEngine::open(config).expect("fresh lifecycle scratch dir");
        for (i, gen) in generations.iter().enumerate() {
            engine.ingest_backup(gen);
            engine
                .commit_backup(i as u64 + 1, i as u64 + 1, &gen.chunks)
                .expect("commit generation");
        }
        engine
    });

    // Churn: delete every other generation (the odd ids), GC-compact,
    // then rekey what survives.
    let victims: Vec<u64> = (1..=generations.len() as u64).step_by(2).collect();
    let (delete_ms, deleted_bytes) = timed(|| {
        victims
            .iter()
            .map(|&id| {
                engine
                    .delete_backup(id)
                    .expect("delete generation")
                    .logical_bytes
            })
            .sum::<u64>()
    });
    let (gc_ms, report) = timed(|| engine.gc(1000));
    let reclaim_mbps = report.reclaimed_bytes as f64 / 1e3 / gc_ms.max(1e-9);
    let (rekey_ms, rekey) = timed(|| engine.rekey(b"lifecycle-bench-epoch"));

    // Surviving recipes must be untouched by the compaction + rekey.
    let mut intact = engine.committed_backups().len() == generations.len() - victims.len();
    for (i, gen) in generations.iter().enumerate() {
        let id = i as u64 + 1;
        if victims.contains(&id) {
            intact &= engine.backup_recipe(id).is_none();
        } else {
            intact &= engine
                .backup_recipe(id)
                .is_some_and(|r| r.chunks == gen.chunks);
        }
    }
    engine.close().expect("close lifecycle engine");
    let _ = std::fs::remove_dir_all(&dir);

    // The adversary after churn: the tap catalog serves only the
    // survivors, so the attack sees a shorter, gappier stream.
    let attack = LocalityAttack::new(LocalityParams::default().threads(threads));
    let churned = Backup::from_chunks(
        "churned",
        generations
            .iter()
            .enumerate()
            .filter(|(i, _)| !victims.contains(&(*i as u64 + 1)))
            .flat_map(|(_, g)| g.chunks.iter().copied())
            .collect(),
    );
    let (attack_full_ms, full_inf) = timed(|| attack.run_ciphertext_only(cipher, aux));
    let (attack_churned_ms, churned_inf) = timed(|| attack.run_ciphertext_only(&churned, aux));
    let retention = churned_inf.len() as f64 / full_inf.len().max(1) as f64;

    eprintln!(
        "perf_report: lifecycle ingest {ingest_ms:.1} ms over {} generations; delete x{} \
         {delete_ms:.1} ms ({deleted_bytes} B released); GC {gc_ms:.1} ms — {} B reclaimed \
         ({reclaim_mbps:.1} MB/s), {} containers dropped, {} chunks moved; rekey to epoch {} \
         {rekey_ms:.1} ms ({} containers); attack full {attack_full_ms:.1} ms ({} pairs) vs \
         churned {attack_churned_ms:.1} ms ({} pairs, {retention:.2} retention); \
         recipes intact: {intact}",
        generations.len(),
        victims.len(),
        report.reclaimed_bytes,
        report.containers_dropped,
        report.moved_chunks,
        rekey.epoch,
        rekey.containers_rewritten,
        full_inf.len(),
        churned_inf.len(),
    );
    let section = format!(
        "  \"lifecycle\": {{ \"generations\": {}, \"deleted_generations\": {}, \
         \"ingest_ms\": {ingest_ms:.1}, \"delete_ms\": {delete_ms:.1}, \
         \"deleted_bytes\": {deleted_bytes}, \"gc_ms\": {gc_ms:.1}, \
         \"reclaimed_bytes\": {}, \"reclaim_mb_per_s\": {reclaim_mbps:.1}, \
         \"containers_dropped\": {}, \"moved_chunks\": {}, \"rekey_ms\": {rekey_ms:.1}, \
         \"epoch\": {}, \"containers_rewritten\": {}, \"attack_full_ms\": {attack_full_ms:.1}, \
         \"attack_churned_ms\": {attack_churned_ms:.1}, \"inferred_pairs_full\": {}, \
         \"inferred_pairs_churned\": {}, \"pair_retention\": {retention:.2}, \
         \"recipes_intact\": {intact} }},\n",
        generations.len(),
        victims.len(),
        report.reclaimed_bytes,
        report.containers_dropped,
        report.moved_chunks,
        rekey.epoch,
        rekey.containers_rewritten,
        full_inf.len(),
        churned_inf.len(),
    );
    (section, intact)
}

fn main() {
    let args = parse_args();
    let threads = ParConfig::with_threads(args.threads).resolve();
    let seq_params = LocalityParams::default();
    let par_params = LocalityParams::default().threads(threads);
    let seq_attack = LocalityAttack::new(seq_params.clone());
    let par_attack = LocalityAttack::new(par_params);

    eprintln!(
        "perf_report: generating pair (~{} chunks per backup), {} worker thread(s)...",
        args.chunks, threads
    );
    let (aux, target) = build_pair(args.chunks);
    let enc = DeterministicTraceEncryptor::new(harness::MLE_SECRET);

    // --- MLE layer: sequential vs batch-parallel trace encryption. ---
    let (seq_encrypt_ms, observed) = timed(|| enc.encrypt_backup(&target));
    let (par_encrypt_ms, observed_par) =
        timed(|| enc.encrypt_backup_par(&target, ParConfig::with_threads(threads)));
    let cipher = observed.backup;
    // Compare cheaply: a full-vector assert_eq would Debug-format two
    // million-element vectors into the panic message on divergence.
    assert_eq!(
        cipher.chunks.len(),
        observed_par.backup.chunks.len(),
        "parallel encryption diverged from sequential (stream length)"
    );
    if let Some(i) =
        (0..cipher.chunks.len()).find(|&i| cipher.chunks[i] != observed_par.backup.chunks[i])
    {
        panic!(
            "parallel encryption diverged from sequential at chunk {i}: {:?} vs {:?}",
            cipher.chunks[i], observed_par.backup.chunks[i]
        );
    }
    drop(observed_par);

    eprintln!(
        "perf_report: cipher {} logical / {} unique chunks; aux {} logical",
        cipher.len(),
        cipher.unique_count(),
        aux.len()
    );

    // --- Store layer: single-engine vs prefix-sharded parallel ingest. ---
    let unique = cipher.unique_count();
    let (seq_ingest_ms, seq_stats) = timed(|| {
        let mut engine = DedupEngine::new(store_config(unique)).expect("valid config");
        engine.ingest_backup(&cipher);
        engine.finish();
        engine.stats()
    });
    let (par_ingest_ms, par_stats) = timed(|| {
        let mut engine =
            ShardedDedupEngine::new(store_config(unique), threads.max(1)).expect("valid config");
        engine.ingest_backup(&cipher, ParConfig::with_threads(threads));
        engine.finish();
        engine.stats()
    });
    assert_eq!(
        (seq_stats.logical_chunks, seq_stats.unique_chunks),
        (par_stats.logical_chunks, par_stats.unique_chunks),
        "sharded ingest diverged from single-engine totals"
    );

    // --- Durable store layer (optional): disk-backed ingest + close with
    // the crash-safe fsync-always policy, then a timed cold-open recovery
    // checked bit-for-bit against the pre-restart counters. ---
    let persist_section = args.persist.as_ref().map_or(String::new(), |dir| {
        eprintln!("perf_report: timing durable store backend under {dir}...");
        let dir = std::path::PathBuf::from(dir);
        let _ = std::fs::remove_dir_all(&dir);
        let pconfig = DedupConfig {
            persist: Some(PersistConfig::new(&dir)),
            ..store_config(unique)
        };
        let (disk_ingest_ms, engine) = timed(|| {
            let mut engine = DedupEngine::open(pconfig.clone()).expect("fresh persistent dir");
            engine.ingest_backup(&cipher);
            engine.finish();
            engine
        });
        let disk_stats = engine.stats();
        assert_eq!(
            (seq_stats.logical_chunks, seq_stats.unique_chunks),
            (disk_stats.logical_chunks, disk_stats.unique_chunks),
            "disk-backed ingest diverged from in-memory totals"
        );
        let (close_ms, ()) = timed(|| engine.close().expect("close persistent engine"));
        let (cold_open_ms, recovered) =
            timed(|| DedupEngine::open(pconfig.clone()).expect("cold-open recovery"));
        assert_eq!(
            recovered.stats(),
            disk_stats,
            "cold-open recovery diverged from the closed engine"
        );
        let containers = recovered.containers().sealed_count();
        let disk_bytes: u64 = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0);
        eprintln!(
            "perf_report: disk ingest {disk_ingest_ms:.1} ms, close {close_ms:.1} ms, \
             cold-open recovery {cold_open_ms:.1} ms ({containers} containers, {disk_bytes} B)"
        );
        format!(
            "  \"persist\": {{ \"ingest_ms\": {disk_ingest_ms:.1}, \"close_ms\": {close_ms:.1}, \
             \"cold_open_ms\": {cold_open_ms:.1}, \"containers\": {containers}, \
             \"disk_bytes\": {disk_bytes} }},\n"
        )
    });

    // --- Network service layer (optional): loopback multi-client ingest
    // throughput and restore latency through the full wire stack. ---
    let serve_section = if args.serve {
        bench_serve(&cipher, unique)
    } else {
        String::new()
    };

    // --- Incremental attack engine (optional): per-commit update latency
    // of the streaming COUNT/CSR state plus a streaming-vs-batch
    // inference equivalence check. ---
    let (streaming_section, streaming_identical) = if args.streaming {
        bench_streaming(&cipher, &aux, threads)
    } else {
        (String::new(), true)
    };

    // --- Resilient client stack (optional): retry overhead and reconnect
    // latency under a seeded network fault schedule, plus the exactly-once
    // divergence audit. ---
    let (faults_section, faults_intact) = if args.faults {
        bench_faults(&cipher, unique)
    } else {
        (String::new(), true)
    };

    // --- Chunking engines (optional): rabin-cdc vs gear-hash fastcdc
    // throughput on raw bytes, sequential and parallel, plus the
    // parallel-equals-sequential identity check. ---
    let (chunking_section, chunking_identical) = if args.chunking {
        bench_chunking(args.quick, threads)
    } else {
        (String::new(), true)
    };

    // --- Storage lifecycle (optional): deletion, GC compaction reclaim
    // throughput and rekey latency under churn, plus the churned-tap
    // attack comparison. ---
    let (lifecycle_section, lifecycle_intact) = if args.lifecycle {
        bench_lifecycle(&cipher, &aux, unique, threads)
    } else {
        (String::new(), true)
    };

    // --- Attack layer. Warm the allocator and page cache once per path,
    // so the timed runs below don't charge first-touch page faults to
    // whichever path goes first. ---
    drop(ChunkStats::full_with_policy(&cipher, seq_params.tie_policy));
    drop(DenseStats::full_with_policy(&cipher, seq_params.tie_policy));

    // COUNT in isolation (both sides), then the attack end-to-end (COUNT +
    // seed + crawl — what Algorithm 2 actually costs).
    let (ref_count_ms, _) = timed(|| {
        (
            ChunkStats::full_with_policy(&cipher, seq_params.tie_policy),
            ChunkStats::full_with_policy(&aux, seq_params.tie_policy),
        )
    });
    let (ref_e2e_ms, ref_inference) =
        timed(|| seq_attack.run_ciphertext_only_reference(&cipher, &aux));

    let (seq_count_ms, _) = timed(|| {
        (
            DenseStats::full_with_policy(&cipher, seq_params.tie_policy),
            DenseStats::full_with_policy(&aux, seq_params.tie_policy),
        )
    });
    let (seq_e2e_ms, seq_inference) = timed(|| seq_attack.run_ciphertext_only(&cipher, &aux));

    let par_cfg = ParConfig::with_threads(threads);
    let (par_count_ms, _) = timed(|| {
        (
            DenseStats::full_with_policy_par(&cipher, seq_params.tie_policy, par_cfg),
            DenseStats::full_with_policy_par(&aux, seq_params.tie_policy, par_cfg),
        )
    });
    let (par_e2e_ms, par_inference) = timed(|| par_attack.run_ciphertext_only(&cipher, &aux));

    let ref_pairs = sorted_pairs(&ref_inference);
    let identical =
        ref_pairs == sorted_pairs(&seq_inference) && ref_pairs == sorted_pairs(&par_inference);
    let speedup_count = ref_count_ms / seq_count_ms;
    let speedup_e2e = ref_e2e_ms / seq_e2e_ms;
    let par_speedup_count = seq_count_ms / par_count_ms;
    let par_speedup_e2e = seq_e2e_ms / par_e2e_ms;

    let json = format!(
        "{{\n  \"bench\": \"locality_attack_end_to_end\",\n  \"quick\": {},\n  \"threads\": {},\n  \"logical_chunks_per_backup\": {},\n  \"unique_chunks_cipher\": {},\n  \"reference\": {{ \"count_ms\": {:.1}, \"end_to_end_ms\": {:.1} }},\n  \"sequential\": {{ \"count_ms\": {:.1}, \"end_to_end_ms\": {:.1}, \"encrypt_ms\": {:.1}, \"ingest_ms\": {:.1} }},\n  \"parallel\": {{ \"threads\": {}, \"count_ms\": {:.1}, \"end_to_end_ms\": {:.1}, \"encrypt_ms\": {:.1}, \"ingest_ms\": {:.1}, \"speedup_count\": {:.2}, \"speedup_end_to_end\": {:.2} }},\n{persist_section}{serve_section}{streaming_section}{faults_section}{chunking_section}{lifecycle_section}  \"speedup_count\": {:.2},\n  \"speedup_end_to_end\": {:.2},\n  \"identical_inference\": {},\n  \"inferred_pairs\": {}\n}}\n",
        args.quick,
        threads,
        cipher.len(),
        unique,
        ref_count_ms,
        ref_e2e_ms,
        seq_count_ms,
        seq_e2e_ms,
        seq_encrypt_ms,
        seq_ingest_ms,
        threads,
        par_count_ms,
        par_e2e_ms,
        par_encrypt_ms,
        par_ingest_ms,
        par_speedup_count,
        par_speedup_e2e,
        speedup_count,
        speedup_e2e,
        identical,
        seq_inference.len(),
    );
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", args.out)));
    print!("{json}");

    if !identical {
        eprintln!("perf_report: FAIL — reference, sequential and parallel inference sets differ");
        std::process::exit(1);
    }
    if !streaming_identical {
        eprintln!("perf_report: FAIL — streaming inference diverged from the batch recompute");
        std::process::exit(1);
    }
    if !faults_intact {
        eprintln!("perf_report: FAIL — exactly-once contract diverged under the fault schedule");
        std::process::exit(1);
    }
    if !chunking_identical {
        eprintln!("perf_report: FAIL — parallel chunking diverged from sequential");
        std::process::exit(1);
    }
    if !lifecycle_intact {
        eprintln!("perf_report: FAIL — surviving recipes corrupted by the lifecycle churn");
        std::process::exit(1);
    }
    eprintln!(
        "perf_report: dense path is {speedup_e2e:.2}x end-to-end over reference; \
         {threads}-thread parallel path is {par_speedup_e2e:.2}x over sequential dense \
         ({par_speedup_count:.2}x on COUNT); wrote {}",
        args.out
    );
}
