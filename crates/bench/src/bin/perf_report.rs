//! `perf_report` — machine-readable performance trajectory of the attack
//! hot path.
//!
//! Runs the locality attack end-to-end (COUNT + crawl, ciphertext-only) on
//! a synthetic FSL-like backup pair over **both** implementations:
//!
//! * the fingerprint-keyed reference path (`ChunkStats` + hash-map crawl,
//!   the pre-dense layout), and
//! * the dense-id/CSR path (`DenseStats`, interning + one-sort
//!   co-occurrence tables),
//!
//! checks that the two inference sets are identical, and writes the
//! timings plus the speedup to `BENCH_attack.json` so every PR's CI run
//! leaves a comparable perf artifact.
//!
//! Usage: `perf_report [--quick] [--chunks N] [--out PATH]`
//!
//! * `--quick` — CI-sized run (~60k logical chunks per backup);
//! * `--chunks N` — logical chunks per backup (default 1,000,000);
//! * `--out PATH` — output path (default `BENCH_attack.json`).

use std::time::Instant;

use freqdedup_bench::harness;
use freqdedup_core::attacks::locality::{LocalityAttack, LocalityParams};
use freqdedup_core::counting::ChunkStats;
use freqdedup_core::dense::DenseStats;
use freqdedup_core::metrics::Inference;
use freqdedup_datasets::fsl::{self, FslConfig};
use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
use freqdedup_trace::{Backup, Fingerprint};

const USAGE: &str = "usage: perf_report [--quick] [--chunks N] [--out PATH]
Times the locality attack (COUNT + crawl) on a synthetic backup pair over
the reference hash-map path and the dense-id/CSR path, verifies identical
inference output, and writes BENCH_attack.json.";

const DEFAULT_CHUNKS: usize = 1_000_000;
const QUICK_CHUNKS: usize = 60_000;

struct Args {
    chunks: usize,
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        chunks: DEFAULT_CHUNKS,
        quick: false,
        out: "BENCH_attack.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                args.quick = true;
                args.chunks = QUICK_CHUNKS;
            }
            "--chunks" => {
                let v = it.next().unwrap_or_else(|| die("--chunks needs a value"));
                args.chunks = v
                    .parse()
                    .unwrap_or_else(|_| die("--chunks must be an integer"));
                if args.chunks == 0 {
                    die("--chunks must be positive");
                }
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| die("--out needs a value"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("perf_report: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Milliseconds spent in `f`, plus its result.
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

fn sorted_pairs(inf: &Inference) -> Vec<(Fingerprint, Fingerprint)> {
    let mut v: Vec<_> = inf.iter().collect();
    v.sort_unstable();
    v
}

/// Builds the benchmark pair: two consecutive FSL-like monthly backups of
/// ~`chunks` logical chunks each; the newer one is deterministically
/// encrypted (the adversary's tap), the older one is the plaintext aux.
fn build_pair(chunks: usize) -> (Backup, Backup) {
    let cfg = FslConfig {
        backups: 2,
        ..FslConfig::scaled((chunks / 6).max(100))
    };
    let series = fsl::generate(&cfg);
    let aux = series.get(0).expect("two backups generated").clone();
    let target = series.get(1).expect("two backups generated");
    let enc = DeterministicTraceEncryptor::new(harness::MLE_SECRET);
    (aux, enc.encrypt_backup(target).backup)
}

fn main() {
    let args = parse_args();
    let params = LocalityParams::default();
    let attack = LocalityAttack::new(params.clone());

    eprintln!(
        "perf_report: generating pair (~{} chunks per backup)...",
        args.chunks
    );
    let (aux, cipher) = build_pair(args.chunks);
    eprintln!(
        "perf_report: cipher {} logical / {} unique chunks; aux {} logical",
        cipher.len(),
        cipher.unique_count(),
        aux.len()
    );

    // Warm the allocator and page cache once per path, so the timed runs
    // below don't charge first-touch page faults to whichever path goes
    // first.
    drop(ChunkStats::full_with_policy(&cipher, params.tie_policy));
    drop(DenseStats::full_with_policy(&cipher, params.tie_policy));

    // COUNT in isolation (both sides), then the attack end-to-end (COUNT +
    // seed + crawl — what Algorithm 2 actually costs).
    let (ref_count_ms, _) = timed(|| {
        (
            ChunkStats::full_with_policy(&cipher, params.tie_policy),
            ChunkStats::full_with_policy(&aux, params.tie_policy),
        )
    });
    let (ref_e2e_ms, ref_inference) = timed(|| attack.run_ciphertext_only_reference(&cipher, &aux));

    let (dense_count_ms, _) = timed(|| {
        (
            DenseStats::full_with_policy(&cipher, params.tie_policy),
            DenseStats::full_with_policy(&aux, params.tie_policy),
        )
    });
    let (dense_e2e_ms, dense_inference) = timed(|| attack.run_ciphertext_only(&cipher, &aux));

    let identical = sorted_pairs(&ref_inference) == sorted_pairs(&dense_inference);
    let speedup_e2e = ref_e2e_ms / dense_e2e_ms;
    let speedup_count = ref_count_ms / dense_count_ms;

    let json = format!(
        "{{\n  \"bench\": \"locality_attack_end_to_end\",\n  \"quick\": {},\n  \"logical_chunks_per_backup\": {},\n  \"unique_chunks_cipher\": {},\n  \"reference\": {{ \"count_ms\": {:.1}, \"end_to_end_ms\": {:.1} }},\n  \"dense\": {{ \"count_ms\": {:.1}, \"end_to_end_ms\": {:.1} }},\n  \"speedup_count\": {:.2},\n  \"speedup_end_to_end\": {:.2},\n  \"identical_inference\": {},\n  \"inferred_pairs\": {}\n}}\n",
        args.quick,
        cipher.len(),
        cipher.unique_count(),
        ref_count_ms,
        ref_e2e_ms,
        dense_count_ms,
        dense_e2e_ms,
        speedup_count,
        speedup_e2e,
        identical,
        dense_inference.len(),
    );
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", args.out)));
    print!("{json}");

    if !identical {
        eprintln!("perf_report: FAIL — reference and dense inference sets differ");
        std::process::exit(1);
    }
    eprintln!(
        "perf_report: dense path is {speedup_e2e:.2}x end-to-end ({speedup_count:.2}x on COUNT); wrote {}",
        args.out
    );
}
