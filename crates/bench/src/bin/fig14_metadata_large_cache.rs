//! Figure 14: on-disk metadata access with a fingerprint cache **large
//! enough for every fingerprint** (the paper's 4 GB cache ≈ 2× the FSL
//! fingerprint metadata).
//!
//! Paper shape: with no capacity misses, prefetched fingerprints stay
//! cached, loading access drops sharply, and the combined scheme now incurs
//! *less* metadata access than MLE (by 6.4–20%) because its extra unique
//! chunks mean fewer index-hit prefetches.

use freqdedup_bench::{cli, metadata_exp};

const USAGE: &str = "fig14_metadata_large_cache [--scale f] [--seed n] [--csv]";

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Figure 14: metadata access, large fingerprint cache (200% of fingerprints)");
    metadata_exp::run(args.scale, args.seed, 2.0, args.csv);
}
