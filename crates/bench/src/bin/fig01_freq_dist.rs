//! Figure 1: frequency distributions of chunks with duplicate content in the
//! FSL and VM datasets — the skew that motivates frequency analysis.
//!
//! Paper shape: the overwhelming majority of chunks occur rarely (FSL: 99.8%
//! fewer than 100 times) while a tiny fraction occurs orders of magnitude
//! more often.

use freqdedup_bench::{cli, data, output};
use freqdedup_trace::stats::FrequencyCdf;

const USAGE: &str = "fig01_freq_dist [--scale f] [--seed n] [--csv]";

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Figure 1: chunk frequency distribution (duplicate-content chunks)");
    let mut table = output::Table::new(&["dataset", "cdf", "frequency"]);
    let mut summary = output::Table::new(&[
        "dataset",
        "unique_dup_chunks",
        "max_frequency",
        "frac_above_100_%",
        "frac_above_1000_%",
    ]);
    for dataset in [data::Dataset::Fsl, data::Dataset::Vm] {
        let series = data::series(dataset, args.scale, args.seed);
        let cdf = FrequencyCdf::from_backups(series.iter(), true);
        for (q, f) in cdf.points(21) {
            table.push_row(vec![
                dataset.name().into(),
                format!("{q:.2}"),
                f.to_string(),
            ]);
        }
        summary.push_row(vec![
            dataset.name().into(),
            cdf.len().to_string(),
            cdf.max_frequency().to_string(),
            output::pct(cdf.fraction_above(100)),
            output::pct(cdf.fraction_above(1000)),
        ]);
    }
    table.print(args.csv);
    println!();
    summary.print(args.csv);
}
