//! Figure 6: inference rate in ciphertext-only mode — fixed auxiliary backup
//! (the first one), varying the target backup.
//!
//! Paper shape: rates are highest for targets adjacent to the auxiliary
//! backup and decay as updates accumulate; the VM dataset collapses once the
//! target crosses the heavy-activity window.

use freqdedup_bench::{cli, data, harness, output};
use freqdedup_core::attacks::AttackKind;

const USAGE: &str = "fig06_vary_target [--scale f] [--seed n] [--threads t] [--csv]";

fn main() {
    let args = cli::parse(std::env::args().skip(1), USAGE);
    println!("# Figure 6: ciphertext-only inference rate, varying target backup");
    for dataset in [
        data::Dataset::Fsl,
        data::Dataset::Synthetic,
        data::Dataset::Vm,
    ] {
        let series = data::series(dataset, args.scale, args.seed);
        let aux = series.get(0).expect("non-empty");
        let mut table = output::Table::new(&[
            "dataset",
            "target_backup",
            "basic_%",
            "locality_%",
            "advanced_%",
        ]);
        for target_idx in 1..series.len() {
            let target = series.get(target_idx).expect("target");
            let params = harness::co_params().threads(args.threads);
            let basic = harness::run_ciphertext_only(AttackKind::Basic, aux, target, &params);
            let locality = harness::run_ciphertext_only(AttackKind::Locality, aux, target, &params);
            let advanced = if dataset == data::Dataset::Vm {
                locality
            } else {
                harness::run_ciphertext_only(AttackKind::Advanced, aux, target, &params)
            };
            table.push_row(vec![
                dataset.name().into(),
                target.label.clone(),
                output::pct(basic.rate),
                output::pct(locality.rate),
                output::pct(advanced.rate),
            ]);
        }
        println!("\n## {dataset} dataset (auxiliary: {})", aux.label);
        table.print(args.csv);
    }
}
