//! `tournament` — the leakage-vs-overhead frontier of every defense.
//!
//! Sweeps **every attack** (basic / locality / advanced, each under both
//! neighbour-table tie-break policies, batch *and* streaming) against
//! **every shipped [`DefenseScheme`]** on the synthetic FSL-like backup
//! pair, at 1M-chunk scale by default. Every defended stream travels the
//! real route: the scheme encrypts the target backup, the ciphertext is
//! uploaded through `freqdedup_server::client::Client` to a loopback
//! `Server` in epoch-sized commits, and the attacks read the provider's
//! `AdversaryTap` — batch via a series recompute over the committed tape,
//! streaming via the tap's running `IncrementalStats` — so the recorded
//! rates are what the provider-side adversary actually achieves.
//!
//! The roster (the frontier's rows):
//!
//! * `none` — [`NoDefense`], the baseline; its ciphertext stream is
//!   asserted **bit-identical** to the plain deterministic-MLE pipeline.
//! * `minhash`, `scramble`, `minhash-scramble` — the paper's §6–§7
//!   defenses on the trait.
//! * `ted@b` — TED-style tunable dedup at storage-blowup budgets
//!   1.25 / 1.5 / 2.0.
//! * `pfse@b` — partition-based frequency smoothing (8 partitions) at
//!   the same budgets.
//!
//! Per row the tournament records the measured storage blowup (unique
//! ciphertexts / unique plaintexts), encryption wall-clock and
//! throughput, and the inference rate per attack × policy; it asserts
//! streaming ≡ batch for every cell and — the acceptance bar — that TED
//! and PFSE at ≤2× blowup infer **strictly less** than `none` under the
//! locality attack on both policies. The frontier lands in a `defense`
//! section merged into `BENCH_attack.json` (guarded by
//! `ci/bench_guard.py`: encryption throughput at the drop threshold,
//! leakage rates at exact equality — the sweep is deterministic, so any
//! drift is a correctness bug).
//!
//! Usage: `tournament [--quick] [--chunks N] [--threads T] [--out PATH]`
//!
//! * `--quick` — CI-sized run (~60k logical chunks per backup);
//! * `--chunks N` — logical chunks per backup (default 1,000,000);
//! * `--threads T` — attack worker threads (default 0 = auto);
//! * `--out PATH` — JSON artifact to merge the `defense` section into
//!   (default `BENCH_attack.json`; other sections are preserved).

use std::time::Instant;

use freqdedup_bench::harness;
use freqdedup_core::attacks::locality::LocalityParams;
use freqdedup_core::attacks::{self, AttackKind};
use freqdedup_core::counting::TiePolicy;
use freqdedup_core::defense::prelude::*;
use freqdedup_core::metrics::{self, Inference};
use freqdedup_core::par::ParConfig;
use freqdedup_datasets::fsl::{self, FslConfig};
use freqdedup_mle::trace_enc::{DeterministicTraceEncryptor, EncryptedBackup};
use freqdedup_server::client::Client;
use freqdedup_server::server::{Server, ServerConfig, TapView};
use freqdedup_store::engine::DedupConfig;
use freqdedup_trace::{Backup, Fingerprint};

const USAGE: &str = "usage: tournament [--quick] [--chunks N] [--threads T] [--out PATH]
Runs every attack (basic/locality/advanced x both tie-break policies,
batch + streaming) against every defense scheme through the real
client -> server -> adversary-tap route and merges the resulting
leakage-vs-overhead frontier into BENCH_attack.json as a `defense`
section. Asserts the NoDefense stream bit-identical to the plain MLE
pipeline, streaming == batch everywhere, and TED/PFSE at <=2x blowup
strictly below NoDefense under the locality attack.";

const DEFAULT_CHUNKS: usize = 1_000_000;
const QUICK_CHUNKS: usize = 60_000;
/// Commits per defended upload: enough boundaries to exercise the
/// streaming fold without drowning the run in connection setup.
const EPOCHS: usize = 8;
const KINDS: [AttackKind; 3] = [
    AttackKind::Basic,
    AttackKind::Locality,
    AttackKind::Advanced,
];
/// The tunable budgets swept for TED and PFSE (all within the 2x
/// acceptance ceiling).
const BUDGETS: [f64; 3] = [1.25, 1.5, 2.0];
/// PFSE partition count (the paper-shaped default).
const PARTITIONS: usize = 8;

struct Args {
    chunks: usize,
    quick: bool,
    threads: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        chunks: DEFAULT_CHUNKS,
        quick: false,
        threads: 0,
        out: "BENCH_attack.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                args.quick = true;
                args.chunks = QUICK_CHUNKS;
            }
            "--chunks" => {
                let v = it.next().unwrap_or_else(|| die("--chunks needs a value"));
                args.chunks = v
                    .parse()
                    .unwrap_or_else(|_| die("--chunks must be an integer"));
                if args.chunks == 0 {
                    die("--chunks must be positive");
                }
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| die("--threads needs a value"));
                args.threads = v
                    .parse()
                    .unwrap_or_else(|_| die("--threads must be an integer (0 = auto)"));
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| die("--out needs a value"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("tournament: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Milliseconds spent in `f`, plus its result.
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

fn sorted_pairs(inf: &Inference) -> Vec<(Fingerprint, Fingerprint)> {
    let mut v: Vec<_> = inf.iter().collect();
    v.sort_unstable();
    v
}

/// The benchmark pair, identical to `perf_report`'s: two consecutive
/// FSL-like monthly backups; the older is the plaintext aux, the newer
/// the encryption target.
fn build_pair(chunks: usize) -> (Backup, Backup) {
    let cfg = FslConfig {
        backups: 2,
        ..FslConfig::scaled((chunks / 6).max(100))
    };
    let series = fsl::generate(&cfg);
    let aux = series.get(0).expect("two backups generated").clone();
    let target = series.get(1).expect("two backups generated").clone();
    (aux, target)
}

fn store_config(unique: usize) -> DedupConfig {
    DedupConfig {
        cache_entries: unique / 4,
        bloom_expected: (unique as u64).max(1024),
        ..DedupConfig::default()
    }
}

/// One frontier row: a scheme configuration with its measured overhead
/// and the inference rate per attack kind x tie-break policy.
struct Row {
    label: String,
    budget: Option<f64>,
    blowup: f64,
    encrypt_ms: f64,
    enc_chunks_per_ms: f64,
    /// `rates[kind][policy]`, kinds in [`KINDS`] order, policies in
    /// `[StreamOrder, KeyOrder]` order.
    rates: [[f64; 2]; 3],
}

impl Row {
    fn locality(&self) -> [f64; 2] {
        self.rates[1]
    }

    fn json(&self) -> String {
        let budget = self
            .budget
            .map_or("null".to_string(), |b| format!("{b:.2}"));
        format!(
            "{{ \"scheme\": \"{}\", \"budget\": {budget}, \"blowup\": {:.4}, \
             \"encrypt_ms\": {:.1}, \"enc_chunks_per_ms\": {:.1}, \
             \"basic_stream\": {:.6}, \"basic_key\": {:.6}, \
             \"locality_stream\": {:.6}, \"locality_key\": {:.6}, \
             \"advanced_stream\": {:.6}, \"advanced_key\": {:.6} }}",
            self.label,
            self.blowup,
            self.encrypt_ms,
            self.enc_chunks_per_ms,
            self.rates[0][0],
            self.rates[0][1],
            self.rates[1][0],
            self.rates[1][1],
            self.rates[2][0],
            self.rates[2][1],
        )
    }
}

/// Uploads the defended ciphertext stream through the real wire stack —
/// one loopback client committing [`EPOCHS`] epoch manifests — and
/// returns the provider's tap plus the committed tape in commit order.
fn serve_and_tap(cipher: &Backup) -> (TapView, Vec<Backup>) {
    let server = Server::bind(ServerConfig {
        workers: 1,
        engine: store_config(cipher.unique_count()),
        ..ServerConfig::default()
    })
    .expect("bind loopback tournament server");
    let addr = server.local_addr().expect("local addr");
    let tap = server.tap_handle();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let mut client = Client::connect(addr, "tournament").expect("connect tournament client");
    for (i, range) in freqdedup_core::par::shard_ranges(cipher.chunks.len(), EPOCHS)
        .into_iter()
        .filter(|r| !r.is_empty())
        .enumerate()
    {
        let epoch = Backup::from_chunks(format!("epoch-{i:02}"), cipher.chunks[range].to_vec());
        client.upload_backup(&epoch).expect("upload epoch");
        client.commit(&epoch.label).expect("commit epoch");
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let tape = tap.with_tap(|t| {
        assert!(t.streaming_consistent(), "tap streaming state diverged");
        t.committed().to_vec()
    });
    assert_eq!(
        tape.iter().map(Backup::len).sum::<usize>(),
        cipher.len(),
        "tap lost chunks"
    );
    (tap, tape)
}

/// Runs one scheme through encryption, the wire route and the full
/// attack grid; returns the frontier row and the scheme's ciphertext.
fn run_scheme(
    label: &str,
    scheme: &dyn DefenseScheme,
    aux: &Backup,
    target: &Backup,
    ctx: &KeyContext,
    params: &LocalityParams,
) -> (Row, EncryptedBackup) {
    eprintln!("tournament: [{label}] encrypting + serving...");
    let (encrypt_ms, enc) = timed(|| scheme.encrypt_backup(target, ctx));
    assert_eq!(enc.backup.len(), target.len(), "scheme dropped chunks");
    let blowup = enc.backup.unique_count() as f64 / target.unique_count().max(1) as f64;
    if let Some(budget) = scheme.blowup_budget() {
        assert!(
            blowup <= budget + 1e-9,
            "[{label}] blowup {blowup:.4} exceeds budget {budget}"
        );
    }
    let (tap, tape) = serve_and_tap(&enc.backup);

    let mut rates = [[0.0f64; 2]; 3];
    for (k, kind) in KINDS.iter().enumerate() {
        let streamed = tap.with_tap(|t| t.streaming_inference_both_policies(*kind, aux, params));
        for (policy, inferred) in streamed {
            let per_policy = params.clone().tie_policy(policy);
            let batch = attacks::run_ciphertext_only_series(*kind, &tape, aux, &per_policy);
            assert_eq!(
                sorted_pairs(&inferred),
                sorted_pairs(&batch),
                "[{label}] streaming {kind} under {policy:?} diverged from batch"
            );
            let report = metrics::score(&inferred, &enc.backup, &enc.truth);
            let p = usize::from(policy == TiePolicy::KeyOrder);
            rates[k][p] = report.rate;
            eprintln!(
                "tournament: [{label}] {kind}/{policy:?}: rate {:.4} ({}/{})",
                report.rate, report.correct, report.total_unique
            );
        }
    }
    let row = Row {
        label: label.to_string(),
        budget: scheme.blowup_budget(),
        blowup,
        encrypt_ms,
        enc_chunks_per_ms: target.len() as f64 / encrypt_ms.max(1e-9),
        rates,
    };
    (row, enc)
}

/// Splices `section` (a complete `  "defense": {...}` block, no trailing
/// comma) into the JSON artifact at `path` as its **last** key,
/// replacing any defense section a previous run left there and
/// preserving every other section. The artifact is hand-formatted (the
/// repo vendors no JSON serializer), so the merge is textual: the
/// defense block is always appended before the closing brace, and an
/// existing one is recognized by its `,\n  "defense":` marker.
fn merge_into_artifact(path: &str, section: &str) -> String {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .filter(|s| s.trim_end().ends_with('}'))
        .unwrap_or_else(|| "{\n  \"bench\": \"defense_tournament\"\n}\n".to_string());
    if let Some(i) = doc.find(",\n  \"defense\":") {
        doc.truncate(i);
        doc.push_str("\n}\n");
    }
    let body = doc
        .trim_end()
        .strip_suffix('}')
        .expect("artifact ends with a closing brace")
        .trim_end()
        .to_string();
    format!("{body},\n{section}\n}}\n")
}

fn main() {
    let args = parse_args();
    let threads = ParConfig::with_threads(args.threads).resolve();
    let params = harness::co_params().threads(threads);
    let ctx = harness::key_context();

    eprintln!(
        "tournament: generating pair (~{} chunks per backup), {threads} worker thread(s)...",
        args.chunks
    );
    let (aux, target) = build_pair(args.chunks);

    // The roster: every shipped scheme, tunables swept across BUDGETS.
    let mut roster: Vec<(String, Box<dyn DefenseScheme>)> = vec![
        ("none".into(), Box::new(NoDefense)),
        (
            "minhash".into(),
            Box::new(MinHashEncryption::new(harness::segment_params(8192))),
        ),
        (
            "scramble".into(),
            Box::new(ScrambleScheme::new(harness::segment_params(8192))),
        ),
        (
            "minhash-scramble".into(),
            Box::new(MinHashScrambleScheme::combined(
                harness::segment_params(8192),
                harness::DEFENSE_SEED,
            )),
        ),
    ];
    for budget in BUDGETS {
        roster.push((
            format!("ted@{budget}"),
            Box::new(TedScheme::new(budget).expect("valid TED budget")),
        ));
        roster.push((
            format!("pfse@{budget}"),
            Box::new(PartitionSmoothing::new(PARTITIONS, budget).expect("valid PFSE parameters")),
        ));
    }

    let mut rows: Vec<Row> = Vec::with_capacity(roster.len());
    for (label, scheme) in &roster {
        let (row, enc) = run_scheme(label, scheme.as_ref(), &aux, &target, &ctx, &params);
        if label == "none" {
            // The acceptance pin: the trait baseline is bit-identical to
            // the pre-trait deterministic-MLE pipeline, stream and truth.
            let direct =
                DeterministicTraceEncryptor::new(harness::MLE_SECRET).encrypt_backup(&target);
            assert_eq!(
                enc.backup.chunks, direct.backup.chunks,
                "NoDefense diverged from the plain deterministic-MLE stream"
            );
            for rec in &direct.backup {
                assert_eq!(
                    enc.truth.plain_of(rec.fp),
                    direct.truth.plain_of(rec.fp),
                    "NoDefense ground truth diverged from the plain pipeline"
                );
            }
            eprintln!("tournament: [none] pinned bit-identical to the undefended pipeline");
        }
        rows.push(row);
    }

    // Acceptance bar: every tunable row at <=2x blowup must leak strictly
    // less than NoDefense under the locality attack, on both policies.
    let baseline = rows[0].locality();
    let mut violations = Vec::new();
    for row in rows.iter().filter(|r| {
        (r.label.starts_with("ted@") || r.label.starts_with("pfse@"))
            && r.budget.is_some_and(|b| b <= 2.0)
    }) {
        for (p, policy) in ["stream", "key"].into_iter().enumerate() {
            if row.locality()[p] >= baseline[p] {
                violations.push(format!(
                    "{} locality/{policy} rate {:.4} not below none's {:.4}",
                    row.label,
                    row.locality()[p],
                    baseline[p]
                ));
            }
        }
    }

    let row_json: Vec<String> = rows.iter().map(|r| format!("    {}", r.json())).collect();
    let section = format!(
        "  \"defense\": {{ \"quick\": {}, \"chunks\": {}, \"unique_chunks_target\": {}, \
         \"epochs\": {EPOCHS}, \"threads\": {threads}, \"rows\": [\n{}\n  ] }}",
        args.quick,
        target.len(),
        target.unique_count(),
        row_json.join(",\n"),
    );
    let json = merge_into_artifact(&args.out, &section);
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", args.out)));

    eprintln!("tournament: frontier ({} rows):", rows.len());
    eprintln!(
        "  {:<18} {:>6} {:>7} {:>9} {:>8} {:>8} {:>8}",
        "scheme", "budget", "blowup", "enc ms", "basic", "locality", "advanced"
    );
    for r in &rows {
        eprintln!(
            "  {:<18} {:>6} {:>7.3} {:>9.1} {:>8.4} {:>8.4} {:>8.4}",
            r.label,
            r.budget.map_or("-".into(), |b| format!("{b:.2}")),
            r.blowup,
            r.encrypt_ms,
            r.rates[0][0].max(r.rates[0][1]),
            r.rates[1][0].max(r.rates[1][1]),
            r.rates[2][0].max(r.rates[2][1]),
        );
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("tournament: FAIL — {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "tournament: all schemes within budget, streaming == batch everywhere, \
         TED/PFSE strictly below the undefended locality rate; merged into {}",
        args.out
    );
}
