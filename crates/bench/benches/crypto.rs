//! Microbenchmarks for the from-scratch crypto substrate: SHA-256, HMAC,
//! AES-256-CTR throughput on chunk-sized buffers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use freqdedup_crypto::{ctr::Aes256Ctr, hmac, sha256};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [4096usize, 8192, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256::digest(data));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmac_sha256");
    let key = [7u8; 32];
    for size in [8usize, 4096] {
        let data = vec![0x5au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| hmac::hmac(&key, data));
        });
    }
    group.finish();
}

fn bench_aes_ctr(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes256_ctr");
    for size in [4096usize, 8192] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut buf = vec![0u8; size];
            b.iter(|| {
                Aes256Ctr::new(&[1u8; 32], &[0u8; 16]).apply_keystream(&mut buf);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sha256, bench_hmac, bench_aes_ctr);
criterion_main!(benches);
