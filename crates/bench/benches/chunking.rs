//! Microbenchmarks for the chunking substrate: Rabin rolling hash,
//! content-defined chunking, and stream segmentation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use freqdedup_chunking::cdc::{chunk_spans, CdcParams};
use freqdedup_chunking::rabin::RabinHasher;
use freqdedup_chunking::segment::{segment_spans, SegmentParams};
use freqdedup_trace::ChunkRecord;

fn pseudo_random(len: usize) -> Vec<u8> {
    let mut x = 0x243f_6a88_85a3_08d3u64;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn bench_rabin(c: &mut Criterion) {
    let data = pseudo_random(1 << 20);
    let mut group = c.benchmark_group("rabin_roll");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("1MiB", |b| {
        b.iter(|| {
            let mut h = RabinHasher::default();
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= h.slide(byte);
            }
            acc
        });
    });
    group.finish();
}

fn bench_cdc(c: &mut Criterion) {
    let data = pseudo_random(4 << 20);
    let params = CdcParams::paper_8kb();
    let mut group = c.benchmark_group("cdc_chunking");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("4MiB_8KB_avg", |b| {
        b.iter(|| chunk_spans(&data, &params));
    });
    group.finish();
}

fn bench_segmentation(c: &mut Criterion) {
    let mut x = 1u64;
    let chunks: Vec<ChunkRecord> = (0..100_000)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ChunkRecord::new(x, 8192)
        })
        .collect();
    let params = SegmentParams::default();
    let mut group = c.benchmark_group("segmentation");
    group.throughput(Throughput::Elements(chunks.len() as u64));
    group.bench_function("100k_chunks", |b| {
        b.iter(|| segment_spans(&chunks, &params));
    });
    group.finish();
}

criterion_group!(benches, bench_rabin, bench_cdc, bench_segmentation);
criterion_main!(benches);
