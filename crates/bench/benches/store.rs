//! Microbenchmarks for the DDFS-like storage engine: Bloom filter, LRU
//! cache, and ingest throughput on duplicate-heavy vs unique streams.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use freqdedup_store::bloom::BloomFilter;
use freqdedup_store::cache::FingerprintCache;
use freqdedup_store::engine::{DedupConfig, DedupEngine};
use freqdedup_trace::{ChunkRecord, Fingerprint};

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    group.throughput(Throughput::Elements(1));
    let mut bloom = BloomFilter::paper_default(1_000_000);
    for i in 0..500_000u64 {
        bloom.insert(Fingerprint(i.wrapping_mul(0x9e3779b97f4a7c15)));
    }
    let mut i = 0u64;
    group.bench_function("insert", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            bloom.insert(Fingerprint(i));
        });
    });
    group.bench_function("query_absent", |b| {
        b.iter(|| bloom.contains(Fingerprint(u64::MAX - 1)));
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("fingerprint_cache");
    group.throughput(Throughput::Elements(1));
    let mut cache = FingerprintCache::new(100_000);
    for i in 0..100_000u64 {
        cache.insert(Fingerprint(i));
    }
    let mut i = 0u64;
    group.bench_function("hit", |b| {
        b.iter(|| {
            i = (i + 1) % 100_000;
            cache.lookup(Fingerprint(i))
        });
    });
    group.bench_function("insert_evict", |b| {
        let mut j = 200_000u64;
        b.iter(|| {
            j += 1;
            cache.insert(Fingerprint(j));
        });
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("dedup_engine_ingest");
    group.sample_size(10);
    let unique: Vec<ChunkRecord> = (0..200_000u64)
        .map(|i| ChunkRecord::new(i.wrapping_mul(0x9e3779b97f4a7c15), 8192))
        .collect();
    group.throughput(Throughput::Elements(unique.len() as u64));
    group.bench_function("unique_stream", |b| {
        b.iter(|| {
            let mut engine =
                DedupEngine::new(DedupConfig::paper(64 * 1024 * 1024, 300_000)).unwrap();
            for &rec in &unique {
                engine.process(rec);
            }
            engine.finish();
        });
    });
    group.bench_function("second_full_backup", |b| {
        // Duplicate-heavy: the locality prefetch path dominates.
        let mut engine = DedupEngine::new(DedupConfig::paper(64 * 1024 * 1024, 300_000)).unwrap();
        for &rec in &unique {
            engine.process(rec);
        }
        engine.finish();
        b.iter(|| {
            for &rec in &unique {
                engine.process(rec);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_bloom, bench_cache, bench_engine);
criterion_main!(benches);
