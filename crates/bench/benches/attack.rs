//! Microbenchmarks for the attack pipeline: COUNT, FREQ-ANALYSIS, and the
//! three end-to-end attacks on a small FSL-like pair.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use freqdedup_bench::harness;
use freqdedup_core::attacks::basic::BasicAttack;
use freqdedup_core::attacks::locality::{LocalityAttack, LocalityParams};
use freqdedup_core::counting::ChunkStats;
use freqdedup_core::dense::DenseStats;
use freqdedup_core::ext::lp_opt::lp_optimization_attack;
use freqdedup_core::freq_analysis::freq_analysis;
use freqdedup_datasets::fsl::{generate, FslConfig};
use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
use freqdedup_trace::Backup;

fn small_pair() -> (Backup, Backup) {
    let series = generate(&FslConfig::scaled(2000));
    let aux = series.get(3).unwrap().clone();
    let enc = DeterministicTraceEncryptor::new(harness::MLE_SECRET);
    let target = enc.encrypt_backup(series.get(4).unwrap()).backup;
    (aux, target)
}

fn bench_counting(c: &mut Criterion) {
    let (aux, _) = small_pair();
    let mut group = c.benchmark_group("count");
    group.throughput(Throughput::Elements(aux.len() as u64));
    group.bench_function("full", |b| b.iter(|| ChunkStats::full(&aux)));
    group.bench_function("full_dense", |b| b.iter(|| DenseStats::full(&aux)));
    group.bench_function("frequencies_only", |b| {
        b.iter(|| ChunkStats::frequencies_only(&aux))
    });
    group.bench_function("frequencies_only_dense", |b| {
        b.iter(|| DenseStats::frequencies_only(&aux))
    });
    group.finish();
}

fn bench_freq_analysis(c: &mut Criterion) {
    let (aux, target) = small_pair();
    let sm = ChunkStats::frequencies_only(&aux);
    let sc = ChunkStats::frequencies_only(&target);
    let mut group = c.benchmark_group("freq_analysis");
    group.bench_function("full_tables", |b| {
        b.iter(|| freq_analysis(&sc.freq, &sm.freq, usize::MAX));
    });
    group.bench_function("top_1", |b| {
        b.iter(|| freq_analysis(&sc.freq, &sm.freq, 1));
    });
    group.finish();
}

fn bench_attacks(c: &mut Criterion) {
    let (aux, target) = small_pair();
    let mut group = c.benchmark_group("attack_end_to_end");
    group.sample_size(10);
    group.bench_function("basic", |b| {
        b.iter(|| BasicAttack::new().run(&target, &aux));
    });
    group.bench_function("locality", |b| {
        let attack = LocalityAttack::new(LocalityParams::default());
        b.iter(|| attack.run_ciphertext_only(&target, &aux));
    });
    group.bench_function("locality_reference", |b| {
        let attack = LocalityAttack::new(LocalityParams::default());
        b.iter(|| attack.run_ciphertext_only_reference(&target, &aux));
    });
    group.bench_function("advanced", |b| {
        let attack = LocalityAttack::new(LocalityParams::default().size_aware(true));
        b.iter(|| attack.run_ciphertext_only(&target, &aux));
    });
    group.bench_function("lp_opt_top200", |b| {
        b.iter(|| lp_optimization_attack(&target, &aux, 200, 1.0));
    });
    group.finish();
}

criterion_group!(benches, bench_counting, bench_freq_analysis, bench_attacks);
criterion_main!(benches);
