//! Microbenchmarks for the defenses: MinHash encryption, scrambling, the
//! combined pipeline, and the content-path MLE schemes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use freqdedup_bench::harness;
use freqdedup_core::defense::{MinHashScrambleScheme, Scrambler};
use freqdedup_mle::{convergent::Convergent, Mle};
use freqdedup_trace::{Backup, ChunkRecord};

fn sample_backup(n: usize) -> Backup {
    let mut x = 1u64;
    Backup::from_chunks(
        "bench",
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ChunkRecord::new(x, 8192)
            })
            .collect(),
    )
}

fn bench_defenses(c: &mut Criterion) {
    let backup = sample_backup(100_000);
    let params = harness::segment_params(8192);
    let mut group = c.benchmark_group("defense_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(backup.len() as u64));
    group.bench_function("minhash_only", |b| {
        let scheme = MinHashScrambleScheme::minhash_only(params.clone());
        b.iter(|| scheme.encrypt_backup(&backup));
    });
    group.bench_function("scramble_only", |b| {
        let scrambler = Scrambler::new(params.clone(), 42);
        b.iter(|| scrambler.scramble_backup(&backup));
    });
    group.bench_function("combined", |b| {
        let scheme = MinHashScrambleScheme::combined(params.clone(), 42);
        b.iter(|| scheme.encrypt_backup(&backup));
    });
    group.finish();
}

fn bench_mle_content(c: &mut Criterion) {
    let chunk = vec![0x5au8; 8192];
    let mut group = c.benchmark_group("mle_content");
    group.throughput(Throughput::Bytes(chunk.len() as u64));
    group.bench_function("convergent_encrypt_8k", |b| {
        let mle = Convergent::new();
        b.iter(|| mle.encrypt(&chunk).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_defenses, bench_mle_content);
criterion_main!(benches);
