//! The AES block cipher (FIPS-197), with 128- and 256-bit keys.
//!
//! A straightforward byte-oriented implementation (S-box lookups plus
//! `xtime`-based MixColumns). Not side-channel hardened — see the crate-level
//! security note. Both encryption and decryption directions are provided so
//! the storage read path can be exercised end to end.

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse AES S-box.
const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

/// Multiplication by x in GF(2^8) with the AES polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// Generic GF(2^8) multiplication. Compile-time only: runtime InvMixColumns
/// reads the precomputed [`MUL9`]/[`MUL11`]/[`MUL13`]/[`MUL14`] tables
/// instead of running this 8-iteration loop per byte.
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// Builds the 256-entry GF(2^8) multiplication table of a constant factor.
const fn gmul_table(factor: u8) -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = gmul(i as u8, factor);
        i += 1;
    }
    table
}

/// InvMixColumns multiplication tables for the four matrix coefficients
/// ({9, 11, 13, 14}); 1 KiB total, resident in L1 on the decryption path.
const MUL9: [u8; 256] = gmul_table(9);
const MUL11: [u8; 256] = gmul_table(11);
const MUL13: [u8; 256] = gmul_table(13);
const MUL14: [u8; 256] = gmul_table(14);

/// Key size variants supported by [`Aes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes256 => 14,
        }
    }

    fn key_words(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes256 => 8,
        }
    }
}

/// An expanded AES key, usable for block encryption and decryption.
///
/// # Example
///
/// ```
/// use freqdedup_crypto::aes::Aes;
///
/// let aes = Aes::new_128(&[0u8; 16]);
/// let mut block = *b"sixteen  bytes!!";
/// let original = block;
/// aes.encrypt_block(&mut block);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, original);
/// ```
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes").field("rounds", &self.rounds).finish()
    }
}

impl Aes {
    /// Expands a 128-bit key.
    #[must_use]
    pub fn new_128(key: &[u8; 16]) -> Self {
        Self::expand(key, KeySize::Aes128)
    }

    /// Expands a 256-bit key.
    #[must_use]
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::expand(key, KeySize::Aes256)
    }

    fn expand(key: &[u8], size: KeySize) -> Self {
        let nk = size.key_words();
        let rounds = size.rounds();
        let total_words = 4 * (rounds + 1);

        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }

        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();

        Aes { round_keys, rounds }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[self.rounds]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..self.rounds).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// Number of rounds (10 for AES-128, 14 for AES-256).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

/// State is column-major: byte `state[4*c + r]` is row r, column c.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (= right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift right by 1.
    let t = state[13];
    state[13] = state[9];
    state[9] = state[5];
    state[5] = state[1];
    state[1] = t;
    // Row 2: shift right by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift right by 3 (= left by 1).
    let t = state[3];
    state[3] = state[7];
    state[7] = state[11];
    state[11] = state[15];
    state[15] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        state[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
        state[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
        state[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
        state[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        let [a, b, d, e] = col.map(usize::from);
        state[4 * c] = MUL14[a] ^ MUL11[b] ^ MUL13[d] ^ MUL9[e];
        state[4 * c + 1] = MUL9[a] ^ MUL14[b] ^ MUL11[d] ^ MUL13[e];
        state[4 * c + 2] = MUL13[a] ^ MUL9[b] ^ MUL14[d] ^ MUL11[e];
        state[4 * c + 3] = MUL11[a] ^ MUL13[b] ^ MUL9[d] ^ MUL14[e];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn inv_mix_tables_match_gmul() {
        for i in 0..=255u8 {
            assert_eq!(MUL9[i as usize], gmul(i, 9));
            assert_eq!(MUL11[i as usize], gmul(i, 11));
            assert_eq!(MUL13[i as usize], gmul(i, 13));
            assert_eq!(MUL14[i as usize], gmul(i, 14));
        }
    }

    // FIPS-197 Appendix C.1.
    #[test]
    fn fips197_aes128() {
        let key: [u8; 16] = parse_hex("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let mut block: [u8; 16] = parse_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let aes = Aes::new_128(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(
            block.to_vec(),
            parse_hex("69c4e0d86a7b0430d8cdb78070b4c55a")
        );
        aes.decrypt_block(&mut block);
        assert_eq!(
            block.to_vec(),
            parse_hex("00112233445566778899aabbccddeeff")
        );
    }

    // FIPS-197 Appendix C.3.
    #[test]
    fn fips197_aes256() {
        let key: [u8; 32] =
            parse_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let mut block: [u8; 16] = parse_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let aes = Aes::new_256(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(
            block.to_vec(),
            parse_hex("8ea2b7ca516745bfeafc49904b496089")
        );
        aes.decrypt_block(&mut block);
        assert_eq!(
            block.to_vec(),
            parse_hex("00112233445566778899aabbccddeeff")
        );
    }

    // SP 800-38A F.1.1 (ECB-AES128) first block.
    #[test]
    fn sp800_38a_ecb128_block1() {
        let key: [u8; 16] = parse_hex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let mut block: [u8; 16] = parse_hex("6bc1bee22e409f96e93d7e117393172a")
            .try_into()
            .unwrap();
        Aes::new_128(&key).encrypt_block(&mut block);
        assert_eq!(
            block.to_vec(),
            parse_hex("3ad77bb40d7a3660a89ecaf32466ef97")
        );
    }

    #[test]
    fn roundtrip_many_random_blocks() {
        // Deterministic pseudo-random coverage of the round functions.
        let aes128 = Aes::new_128(&[7u8; 16]);
        let aes256 = Aes::new_256(&[9u8; 32]);
        let mut x = 0x0123_4567_89ab_cdefu64;
        for _ in 0..200 {
            let mut block = [0u8; 16];
            for b in &mut block {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (x >> 56) as u8;
            }
            let orig = block;
            aes128.encrypt_block(&mut block);
            assert_ne!(block, orig);
            aes128.decrypt_block(&mut block);
            assert_eq!(block, orig);
            aes256.encrypt_block(&mut block);
            aes256.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn rounds_reported() {
        assert_eq!(Aes::new_128(&[0; 16]).rounds(), 10);
        assert_eq!(Aes::new_256(&[0; 32]).rounds(), 14);
    }

    #[test]
    fn debug_hides_key_material() {
        let s = format!("{:?}", Aes::new_128(&[0x42; 16]));
        assert!(!s.contains("42"), "debug output leaked key bytes: {s}");
    }
}
