//! From-scratch cryptographic primitives for the `freqdedup` workspace.
//!
//! This crate deliberately has **zero external dependencies**: every primitive
//! used by the encrypted-deduplication stack is implemented in-repo and tested
//! against the published standard vectors, so the whole security substrate of
//! the reproduction is auditable in one place.
//!
//! Provided primitives:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (streaming and one-shot).
//! * [`hmac`] — HMAC-SHA256 (RFC 2104, tested against RFC 4231).
//! * [`aes`] — the AES-128 / AES-256 block cipher (FIPS-197).
//! * [`ctr`] — CTR-mode stream encryption (NIST SP 800-38A).
//! * [`kdf`] — HKDF-SHA256-style key derivation (RFC 5869).
//!
//! # Security note
//!
//! The implementations favour clarity over side-channel hardening (table-based
//! AES, non-constant-time comparisons unless [`constant_time_eq`] is used).
//! They are intended for the trace-driven research workloads in this
//! repository, matching how the original paper's artifact used OpenSSL purely
//! as a deterministic building block.
//!
//! # Example
//!
//! ```
//! use freqdedup_crypto::{sha256, ctr::Aes256Ctr};
//!
//! let key = sha256::digest(b"chunk content"); // convergent key
//! let mut data = b"chunk content".to_vec();
//! Aes256Ctr::new(&key, &[0u8; 16]).apply_keystream(&mut data);
//! assert_ne!(&data, b"chunk content");
//! Aes256Ctr::new(&key, &[0u8; 16]).apply_keystream(&mut data);
//! assert_eq!(&data, b"chunk content");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ctr;
pub mod hmac;
pub mod kdf;
pub mod sha256;

/// Compares two byte slices in time that depends only on the lengths, not on
/// the contents.
///
/// Returns `false` immediately when the lengths differ (the length is not
/// considered secret).
///
/// # Example
///
/// ```
/// assert!(freqdedup_crypto::constant_time_eq(b"tag", b"tag"));
/// assert!(!freqdedup_crypto::constant_time_eq(b"tag", b"tbg"));
/// ```
#[must_use]
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_time_eq_equal() {
        assert!(constant_time_eq(b"", b""));
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(constant_time_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn constant_time_eq_unequal_content() {
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(&[0u8; 32], &[1u8; 32]));
    }

    #[test]
    fn constant_time_eq_unequal_length() {
        assert!(!constant_time_eq(b"abc", b"abcd"));
        assert!(!constant_time_eq(b"abc", b""));
    }
}
