//! SHA-256 as specified in FIPS 180-4.
//!
//! Provides a streaming [`Sha256`] hasher plus the one-shot helpers
//! [`digest`] and [`digest_parts`].

/// Size of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// Size of a SHA-256 input block in bytes.
pub const BLOCK_LEN: usize = 64;

const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// A streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use freqdedup_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let d = h.finalize();
/// assert_eq!(d[0], 0xba);
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        if self.buf_len > 0 {
            let want = BLOCK_LEN - self.buf_len;
            let take = want.min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }

        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let mut arr = [0u8; BLOCK_LEN];
            arr.copy_from_slice(block);
            self.compress(&arr);
            input = rest;
        }

        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Finishes the computation and returns the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero padding until 8 bytes remain in the block.
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            BLOCK_LEN + 56 - self.buf_len
        };
        self.update_no_count(&pad[..pad_len]);
        self.update_no_count(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// `update` without advancing the message length counter (padding only).
    fn update_no_count(&mut self, data: &[u8]) {
        let saved = self.total_len;
        self.update(data);
        self.total_len = saved;
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of a single byte slice.
///
/// # Example
///
/// ```
/// let d = freqdedup_crypto::sha256::digest(b"");
/// assert_eq!(d[..4], [0xe3, 0xb0, 0xc4, 0x42]);
/// ```
#[must_use]
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 over the concatenation of several parts, without
/// materializing the concatenation.
///
/// Used pervasively for domain-separated hashing such as the MinHash
/// encryption rule `SHA-256(h || fingerprint)` of the paper's §7.1.
#[must_use]
pub fn digest_parts(parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// Truncates a digest to a little-endian `u64`, the fingerprint width used by
/// the trace-level simulations.
#[must_use]
pub fn digest_to_u64(d: &[u8; DIGEST_LEN]) -> u64 {
    u64::from_le_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / NIST CAVP vectors.
    #[test]
    fn vector_empty() {
        assert_eq!(
            hex(&digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn vector_abc() {
        assert_eq!(
            hex(&digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn vector_two_blocks() {
        assert_eq!(
            hex(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn vector_million_a() {
        let mut h = Sha256::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&block);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn vector_448_bits_boundary() {
        // Exactly 56 bytes: padding must spill into a second block.
        let msg = [0x41u8; 56];
        let whole = digest(&msg);
        let mut h = Sha256::new();
        h.update(&msg[..13]);
        h.update(&msg[13..]);
        assert_eq!(h.finalize(), whole);
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7 + 3) as u8).collect();
        let want = digest(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn digest_parts_matches_concat() {
        let want = digest(b"hello world");
        assert_eq!(digest_parts(&[b"hello", b" ", b"world"]), want);
        assert_eq!(digest_parts(&[b"hello world"]), want);
        assert_eq!(digest_parts(&[b"", b"hello world", b""]), want);
    }

    #[test]
    fn digest_to_u64_is_le_prefix() {
        let d = digest(b"abc");
        let v = digest_to_u64(&d);
        assert_eq!(v.to_le_bytes(), d[..8]);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(digest(b"a"), digest(b"b"));
        assert_ne!(digest(b"ab"), digest(b"ba"));
    }
}
