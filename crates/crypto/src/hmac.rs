//! HMAC-SHA256 (RFC 2104), tested against the RFC 4231 vectors.
//!
//! HMAC backs two pieces of the reproduction:
//!
//! * the DupLESS-style key server of `freqdedup-mle`, which derives MLE keys
//!   as `HMAC(system_secret, fingerprint)` (paper §2.2);
//! * the fingerprint-space deterministic "encryption" used by the
//!   trace-driven evaluation (paper §7.1).

use crate::sha256::{self, Sha256, BLOCK_LEN, DIGEST_LEN};

/// A streaming HMAC-SHA256 computation.
///
/// # Example
///
/// ```
/// use freqdedup_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"secret");
/// mac.update(b"fingerprint");
/// let tag = mac.finalize();
/// assert_eq!(tag, freqdedup_crypto::hmac::hmac(b"secret", b"fingerprint"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length; keys longer
    /// than the block size are hashed first, per RFC 2104).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = sha256::digest(key);
            block_key[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = block_key[i] ^ 0x36;
            opad_key[i] = block_key[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the computation and returns the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
#[must_use]
pub fn hmac(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// One-shot HMAC-SHA256 truncated to a little-endian `u64`, the width of the
/// trace-level fingerprints.
#[must_use]
pub fn hmac_u64(key: &[u8], message: &[u8]) -> u64 {
    sha256::digest_to_u64(&hmac(key, message))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key larger than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 4231 test case 7: long key and long data.
    #[test]
    fn rfc4231_case7_long_key_long_data() {
        let key = [0xaau8; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&hmac(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"some key";
        let msg: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let want = hmac(key, &msg);
        for split in [0usize, 1, 63, 64, 65, 100, 199, 200] {
            let mut mac = HmacSha256::new(key);
            mac.update(&msg[..split]);
            mac.update(&msg[split..]);
            assert_eq!(mac.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn distinct_keys_distinct_tags() {
        assert_ne!(hmac(b"k1", b"m"), hmac(b"k2", b"m"));
    }

    #[test]
    fn hmac_u64_is_le_prefix() {
        let tag = hmac(b"k", b"m");
        assert_eq!(hmac_u64(b"k", b"m").to_le_bytes(), tag[..8]);
    }
}
