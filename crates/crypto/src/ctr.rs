//! CTR-mode stream encryption over AES (NIST SP 800-38A §6.5).
//!
//! CTR is the symmetric mode used by the MLE schemes in `freqdedup-mle`:
//! it is length-preserving, so a ciphertext chunk has exactly the size of its
//! plaintext chunk, matching the paper's advanced attack assumption that both
//! sides classify by `ceil(size / 16)` AES blocks (§4.3).
//!
//! The counter block is the big-endian 128-bit value of the nonce,
//! incremented by one per block (standard incrementing function over the full
//! block, as in SP 800-38A appendix B.1).

use crate::aes::{Aes, BLOCK_LEN};

/// A CTR-mode keystream generator/applier over an expanded AES key.
#[derive(Clone, Debug)]
pub struct Ctr {
    aes: Aes,
    counter: [u8; BLOCK_LEN],
    /// Buffered keystream for partial-block progress.
    keystream: [u8; BLOCK_LEN],
    /// Offset of the next unused keystream byte; `BLOCK_LEN` means empty.
    ks_used: usize,
}

impl Ctr {
    /// Creates a CTR stream from an expanded AES key and a 16-byte initial
    /// counter block (nonce).
    #[must_use]
    pub fn from_aes(aes: Aes, iv: &[u8; BLOCK_LEN]) -> Self {
        Ctr {
            aes,
            counter: *iv,
            keystream: [0u8; BLOCK_LEN],
            ks_used: BLOCK_LEN,
        }
    }

    /// XORs the keystream into `data` in place. Calling this twice with the
    /// same key/IV restores the original data.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.ks_used == BLOCK_LEN {
                self.refill();
            }
            *byte ^= self.keystream[self.ks_used];
            self.ks_used += 1;
        }
    }

    fn refill(&mut self) {
        self.keystream = self.counter;
        self.aes.encrypt_block(&mut self.keystream);
        increment_be(&mut self.counter);
        self.ks_used = 0;
    }
}

/// Increments a big-endian 128-bit counter by one (wrapping).
fn increment_be(counter: &mut [u8; BLOCK_LEN]) {
    for byte in counter.iter_mut().rev() {
        let (v, carry) = byte.overflowing_add(1);
        *byte = v;
        if !carry {
            break;
        }
    }
}

/// AES-128 in CTR mode.
///
/// # Example
///
/// ```
/// use freqdedup_crypto::ctr::Aes128Ctr;
///
/// let mut buf = b"some plaintext".to_vec();
/// Aes128Ctr::new(&[1u8; 16], &[0u8; 16]).apply_keystream(&mut buf);
/// Aes128Ctr::new(&[1u8; 16], &[0u8; 16]).apply_keystream(&mut buf);
/// assert_eq!(buf, b"some plaintext");
/// ```
#[derive(Clone, Debug)]
pub struct Aes128Ctr(Ctr);

impl Aes128Ctr {
    /// Creates the stream from a raw 16-byte key and 16-byte IV.
    #[must_use]
    pub fn new(key: &[u8; 16], iv: &[u8; BLOCK_LEN]) -> Self {
        Aes128Ctr(Ctr::from_aes(Aes::new_128(key), iv))
    }

    /// XORs the keystream into `data` in place.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        self.0.apply_keystream(data);
    }
}

/// AES-256 in CTR mode. This is the cipher used by the MLE schemes (the
/// convergent key is a full SHA-256 digest).
#[derive(Clone, Debug)]
pub struct Aes256Ctr(Ctr);

impl Aes256Ctr {
    /// Creates the stream from a raw 32-byte key and 16-byte IV.
    #[must_use]
    pub fn new(key: &[u8; 32], iv: &[u8; BLOCK_LEN]) -> Self {
        Aes256Ctr(Ctr::from_aes(Aes::new_256(key), iv))
    }

    /// XORs the keystream into `data` in place.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        self.0.apply_keystream(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt.
    #[test]
    fn sp800_38a_ctr_aes128() {
        let key: [u8; 16] = parse_hex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let iv: [u8; 16] = parse_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .try_into()
            .unwrap();
        let mut data = parse_hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        Aes128Ctr::new(&key, &iv).apply_keystream(&mut data);
        assert_eq!(
            data,
            parse_hex(concat!(
                "874d6191b620e3261bef6864990db6ce",
                "9806f66b7970fdff8617187bb9fffdff",
                "5ae4df3edbd5d35e5b4f09020db03eab",
                "1e031dda2fbe03d1792170a0f3009cee"
            ))
        );
    }

    // NIST SP 800-38A F.5.5 CTR-AES256.Encrypt.
    #[test]
    fn sp800_38a_ctr_aes256() {
        let key: [u8; 32] =
            parse_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .try_into()
                .unwrap();
        let iv: [u8; 16] = parse_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .try_into()
            .unwrap();
        let mut data = parse_hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        Aes256Ctr::new(&key, &iv).apply_keystream(&mut data);
        assert_eq!(
            data,
            parse_hex(concat!(
                "601ec313775789a5b7a7f504bbf3d228",
                "f443e3ca4d62b59aca84e990cacaf5c5",
                "2b0930daa23de94ce87017ba2d84988d",
                "dfc9c58db67aada613c2dd08457941a6"
            ))
        );
    }

    #[test]
    fn partial_block_progress_matches_whole() {
        let key = [3u8; 32];
        let iv = [5u8; 16];
        let data: Vec<u8> = (0..100u8).collect();

        let mut whole = data.clone();
        Aes256Ctr::new(&key, &iv).apply_keystream(&mut whole);

        let mut pieces = data.clone();
        let mut ctr = Aes256Ctr::new(&key, &iv);
        for chunk in pieces.chunks_mut(7) {
            ctr.apply_keystream(chunk);
        }
        assert_eq!(pieces, whole);
    }

    #[test]
    fn roundtrip_is_identity() {
        let key = [0xabu8; 16];
        let iv = [0x11u8; 16];
        let original: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut buf = original.clone();
        Aes128Ctr::new(&key, &iv).apply_keystream(&mut buf);
        assert_ne!(buf, original);
        Aes128Ctr::new(&key, &iv).apply_keystream(&mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn deterministic_for_same_key_iv() {
        let mut a = b"payload".to_vec();
        let mut b = b"payload".to_vec();
        Aes256Ctr::new(&[1; 32], &[2; 16]).apply_keystream(&mut a);
        Aes256Ctr::new(&[1; 32], &[2; 16]).apply_keystream(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn different_iv_different_stream() {
        let mut a = b"payload".to_vec();
        let mut b = b"payload".to_vec();
        Aes256Ctr::new(&[1; 32], &[2; 16]).apply_keystream(&mut a);
        Aes256Ctr::new(&[1; 32], &[3; 16]).apply_keystream(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_increment_carries() {
        let mut c = [0xffu8; 16];
        increment_be(&mut c);
        assert_eq!(c, [0u8; 16]);

        let mut c = [0u8; 16];
        c[15] = 0xff;
        increment_be(&mut c);
        assert_eq!(c[15], 0);
        assert_eq!(c[14], 1);
    }

    #[test]
    fn length_preserving() {
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100] {
            let mut buf = vec![0u8; len];
            Aes128Ctr::new(&[0; 16], &[0; 16]).apply_keystream(&mut buf);
            assert_eq!(buf.len(), len);
        }
    }
}
