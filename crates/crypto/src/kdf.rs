//! HKDF-SHA256 key derivation (RFC 5869).
//!
//! Used to derive segment keys in MinHash encryption (the paper's §6.1
//! derives "the segment-based key `K_S` based on `h`") and per-user recipe
//! keys, with domain-separating `info` strings so independent uses can never
//! collide.

use crate::hmac::{hmac, HmacSha256};
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: turns input keying material into a pseudorandom key.
#[must_use]
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `out.len()` bytes of output keying
/// material bound to `info`.
///
/// # Panics
///
/// Panics if `out.len() > 255 * 32` (the RFC 5869 limit).
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(
        out.len() <= 255 * DIGEST_LEN,
        "HKDF output length {} exceeds RFC 5869 limit",
        out.len()
    );
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut written = 0usize;
    while written < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&previous);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - written).min(DIGEST_LEN);
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        previous = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// One-call HKDF: extract-then-expand to a 32-byte key.
///
/// # Example
///
/// ```
/// let k1 = freqdedup_crypto::kdf::derive_key(b"salt", b"ikm", b"segment-key");
/// let k2 = freqdedup_crypto::kdf::derive_key(b"salt", b"ikm", b"recipe-key");
/// assert_ne!(k1, k2); // domain separation
/// ```
#[must_use]
pub fn derive_key(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; DIGEST_LEN] {
    let prk = extract(salt, ikm);
    let mut out = [0u8; DIGEST_LEN];
    expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = parse_hex("000102030405060708090a0b0c");
        let info = parse_hex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            prk.to_vec(),
            parse_hex("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            okm.to_vec(),
            parse_hex(
                "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
            )
        );
    }

    // RFC 5869 test case 2 (longer inputs/outputs).
    #[test]
    fn rfc5869_case2() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let prk = extract(&salt, &ikm);
        let mut okm = [0u8; 82];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            okm.to_vec(),
            parse_hex(concat!(
                "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c",
                "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71",
                "cc30c58179ec3e87c14c01d5c1f3434f1d87"
            ))
        );
    }

    // RFC 5869 test case 3 (empty salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let prk = extract(&[], &ikm);
        let mut okm = [0u8; 42];
        expand(&prk, &[], &mut okm);
        assert_eq!(
            okm.to_vec(),
            parse_hex(
                "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
            )
        );
    }

    #[test]
    fn derive_key_deterministic() {
        assert_eq!(
            derive_key(b"s", b"ikm", b"info"),
            derive_key(b"s", b"ikm", b"info")
        );
    }

    #[test]
    fn derive_key_sensitive_to_all_inputs() {
        let base = derive_key(b"s", b"ikm", b"info");
        assert_ne!(base, derive_key(b"t", b"ikm", b"info"));
        assert_ne!(base, derive_key(b"s", b"ikn", b"info"));
        assert_ne!(base, derive_key(b"s", b"ikm", b"onfo"));
    }

    #[test]
    #[should_panic(expected = "exceeds RFC 5869 limit")]
    fn expand_rejects_oversized_output() {
        let prk = [0u8; 32];
        let mut out = vec![0u8; 255 * 32 + 1];
        expand(&prk, b"", &mut out);
    }

    #[test]
    fn expand_max_length_ok() {
        let prk = [1u8; 32];
        let mut out = vec![0u8; 255 * 32];
        expand(&prk, b"x", &mut out);
        // Last block must be non-zero with overwhelming probability.
        assert!(out[255 * 32 - 32..].iter().any(|&b| b != 0));
    }
}
