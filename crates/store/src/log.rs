//! The on-disk container log: one append-only file per sealed container.
//!
//! Sealed containers are immutable, so each one is serialized into its own
//! `container-NNNNNNNN.clog` file the moment it is sealed — the file *is*
//! the durable copy of the container, written before the seal is recorded
//! in the [manifest journal](crate::manifest) (write-ahead ordering: the
//! manifest record commits the container).
//!
//! ## Format (all integers little-endian)
//!
//! ```text
//! magic        b"FQCL"                          4 bytes
//! version      u16 (= 2)                        2 bytes
//! flags        u8 (bit 0: payload present)      1 byte
//! reserved     u8 (= 0)                         1 byte
//! container id u32                              4 bytes
//! chunk count  u32                              4 bytes
//! data bytes   u64                              8 bytes
//! key epoch    u64 (0 = payloads unwrapped)     8 bytes
//! kcv          u64 key-check value (0 when no key applies)
//! record*      u32 record length (= 12 + payload length)
//!              u64 fingerprint
//!              u32 chunk size
//!              payload bytes (payload mode only; wrapped when epoch > 0)
//! crc          u32 CRC-32 (IEEE) of everything before it
//! ```
//!
//! At key epoch 0 payloads are stored exactly as uploaded. After a
//! [rekey](crate::lifecycle), payloads are wrapped in place with the
//! epoch's [keystream](crate::lifecycle::apply_epoch_keystream) (the CRC
//! covers the wrapped bytes — integrity is checkable without any key),
//! and the header's *kcv* commits to the epoch key so a reader holding a
//! missing or revoked secret gets a typed
//! [`PersistError::WrongKey`] instead of silently unwrapping garbage.
//! In-memory [`Container`]s always hold **unwrapped** payloads; wrapping
//! exists only at the file boundary.
//!
//! A file that ends mid-record, or whose CRC does not match, is a **torn
//! write** ([`PersistError::Torn`]): the process died while the file was
//! being written. Recovery tolerates this only on the *last* sealed
//! container (see `DESIGN.md` §7); a torn file earlier in the sequence is
//! hard corruption.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use freqdedup_trace::Fingerprint;

use crate::container::{Container, ContainerId};
use crate::fault::{FaultFile, IoPolicyHandle, PersistSite};
use crate::lifecycle::{apply_epoch_keystream, key_check_value};
use crate::persist::{maybe_sync_dir, CrcSink, CrcSource, FsyncPolicy, PersistError};

const LOG_MAGIC: &[u8; 4] = b"FQCL";
const LOG_VERSION: u16 = 2;
const FLAG_PAYLOAD: u8 = 0b0000_0001;
/// Fixed per-record framing ahead of the payload: fingerprint + size.
const RECORD_HEADER: u32 = 12;

/// The log file path of container `id` under `dir`.
#[must_use]
pub fn container_path(dir: &Path, id: ContainerId) -> PathBuf {
    dir.join(format!("container-{:08}.clog", id.0))
}

/// Serializes a sealed container into its log file under `dir`,
/// overwriting any stale file of the same id. With `epoch > 0` and a
/// payload-mode container, `key` must be the epoch key and every chunk
/// payload is wrapped with its keystream on the way out (the in-memory
/// container is not modified).
///
/// # Errors
///
/// Returns [`PersistError::Io`] on write failure (including injected
/// faults — see [`crate::fault`]).
///
/// # Panics
///
/// Panics if `epoch > 0`, the container carries payloads, and no `key`
/// was supplied — the caller's keychain bookkeeping is broken, which is a
/// logic error, not an I/O condition.
pub fn write_container(
    dir: &Path,
    container: &Container,
    epoch: u64,
    key: Option<&[u8; 32]>,
    policy: FsyncPolicy,
    io: &IoPolicyHandle,
) -> Result<(), PersistError> {
    let file = FaultFile::new(
        File::create(container_path(dir, container.id))?,
        io.clone(),
        PersistSite::ContainerWrite,
    );
    let mut w = CrcSink::new(BufWriter::new(file));
    write_body(&mut w, container, epoch, key)?;
    let mut buf = w.finish()?;
    buf.flush()?;
    buf.get_ref()
        .maybe_sync(policy, PersistSite::ContainerSync)?;
    // The directory entry must be durable too, or a manifest-committed
    // container could vanish in a crash despite its data being fsynced.
    io.check_sync(PersistSite::DirSync)?;
    maybe_sync_dir(dir, policy)?;
    Ok(())
}

/// Serializes `container` under a different file name — the rekey path
/// writes `container-NNNNNNNN.clog.tmp` (fault site
/// [`PersistSite::RekeyWrite`] / [`PersistSite::RekeySync`]) and renames
/// it over the live file only once fully durable.
pub(crate) fn write_container_tmp(
    dir: &Path,
    container: &Container,
    epoch: u64,
    key: Option<&[u8; 32]>,
    policy: FsyncPolicy,
    io: &IoPolicyHandle,
) -> Result<PathBuf, PersistError> {
    let path = container_path(dir, container.id).with_extension("clog.tmp");
    let file = FaultFile::new(File::create(&path)?, io.clone(), PersistSite::RekeyWrite);
    write_rekey_body(file, container, epoch, key, policy)?;
    Ok(path)
}

fn write_rekey_body(
    file: FaultFile,
    container: &Container,
    epoch: u64,
    key: Option<&[u8; 32]>,
    policy: FsyncPolicy,
) -> Result<(), PersistError> {
    let mut w = CrcSink::new(BufWriter::new(file));
    write_body(&mut w, container, epoch, key)?;
    let mut buf = w.finish()?;
    buf.flush()?;
    buf.get_ref().maybe_sync(policy, PersistSite::RekeySync)?;
    Ok(())
}

fn write_body(
    w: &mut CrcSink<BufWriter<FaultFile>>,
    container: &Container,
    epoch: u64,
    key: Option<&[u8; 32]>,
) -> Result<(), PersistError> {
    let wrap = epoch > 0 && container.has_payload();
    let key = if wrap {
        Some(key.expect("payload container written at epoch > 0 without its epoch key"))
    } else {
        None
    };
    let kcv = key.map_or(0, key_check_value);
    let flags = if container.has_payload() {
        FLAG_PAYLOAD
    } else {
        0
    };
    w.write_all(LOG_MAGIC)?;
    w.write_u16(LOG_VERSION)?;
    w.write_u8(flags)?;
    w.write_u8(0)?;
    w.write_u32(container.id.0)?;
    w.write_u32(container.len() as u32)?;
    w.write_u64(container.data_bytes)?;
    w.write_u64(epoch)?;
    w.write_u64(kcv)?;
    let mut scratch = Vec::new();
    for (i, (&fp, &size)) in container
        .fingerprints
        .iter()
        .zip(container.chunk_sizes())
        .enumerate()
    {
        let payload = container.chunk_payload(i);
        let payload_len = payload.map_or(0, <[u8]>::len) as u32;
        w.write_u32(RECORD_HEADER + payload_len)?;
        w.write_u64(fp.value())?;
        w.write_u32(size)?;
        match (payload, key) {
            (Some(bytes), Some(k)) => {
                scratch.clear();
                scratch.extend_from_slice(bytes);
                apply_epoch_keystream(k, fp, &mut scratch);
                w.write_all(&scratch)?;
            }
            (Some(bytes), None) => w.write_all(bytes)?,
            (None, _) => {}
        }
    }
    Ok(())
}

/// Reads and verifies the log file of container `id` under `dir`,
/// rebuilding the in-memory [`Container`] (payloads unwrapped). `keys`
/// maps key epochs to their derived keys; it is consulted only when the
/// file's header names an epoch above 0 and the container carries
/// payloads.
///
/// # Errors
///
/// * [`PersistError::Torn`] — the file ends mid-record or fails its CRC
///   (recovery treats this as a torn tail write when `id` is the last
///   sealed container);
/// * [`PersistError::WrongKey`] — the payloads are wrapped under an epoch
///   whose key is absent from `keys` or fails the header's key-check
///   value (a revoked or mistyped secret);
/// * [`PersistError::Io`] — the file is missing or unreadable;
/// * [`PersistError::BadMagic`] / [`PersistError::BadVersion`] /
///   [`PersistError::Corrupt`] — the file is not a container log or its
///   structure is inconsistent with its header.
pub fn read_container(
    dir: &Path,
    id: ContainerId,
    keys: &HashMap<u64, [u8; 32]>,
) -> Result<Container, PersistError> {
    let path = container_path(dir, id);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let file = File::open(&path)?;
    // The CrcSource error paths want a 'static file tag; keep the dynamic
    // name for the structural errors and rewrite the torn/magic ones below.
    let mut r = CrcSource::new(BufReader::new(file), "container log");
    let rename = |e: PersistError| match e {
        PersistError::Torn { detail, .. } => PersistError::Torn {
            file: name.clone(),
            detail,
        },
        PersistError::BadMagic { .. } => PersistError::BadMagic { file: name.clone() },
        PersistError::BadVersion { version, .. } => PersistError::BadVersion {
            file: name.clone(),
            version,
        },
        other => other,
    };
    read_container_inner(&mut r, id, &name, keys).map_err(rename)
}

fn read_container_inner<R: std::io::Read>(
    r: &mut CrcSource<R>,
    id: ContainerId,
    name: &str,
    keys: &HashMap<u64, [u8; 32]>,
) -> Result<Container, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic, "magic")?;
    if &magic != LOG_MAGIC {
        return Err(PersistError::BadMagic {
            file: name.to_string(),
        });
    }
    let version = r.read_u16("version")?;
    if version != LOG_VERSION {
        return Err(PersistError::BadVersion {
            file: name.to_string(),
            version,
        });
    }
    let flags = r.read_u8("flags")?;
    let _reserved = r.read_u8("reserved")?;
    let has_payload = flags & FLAG_PAYLOAD != 0;
    let file_id = r.read_u32("container id")?;
    if file_id != id.0 {
        return Err(PersistError::Corrupt(format!(
            "{name}: header claims container id {file_id}"
        )));
    }
    let count = r.read_u32("chunk count")? as usize;
    let data_bytes = r.read_u64("data bytes")?;
    let epoch = r.read_u64("key epoch")?;
    let kcv = r.read_u64("key check value")?;
    let key = if epoch > 0 && has_payload {
        // Refuse old or wrong keys *before* touching any payload bytes.
        let key = keys.get(&epoch).ok_or(PersistError::WrongKey { epoch })?;
        if key_check_value(key) != kcv {
            return Err(PersistError::WrongKey { epoch });
        }
        Some(*key)
    } else {
        None
    };
    let mut fingerprints = Vec::with_capacity(count);
    let mut sizes = Vec::with_capacity(count);
    let mut payload = has_payload.then(Vec::new);
    for _ in 0..count {
        let rec_len = r.read_u32("record length")?;
        if rec_len < RECORD_HEADER {
            return Err(PersistError::Corrupt(format!(
                "{name}: record length {rec_len} shorter than framing"
            )));
        }
        let payload_len = (rec_len - RECORD_HEADER) as usize;
        let fp = Fingerprint(r.read_u64("record fingerprint")?);
        fingerprints.push(fp);
        let size = r.read_u32("record size")?;
        sizes.push(size);
        match &mut payload {
            Some(buf) => {
                if payload_len != size as usize {
                    return Err(PersistError::Corrupt(format!(
                        "{name}: payload length {payload_len} disagrees with chunk size {size}"
                    )));
                }
                let start = buf.len();
                buf.resize(start + payload_len, 0);
                r.read_exact(&mut buf[start..], "record payload")?;
                if let Some(k) = &key {
                    apply_epoch_keystream(k, fp, &mut buf[start..]);
                }
            }
            None => {
                if payload_len != 0 {
                    return Err(PersistError::Corrupt(format!(
                        "{name}: metadata-only container carries {payload_len} payload bytes"
                    )));
                }
            }
        }
    }
    r.expect_crc()?;
    let total: u64 = sizes.iter().map(|&s| u64::from(s)).sum();
    if total != data_bytes {
        return Err(PersistError::Corrupt(format!(
            "{name}: header claims {data_bytes} data bytes, records sum to {total}"
        )));
    }
    Ok(Container::from_restored(id, fingerprints, sizes, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ContainerStore;
    use crate::lifecycle::epoch_key;
    use freqdedup_trace::ChunkRecord;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("freqdedup-clog-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn no_keys() -> HashMap<u64, [u8; 32]> {
        HashMap::new()
    }

    fn sealed_payload_container() -> Container {
        let mut store = ContainerStore::new(64);
        store
            .append(ChunkRecord::new(11u64, 5), Some(b"hello"))
            .unwrap();
        store
            .append(ChunkRecord::new(22u64, 6), Some(b"world!"))
            .unwrap();
        let id = store.flush().unwrap();
        store.get(id).unwrap().clone()
    }

    fn sealed_metadata_container() -> Container {
        let mut store = ContainerStore::new(64);
        for i in 0..4u64 {
            store.append(ChunkRecord::new(i, 16), None).unwrap();
        }
        let id = store.flush().unwrap();
        store.get(id).unwrap().clone()
    }

    #[test]
    fn payload_container_round_trips() {
        let dir = tmp_dir("payload-rt");
        let c = sealed_payload_container();
        write_container(
            &dir,
            &c,
            0,
            None,
            FsyncPolicy::Never,
            &IoPolicyHandle::none(),
        )
        .unwrap();
        let back = read_container(&dir, c.id, &no_keys()).unwrap();
        assert_eq!(back.fingerprints, c.fingerprints);
        assert_eq!(back.chunk_sizes(), c.chunk_sizes());
        assert_eq!(back.data_bytes, c.data_bytes);
        assert_eq!(back.chunk_payload(0), Some(&b"hello"[..]));
        assert_eq!(back.chunk_payload(1), Some(&b"world!"[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metadata_container_round_trips() {
        let dir = tmp_dir("meta-rt");
        let c = sealed_metadata_container();
        write_container(
            &dir,
            &c,
            0,
            None,
            FsyncPolicy::Never,
            &IoPolicyHandle::none(),
        )
        .unwrap();
        let back = read_container(&dir, c.id, &no_keys()).unwrap();
        assert_eq!(back.fingerprints, c.fingerprints);
        assert_eq!(back.chunk_sizes(), c.chunk_sizes());
        assert!(!back.has_payload());
        assert_eq!(back.chunk_payload(0), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rekeyed_container_wraps_on_disk_and_unwraps_in_memory() {
        let dir = tmp_dir("rekey-rt");
        let c = sealed_payload_container();
        let key = epoch_key(b"epoch-secret", 3);
        write_container(
            &dir,
            &c,
            3,
            Some(&key),
            FsyncPolicy::Never,
            &IoPolicyHandle::none(),
        )
        .unwrap();
        // The raw file must not contain the plaintext payloads.
        let raw = std::fs::read(container_path(&dir, c.id)).unwrap();
        assert!(!raw.windows(5).any(|w| w == b"hello"));
        let mut keys = no_keys();
        keys.insert(3, key);
        let back = read_container(&dir, c.id, &keys).unwrap();
        assert_eq!(back.chunk_payload(0), Some(&b"hello"[..]));
        assert_eq!(back.chunk_payload(1), Some(&b"world!"[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_or_wrong_epoch_key_is_refused() {
        let dir = tmp_dir("rekey-refuse");
        let c = sealed_payload_container();
        let key = epoch_key(b"right-secret", 2);
        write_container(
            &dir,
            &c,
            2,
            Some(&key),
            FsyncPolicy::Never,
            &IoPolicyHandle::none(),
        )
        .unwrap();
        assert!(
            matches!(
                read_container(&dir, c.id, &no_keys()),
                Err(PersistError::WrongKey { epoch: 2 })
            ),
            "no key supplied"
        );
        let mut wrong = no_keys();
        wrong.insert(2, epoch_key(b"old-revoked-secret", 2));
        assert!(
            matches!(
                read_container(&dir, c.id, &wrong),
                Err(PersistError::WrongKey { epoch: 2 })
            ),
            "wrong secret refused via key-check value"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metadata_container_at_nonzero_epoch_needs_no_key() {
        let dir = tmp_dir("rekey-meta");
        let c = sealed_metadata_container();
        write_container(
            &dir,
            &c,
            4,
            None,
            FsyncPolicy::Never,
            &IoPolicyHandle::none(),
        )
        .unwrap();
        let back = read_container(&dir, c.id, &no_keys()).unwrap();
        assert_eq!(back.fingerprints, c.fingerprints);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_reports_torn() {
        let dir = tmp_dir("torn");
        let c = sealed_payload_container();
        write_container(
            &dir,
            &c,
            0,
            None,
            FsyncPolicy::Never,
            &IoPolicyHandle::none(),
        )
        .unwrap();
        let path = container_path(&dir, c.id);
        let full = std::fs::read(&path).unwrap();
        // Chop the file off mid-record (and mid-CRC, and mid-header):
        // every truncation point must surface as Torn, never as Ok.
        for cut in [full.len() - 1, full.len() - 3, full.len() / 2, 9, 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            match read_container(&dir, c.id, &no_keys()) {
                Err(PersistError::Torn { .. }) => {}
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_reports_torn_checksum() {
        let dir = tmp_dir("bitflip");
        let c = sealed_metadata_container();
        write_container(
            &dir,
            &c,
            0,
            None,
            FsyncPolicy::Never,
            &IoPolicyHandle::none(),
        )
        .unwrap();
        let path = container_path(&dir, c.id);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 6; // inside the last record
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_container(&dir, c.id, &no_keys()),
            Err(PersistError::Torn { .. } | PersistError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_id_reports_corrupt() {
        let dir = tmp_dir("wrong-id");
        let c = sealed_metadata_container();
        write_container(
            &dir,
            &c,
            0,
            None,
            FsyncPolicy::Never,
            &IoPolicyHandle::none(),
        )
        .unwrap();
        // Ask for id 0's file under id 5's name.
        std::fs::rename(
            container_path(&dir, c.id),
            container_path(&dir, ContainerId(5)),
        )
        .unwrap();
        assert!(matches!(
            read_container(&dir, ContainerId(5), &no_keys()),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reports_io() {
        let dir = tmp_dir("missing");
        assert!(matches!(
            read_container(&dir, ContainerId(0), &no_keys()),
            Err(PersistError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn not_a_container_log_reports_bad_magic() {
        let dir = tmp_dir("magic");
        std::fs::write(
            container_path(&dir, ContainerId(0)),
            b"NOPE----------------",
        )
        .unwrap();
        assert!(matches!(
            read_container(&dir, ContainerId(0), &no_keys()),
            Err(PersistError::BadMagic { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
