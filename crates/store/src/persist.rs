//! Durable-store plumbing: configuration, error type, store metadata file,
//! and the little-endian framing helpers shared by the [container
//! log](crate::log) and the [manifest journal + snapshot](crate::manifest).
//!
//! The on-disk layout of a persistent engine directory is:
//!
//! ```text
//! <dir>/store.meta            fixed-size config echo (magic FQSM + CRC)
//! <dir>/manifest.log          append-only journal of seal/delete events
//! <dir>/index.snap            fingerprint-index + counters snapshot
//! <dir>/container-NNNNNNNN.clog   one file per sealed container
//! ```
//!
//! A [`crate::sharded::ShardedDedupEngine`] directory holds a `store.meta`
//! of kind *sharded* plus one engine directory per prefix shard
//! (`shard-NNN/`). All integers are little-endian; every file carries a
//! magic, a version, and a trailing CRC-32 (IEEE) so truncation and
//! corruption are detectable. See `DESIGN.md` §7 for the recovery
//! invariant.

use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use freqdedup_trace::io::Crc32;

use crate::fault::{FaultFile, IoPolicy, IoPolicyHandle, PersistSite};

/// When the engine calls `fsync` on its persistence files.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` container files before their manifest record, `fsync` the
    /// journal after every append, and `fsync` snapshots and directories.
    /// This is the crash-safe mode: a manifest-recorded container is always
    /// fully durable, so only the *tail* of the store can ever be torn.
    #[default]
    Always,
    /// Never `fsync` (leave durability to the OS page cache). Much faster;
    /// crash consistency degrades to best-effort. Intended for tests and
    /// throughput experiments.
    Never,
}

/// Where and how a [`crate::engine::DedupEngine`] persists its state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersistConfig {
    /// Root directory of the store (created on first open).
    pub dir: PathBuf,
    /// Fsync policy for container, journal and snapshot writes.
    pub fsync: FsyncPolicy,
    /// Write an index snapshot at the first consistent point
    /// ([`crate::engine::DedupEngine::finish`]) once at least this many
    /// containers have been sealed since the last snapshot. `0` disables
    /// interval snapshots — one is still always written by
    /// [`crate::engine::DedupEngine::close`].
    pub snapshot_every_seals: u32,
    /// Fault-injection hook consulted before every durable operation.
    /// Empty by default (one `Option` branch per operation, nothing else);
    /// ignored by `Clone`-shared equality — see
    /// [`crate::fault::IoPolicyHandle`].
    pub io: IoPolicyHandle,
    /// Key-epoch secrets for reading rekeyed container payloads:
    /// `(epoch, secret)` pairs. Epoch 0 is the identity (payloads stored
    /// unwrapped) and needs no entry. Secrets are **never persisted** —
    /// a store rekeyed to epoch *e* can only be reopened by supplying the
    /// epoch-*e* secret here, which is the REED revocation property.
    pub keys: Vec<(u64, Vec<u8>)>,
}

impl PersistConfig {
    /// Persistence rooted at `dir` with the crash-safe defaults
    /// ([`FsyncPolicy::Always`], snapshots only at close).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
            snapshot_every_seals: 0,
            io: IoPolicyHandle::none(),
            keys: Vec::new(),
        }
    }

    /// Sets the fsync policy (builder style).
    #[must_use]
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets the snapshot interval in sealed containers (builder style).
    #[must_use]
    pub fn snapshot_every_seals(mut self, seals: u32) -> Self {
        self.snapshot_every_seals = seals;
        self
    }

    /// Installs a fault-injection policy (builder style; tests only).
    #[must_use]
    pub fn io_policy(mut self, policy: impl IoPolicy + 'static) -> Self {
        self.io = IoPolicyHandle::new(policy);
        self
    }

    /// Registers the secret of a key epoch (builder style). Required to
    /// reopen a store whose payloads were rekeyed to that epoch.
    #[must_use]
    pub fn epoch_secret(mut self, epoch: u64, secret: impl Into<Vec<u8>>) -> Self {
        self.keys.push((epoch, secret.into()));
        self
    }
}

/// Errors produced by the durable-store layer.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A file's magic bytes did not match its expected format.
    BadMagic {
        /// The offending file (relative name).
        file: String,
    },
    /// A file carries an unsupported format version.
    BadVersion {
        /// The offending file (relative name).
        file: String,
        /// The version found.
        version: u16,
    },
    /// A file ends mid-record or fails its CRC — the signature of a torn
    /// (interrupted) write. Recovery tolerates this on the *tail* of the
    /// store only.
    Torn {
        /// The offending file (relative name).
        file: String,
        /// What was being read when the tear was detected.
        detail: String,
    },
    /// A structural invariant does not hold (ids out of order, counts
    /// disagreeing, a valid container after a torn one, ...).
    Corrupt(String),
    /// The directory was created under a different configuration than the
    /// one now supplied.
    ConfigMismatch(String),
    /// The supplied engine configuration failed
    /// [`crate::engine::DedupConfig::validate`].
    InvalidConfig(String),
    /// A container payload is wrapped under a key epoch whose secret is
    /// missing from [`PersistConfig::keys`] or fails the stored key-check
    /// value — the REED "old key reads refused" signal, distinct from data
    /// corruption.
    WrongKey {
        /// The epoch the container was written under.
        epoch: u64,
    },
    /// A fault-injection policy failed this operation (tests only; never
    /// produced without an installed [`crate::fault::IoPolicy`]).
    Injected {
        /// The durable-operation site that was failed.
        site: PersistSite,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic { file } => write!(f, "{file}: not a freqdedup store file"),
            PersistError::BadVersion { file, version } => {
                write!(f, "{file}: unsupported format version {version}")
            }
            PersistError::Torn { file, detail } => {
                write!(f, "{file}: torn write detected ({detail})")
            }
            PersistError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            PersistError::ConfigMismatch(msg) => write!(f, "configuration mismatch: {msg}"),
            PersistError::InvalidConfig(msg) => write!(f, "{msg}"),
            PersistError::WrongKey { epoch } => {
                write!(f, "missing or wrong secret for key epoch {epoch}")
            }
            PersistError::Injected { site } => write!(f, "injected fault at {site:?}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// `fsync`s `file` when the policy requires it.
pub(crate) fn maybe_sync(file: &File, policy: FsyncPolicy) -> Result<(), PersistError> {
    if policy == FsyncPolicy::Always {
        file.sync_all()?;
    }
    Ok(())
}

/// `fsync`s the directory itself (making renames/creations durable) when
/// the policy requires it. Best-effort on platforms where directories
/// cannot be opened for sync.
pub(crate) fn maybe_sync_dir(dir: &Path, policy: FsyncPolicy) -> Result<(), PersistError> {
    if policy == FsyncPolicy::Always {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A byte sink that CRCs everything written through it.
pub(crate) struct CrcSink<W> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> CrcSink<W> {
    pub(crate) fn new(inner: W) -> Self {
        CrcSink {
            inner,
            crc: Crc32::new(),
        }
    }

    pub(crate) fn write_all(&mut self, data: &[u8]) -> Result<(), PersistError> {
        self.crc.update(data);
        self.inner.write_all(data)?;
        Ok(())
    }

    pub(crate) fn write_u8(&mut self, v: u8) -> Result<(), PersistError> {
        self.write_all(&[v])
    }

    pub(crate) fn write_u16(&mut self, v: u16) -> Result<(), PersistError> {
        self.write_all(&v.to_le_bytes())
    }

    pub(crate) fn write_u32(&mut self, v: u32) -> Result<(), PersistError> {
        self.write_all(&v.to_le_bytes())
    }

    pub(crate) fn write_u64(&mut self, v: u64) -> Result<(), PersistError> {
        self.write_all(&v.to_le_bytes())
    }

    /// Appends the CRC of everything written so far and returns the sink.
    pub(crate) fn finish(mut self) -> Result<W, PersistError> {
        let crc = self.crc.finalize();
        self.inner.write_all(&crc.to_le_bytes())?;
        Ok(self.inner)
    }
}

/// A byte source that CRCs everything read through it.
pub(crate) struct CrcSource<R> {
    inner: R,
    crc: Crc32,
    file: &'static str,
}

impl<R: Read> CrcSource<R> {
    pub(crate) fn new(inner: R, file: &'static str) -> Self {
        CrcSource {
            inner,
            crc: Crc32::new(),
            file,
        }
    }

    /// Reads exactly `buf.len()` bytes; a short read is reported as a torn
    /// write of `what`.
    pub(crate) fn read_exact(&mut self, buf: &mut [u8], what: &str) -> Result<(), PersistError> {
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                PersistError::Torn {
                    file: self.file.to_string(),
                    detail: format!("file ends inside {what}"),
                }
            } else {
                PersistError::Io(e)
            }
        })?;
        self.crc.update(buf);
        Ok(())
    }

    pub(crate) fn read_u8(&mut self, what: &str) -> Result<u8, PersistError> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b, what)?;
        Ok(b[0])
    }

    pub(crate) fn read_u16(&mut self, what: &str) -> Result<u16, PersistError> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b, what)?;
        Ok(u16::from_le_bytes(b))
    }

    pub(crate) fn read_u32(&mut self, what: &str) -> Result<u32, PersistError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b, what)?;
        Ok(u32::from_le_bytes(b))
    }

    pub(crate) fn read_u64(&mut self, what: &str) -> Result<u64, PersistError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b, what)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads the trailing CRC (not itself CRC'd) and verifies it against
    /// everything read so far. A mismatch or a short read is a torn write.
    pub(crate) fn expect_crc(&mut self) -> Result<(), PersistError> {
        let actual = self.crc.finalize();
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                PersistError::Torn {
                    file: self.file.to_string(),
                    detail: "file ends inside trailing checksum".to_string(),
                }
            } else {
                PersistError::Io(e)
            }
        })?;
        let expected = u32::from_le_bytes(b);
        if expected != actual {
            return Err(PersistError::Torn {
                file: self.file.to_string(),
                detail: format!(
                    "checksum mismatch (expected {expected:#010x}, got {actual:#010x})"
                ),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// store.meta — configuration echo written once at directory creation.
// ---------------------------------------------------------------------------

const META_MAGIC: &[u8; 4] = b"FQSM";
const META_VERSION: u16 = 1;
pub(crate) const META_FILE: &str = "store.meta";

/// What kind of engine owns a persistence directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetaKind {
    /// A single [`crate::engine::DedupEngine`].
    Engine,
    /// A [`crate::sharded::ShardedDedupEngine`] root (shard subdirectories
    /// below it each carry an `Engine` meta of their own).
    Sharded,
}

/// The configuration echo stored in `store.meta`, validated on reopen so a
/// directory cannot silently be opened under an incompatible configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// Directory kind.
    pub kind: MetaKind,
    /// Shard count (1 for a plain engine).
    pub shards: u32,
    /// Configured metadata entry size in bytes.
    pub entry_bytes: u64,
    /// Configured fingerprint-index prefix shards.
    pub index_shards: u32,
    /// Configured container capacity in bytes.
    pub container_bytes: u64,
}

/// Writes `store.meta` into `dir`.
pub(crate) fn write_meta(
    dir: &Path,
    meta: &StoreMeta,
    policy: FsyncPolicy,
    io: &IoPolicyHandle,
) -> Result<(), PersistError> {
    let file = FaultFile::new(
        File::create(dir.join(META_FILE))?,
        io.clone(),
        PersistSite::MetaWrite,
    );
    let mut w = CrcSink::new(std::io::BufWriter::new(file));
    w.write_all(META_MAGIC)?;
    w.write_u16(META_VERSION)?;
    w.write_u8(match meta.kind {
        MetaKind::Engine => 1,
        MetaKind::Sharded => 2,
    })?;
    w.write_u32(meta.shards)?;
    w.write_u64(meta.entry_bytes)?;
    w.write_u32(meta.index_shards)?;
    w.write_u64(meta.container_bytes)?;
    let mut buf = w.finish()?;
    buf.flush()?;
    buf.get_ref().maybe_sync(policy, PersistSite::MetaWrite)?;
    io.check_sync(PersistSite::DirSync)?;
    maybe_sync_dir(dir, policy)?;
    Ok(())
}

/// Ensures `dir` carries this configuration's `store.meta`: validates an
/// existing file against `meta` (rejecting a mismatch) and writes one only
/// when the directory has none yet — an existing, matching meta is never
/// rewritten, so a crash here can't tear an already-good file.
pub(crate) fn ensure_meta(
    dir: &Path,
    meta: &StoreMeta,
    policy: FsyncPolicy,
    io: &IoPolicyHandle,
) -> Result<(), PersistError> {
    if dir.join(META_FILE).exists() {
        let found = read_meta(dir)?;
        if found != *meta {
            return Err(PersistError::ConfigMismatch(format!(
                "directory was created as {found:?}, opened as {meta:?}"
            )));
        }
        Ok(())
    } else {
        write_meta(dir, meta, policy, io)
    }
}

/// Reads and verifies `store.meta` from `dir`.
pub(crate) fn read_meta(dir: &Path) -> Result<StoreMeta, PersistError> {
    let file = File::open(dir.join(META_FILE))?;
    let mut r = CrcSource::new(std::io::BufReader::new(file), META_FILE);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic, "magic")?;
    if &magic != META_MAGIC {
        return Err(PersistError::BadMagic {
            file: META_FILE.to_string(),
        });
    }
    let version = r.read_u16("version")?;
    if version != META_VERSION {
        return Err(PersistError::BadVersion {
            file: META_FILE.to_string(),
            version,
        });
    }
    let kind = match r.read_u8("kind")? {
        1 => MetaKind::Engine,
        2 => MetaKind::Sharded,
        other => {
            return Err(PersistError::Corrupt(format!(
                "store.meta: unknown directory kind {other}"
            )))
        }
    };
    let shards = r.read_u32("shards")?;
    let entry_bytes = r.read_u64("entry_bytes")?;
    let index_shards = r.read_u32("index_shards")?;
    let container_bytes = r.read_u64("container_bytes")?;
    r.expect_crc()?;
    Ok(StoreMeta {
        kind,
        shards,
        entry_bytes,
        index_shards,
        container_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "freqdedup-persist-unit-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn meta_round_trip() {
        let dir = tmp_dir("meta");
        let meta = StoreMeta {
            kind: MetaKind::Sharded,
            shards: 4,
            entry_bytes: 32,
            index_shards: 2,
            container_bytes: 4096,
        };
        write_meta(&dir, &meta, FsyncPolicy::Never, &IoPolicyHandle::none()).unwrap();
        assert_eq!(read_meta(&dir).unwrap(), meta);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_rejects_corruption() {
        let dir = tmp_dir("meta-corrupt");
        let meta = StoreMeta {
            kind: MetaKind::Engine,
            shards: 1,
            entry_bytes: 32,
            index_shards: 1,
            container_bytes: 64,
        };
        write_meta(&dir, &meta, FsyncPolicy::Never, &IoPolicyHandle::none()).unwrap();
        let path = dir.join(META_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 5; // inside the payload, before the CRC
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_meta(&dir),
            Err(PersistError::Torn { .. } | PersistError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_display_readable() {
        let e = PersistError::Torn {
            file: "x.clog".into(),
            detail: "file ends inside record".into(),
        };
        assert!(e.to_string().contains("torn"));
        let e = PersistError::ConfigMismatch("entry_bytes 16 vs 32".into());
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn persist_config_builder() {
        let c = PersistConfig::new("/tmp/x")
            .fsync(FsyncPolicy::Never)
            .snapshot_every_seals(8)
            .epoch_secret(1, b"s1".as_slice());
        assert_eq!(c.fsync, FsyncPolicy::Never);
        assert_eq!(c.snapshot_every_seals, 8);
        assert_eq!(c.dir, PathBuf::from("/tmp/x"));
        assert_eq!(c.keys, vec![(1, b"s1".to_vec())]);
    }
}
