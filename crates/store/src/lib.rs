//! A DDFS-like deduplicated storage engine (paper §7.4, Fig. 12).
//!
//! The engine reproduces the metadata flow of the Data Domain File System
//! (Zhu et al., FAST 2008) that the paper's prototype is built on:
//!
//! * unique chunks are packed into multi-megabyte [containers](container) in
//!   logical order;
//! * a [fingerprint index](index) maps fingerprints to containers and is
//!   modelled as **on-disk**, with every access accounted in bytes;
//! * an in-memory [Bloom filter](bloom) short-circuits lookups for brand-new
//!   chunks;
//! * an in-memory [LRU fingerprint cache](cache) exploits chunk locality:
//!   on an index hit, the fingerprints of the whole enclosing container are
//!   prefetched into the cache.
//!
//! [`engine::DedupEngine`] wires these together with the exact S1→S4
//! workflow of §7.4.1 and produces the update / index / loading
//! metadata-access breakdown of Figures 13–14.
//! [`sharded::ShardedDedupEngine`] partitions the fingerprint space into
//! prefix shards — one full engine each — for shard-parallel ingest with
//! merged counters.
//!
//! Both engines can be **durable**: with [`persist::PersistConfig`] set on
//! the configuration, sealed containers are written to append-only [log
//! files](log), committed through a write-ahead [manifest journal +
//! snapshot](manifest), and recovered on reopen — bit-identically after a
//! clean close, and to the last consistent sealed state after a crash.
//!
//! The [lifecycle] subsystem closes the loop for long-lived
//! stores: backups are committed as [recipes](lifecycle::Recipe) feeding
//! per-chunk [reference counts](refcount), `delete_backup` releases them,
//! a `gc` pass compacts mostly-dead containers (journaling every move
//! through the same write-ahead manifest), and REED-style `rekey`
//! re-encrypts stored payloads under a fresh key epoch in place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod cache;
pub mod container;
pub mod engine;
pub mod fault;
pub mod index;
pub mod lifecycle;
pub mod log;
pub mod manifest;
pub mod persist;
pub mod refcount;
pub mod sharded;
pub mod stats;
