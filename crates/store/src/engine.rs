//! The deduplication engine: DDFS's S1→S4 metadata workflow (§7.4.1).
//!
//! For every incoming (ciphertext) chunk `C`:
//!
//! * **S1** — check the in-memory fingerprint cache; a hit means duplicate.
//! * *(buffer)* — check the open, not-yet-sealed container (in-memory, free);
//!   DDFS keeps just-written chunks visible, otherwise duplicates arriving
//!   before the first flush would be stored twice.
//! * **S2** — miss the Bloom filter ⇒ definitely unique: update the Bloom
//!   filter and append `C` to the open container; when the container fills
//!   up it is sealed and its fingerprints are written to the on-disk index
//!   (*update access*).
//! * **S3** — Bloom hit may be a false positive: query the on-disk
//!   fingerprint index (*index access*); a miss stores `C` as in S2.
//! * **S4** — index hit: `C` is a duplicate; prefetch all fingerprints of
//!   its container into the cache (*loading access*), evicting
//!   least-recently-used entries when full.
//!
//! ## Durability
//!
//! With [`DedupConfig::persist`] set, the engine is backed by a directory:
//! every sealed container is written to its own [log file](crate::log) and
//! committed by a [manifest journal](crate::manifest) record, and
//! [`DedupEngine::close`] (or an interval policy applied at
//! [`DedupEngine::finish`]) writes an index + counters snapshot.
//! [`DedupEngine::open`] recovers the directory back into a running engine
//! — bit-identically after a clean close, and to the last consistent
//! sealed state after a crash (torn tail writes are detected and rolled
//! back). See `DESIGN.md` §7 for the format and the recovery invariant.
//!
//! ## Lifecycle
//!
//! Beyond append-only ingest, the engine manages the full storage
//! lifecycle (see [`crate::lifecycle`]): [`DedupEngine::commit_backup`]
//! records a backup recipe and takes per-chunk references,
//! [`DedupEngine::delete_backup`] releases them, [`DedupEngine::gc`]
//! rewrites live chunks out of mostly-dead containers and drops the rest,
//! and [`DedupEngine::rekey`] re-wraps containers under a new key epoch
//! (REED-style revocation). Every step is journaled through the manifest,
//! so the crash-recovery invariant extends across deletion, GC and rekey.

use std::collections::{BTreeMap, HashMap, HashSet};

use freqdedup_trace::{Backup, ChunkRecord, Fingerprint};

use crate::bloom::BloomFilter;
use crate::cache::FingerprintCache;
use crate::container::{Container, ContainerId, ContainerStore, PayloadMode};
use crate::fault::{FaultAction, PersistSite};
use crate::index::FingerprintIndex;
use crate::lifecycle::{
    self, DeleteReport, GcReport, LifecycleError, Recipe, RekeyReport, RetentionPolicy,
};
use crate::log;
use crate::manifest::{self, ManifestEvent, ManifestWriter, Snapshot};
use crate::persist::{self, FsyncPolicy, MetaKind, PersistConfig, PersistError, StoreMeta};
use crate::refcount::RefCounts;
use crate::stats::{MetadataAccess, StoreStats};

/// Engine configuration. Defaults follow the paper's prototype (§7.4.2):
/// 4 MB containers, 32-byte fingerprint metadata entries, 1% Bloom
/// false-positive rate, no persistence.
#[derive(Clone, Debug)]
pub struct DedupConfig {
    /// Container capacity in bytes.
    pub container_bytes: u64,
    /// Fingerprint cache capacity, in entries (bytes / entry_bytes).
    pub cache_entries: usize,
    /// Metadata entry size in bytes (32 in the paper).
    pub entry_bytes: u64,
    /// Expected number of distinct fingerprints (Bloom sizing).
    pub bloom_expected: u64,
    /// Bloom filter target false-positive rate.
    pub bloom_fp_rate: f64,
    /// Fingerprint-prefix shards of the on-disk index (1 = the paper's
    /// single-map layout; see [`crate::index::FingerprintIndex`]).
    pub index_shards: usize,
    /// Durable backing directory; `None` keeps the engine purely in-memory
    /// (the behaviour of every release before the persistence layer).
    pub persist: Option<PersistConfig>,
}

impl DedupConfig {
    /// The paper's configuration with a cache byte budget (512 MB or 4 GB in
    /// §7.4.2) and an expected fingerprint population for Bloom sizing.
    #[must_use]
    pub fn paper(cache_bytes: u64, bloom_expected: u64) -> Self {
        DedupConfig {
            container_bytes: 4 * 1024 * 1024,
            cache_entries: (cache_bytes / 32) as usize,
            entry_bytes: 32,
            bloom_expected,
            bloom_fp_rate: 0.01,
            index_shards: 1,
            persist: None,
        }
    }

    /// Sets the persistence backing (builder style).
    #[must_use]
    pub fn persist(mut self, persist: PersistConfig) -> Self {
        self.persist = Some(persist);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.container_bytes == 0 {
            return Err("container_bytes must be positive".into());
        }
        if self.entry_bytes == 0 {
            return Err("entry_bytes must be positive".into());
        }
        if self.bloom_expected == 0 {
            return Err("bloom_expected must be positive".into());
        }
        if !(self.bloom_fp_rate > 0.0 && self.bloom_fp_rate < 1.0) {
            return Err("bloom_fp_rate must be in (0, 1)".into());
        }
        if self.index_shards == 0 {
            return Err("index_shards must be positive".into());
        }
        Ok(())
    }

    /// The `store.meta` echo of this configuration for a single engine.
    fn meta(&self) -> StoreMeta {
        StoreMeta {
            kind: MetaKind::Engine,
            shards: 1,
            entry_bytes: self.entry_bytes,
            index_shards: self.index_shards as u32,
            container_bytes: self.container_bytes,
        }
    }
}

impl Default for DedupConfig {
    fn default() -> Self {
        Self::paper(512 * 1024 * 1024, 10_000_000)
    }
}

/// How a chunk was classified by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// Duplicate found in the fingerprint cache (S1).
    DuplicateCache,
    /// Duplicate found in the open container buffer.
    DuplicateBuffer,
    /// Duplicate confirmed by the on-disk index (S4).
    DuplicateIndex,
    /// Unique chunk, stored (S2/S3).
    Unique,
}

impl ChunkOutcome {
    /// Whether the chunk was a duplicate.
    #[must_use]
    pub fn is_duplicate(self) -> bool {
        !matches!(self, ChunkOutcome::Unique)
    }
}

/// The live persistence handles of a durable engine.
#[derive(Debug)]
struct PersistState {
    cfg: PersistConfig,
    manifest: ManifestWriter,
    seals_since_snapshot: u32,
    /// Total manifest journal events written (seals, backups, deletes, GC
    /// drops, rekey markers). Snapshots record this as their `event_seq`.
    events: u64,
}

/// The DDFS-like deduplication engine.
///
/// # Example
///
/// ```
/// use freqdedup_store::engine::{DedupConfig, DedupEngine};
/// use freqdedup_trace::ChunkRecord;
///
/// let mut engine = DedupEngine::new(DedupConfig::paper(1 << 20, 1000)).unwrap();
/// let a = engine.process(ChunkRecord::new(1u64, 4096));
/// let b = engine.process(ChunkRecord::new(1u64, 4096));
/// assert!(!a.is_duplicate());
/// assert!(b.is_duplicate());
/// engine.finish();
/// assert_eq!(engine.stats().unique_chunks, 1);
/// ```
#[derive(Debug)]
pub struct DedupEngine {
    config: DedupConfig,
    bloom: BloomFilter,
    cache: FingerprintCache,
    containers: ContainerStore,
    index: FingerprintIndex,
    loading_bytes: u64,
    loading_ops: u64,
    stats: StoreStats,
    refcounts: RefCounts,
    recipes: HashMap<u64, Recipe>,
    epoch: u64,
    pending_rekey: Option<u64>,
    epoch_keys: HashMap<u64, [u8; 32]>,
    persist: Option<PersistState>,
}

impl DedupEngine {
    /// Builds an engine from a validated configuration ([`Self::open`] with
    /// the error stringified — kept for source compatibility).
    ///
    /// # Errors
    ///
    /// Returns the display form of the [`Self::open`] error.
    pub fn new(config: DedupConfig) -> Result<Self, String> {
        Self::open(config).map_err(|e| e.to_string())
    }

    /// Opens an engine. With [`DedupConfig::persist`] unset this is a pure
    /// in-memory construction; with it set, the backing directory is
    /// created on first use and **recovered** on every later open — the
    /// engine resumes exactly where [`Self::close`] left it (or at the last
    /// consistent sealed state after a crash).
    ///
    /// # Errors
    ///
    /// * [`PersistError::InvalidConfig`] — [`DedupConfig::validate`] failed;
    /// * [`PersistError::ConfigMismatch`] — the directory was created under
    ///   an incompatible configuration;
    /// * [`PersistError::Corrupt`] / [`PersistError::Torn`] — the directory
    ///   violates the recovery invariant beyond the tolerated torn tail;
    /// * [`PersistError::Io`] — filesystem failure.
    pub fn open(config: DedupConfig) -> Result<Self, PersistError> {
        config.validate().map_err(PersistError::InvalidConfig)?;
        let mut engine = DedupEngine {
            bloom: BloomFilter::with_capacity(config.bloom_expected, config.bloom_fp_rate),
            cache: FingerprintCache::new(config.cache_entries),
            containers: ContainerStore::new(config.container_bytes),
            index: FingerprintIndex::with_shards(config.entry_bytes, config.index_shards),
            loading_bytes: 0,
            loading_ops: 0,
            stats: StoreStats::default(),
            refcounts: RefCounts::new(),
            recipes: HashMap::new(),
            epoch: 0,
            pending_rekey: None,
            epoch_keys: HashMap::new(),
            persist: None,
            config,
        };
        let Some(pcfg) = engine.config.persist.clone() else {
            return Ok(engine);
        };
        // Derive the per-epoch container keys from the configured secrets
        // before recovery: recovery reads container logs, which may be
        // wrapped under a non-zero key epoch.
        for (epoch, secret) in &pcfg.keys {
            engine
                .epoch_keys
                .insert(*epoch, lifecycle::epoch_key(secret, *epoch));
        }
        std::fs::create_dir_all(&pcfg.dir)?;
        if manifest::manifest_exists(&pcfg.dir) {
            Self::recover(engine, pcfg)
        } else {
            // Fresh directory (or one that died between meta and manifest
            // creation, before any data was accepted): initialize it. An
            // existing meta must agree first — a sharded root, say, has a
            // meta but no top-level manifest, and blindly re-initializing
            // would clobber it.
            persist::ensure_meta(&pcfg.dir, &engine.config.meta(), pcfg.fsync, &pcfg.io)?;
            let manifest = ManifestWriter::create(&pcfg.dir, pcfg.fsync, &pcfg.io)?;
            engine.persist = Some(PersistState {
                cfg: pcfg,
                manifest,
                seals_since_snapshot: 0,
                events: 0,
            });
            Ok(engine)
        }
    }

    /// Rebuilds a fresh `engine` from the persistent directory state.
    fn recover(mut engine: DedupEngine, pcfg: PersistConfig) -> Result<Self, PersistError> {
        let dir = pcfg.dir.clone();
        let meta = persist::read_meta(&dir)?;
        let want = engine.config.meta();
        if meta != want {
            return Err(PersistError::ConfigMismatch(format!(
                "directory was created as {meta:?}, opened as {want:?}"
            )));
        }

        // 1. The manifest journal is the authoritative event history: scan
        //    it (tolerating a torn tail record) and roll back the last
        //    event if its companion file (container log for a seal, recipe
        //    file for a backup commit) did not survive the crash. Only the
        //    *last* event may lack its file — write-ahead ordering makes a
        //    missing companion anywhere earlier hard corruption.
        let scan = manifest::scan_manifest(&dir)?;
        let mut events = scan.events;
        let mut record_ends = scan.record_ends;
        let mut valid_len = scan.valid_len;
        let tolerable = |e: &PersistError| {
            matches!(e, PersistError::Torn { .. })
                || matches!(e, PersistError::Io(io) if io.kind() == std::io::ErrorKind::NotFound)
        };
        match events.last().copied() {
            Some(ManifestEvent::Seal { id, .. }) => {
                match log::read_container(&dir, ContainerId(id), &engine.epoch_keys) {
                    Ok(_) => {}
                    Err(e) if tolerable(&e) => {
                        events.pop();
                        record_ends.pop();
                        valid_len = record_ends.last().copied().unwrap_or(6);
                        let _ = std::fs::remove_file(log::container_path(&dir, ContainerId(id)));
                    }
                    Err(e) => return Err(e),
                }
            }
            Some(ManifestEvent::Backup { id, .. }) => match lifecycle::read_recipe(&dir, id) {
                Ok(_) => {}
                Err(e) if tolerable(&e) => {
                    events.pop();
                    record_ends.pop();
                    valid_len = record_ends.last().copied().unwrap_or(6);
                    lifecycle::remove_recipe(&dir, id);
                }
                Err(e) => return Err(e),
            },
            _ => {}
        }

        // 2. Fold the event history into the catalog shape: which seals
        //    exist (dense ids), which containers GC dropped, which backups
        //    are committed, and where the key epoch stands.
        let mut seal_info: Vec<(u32, u64)> = Vec::new(); // (chunk_count, data_bytes) by id
        let mut dropped: HashSet<u32> = HashSet::new();
        let mut committed: BTreeMap<u64, u64> = BTreeMap::new(); // backup id -> timestamp
        let mut epoch = 0u64;
        let mut pending_rekey: Option<u64> = None;
        for event in &events {
            match *event {
                ManifestEvent::Seal {
                    id,
                    chunk_count,
                    data_bytes,
                } => {
                    if id as usize != seal_info.len() {
                        return Err(PersistError::Corrupt(format!(
                            "manifest seal ids not dense: expected {}, found {id}",
                            seal_info.len()
                        )));
                    }
                    seal_info.push((chunk_count, data_bytes));
                }
                ManifestEvent::Delete { id } => {
                    return Err(PersistError::Corrupt(format!(
                        "manifest records delete of container {id}, which this engine \
                         version never emits"
                    )));
                }
                ManifestEvent::Backup { id, timestamp, .. } => {
                    if committed.insert(id, timestamp).is_some() {
                        return Err(PersistError::Corrupt(format!(
                            "manifest commits backup {id} twice"
                        )));
                    }
                }
                ManifestEvent::BackupDelete { id, .. } => {
                    if committed.remove(&id).is_none() {
                        return Err(PersistError::Corrupt(format!(
                            "manifest deletes backup {id}, which is not committed at that point"
                        )));
                    }
                }
                ManifestEvent::GcDrop { id, .. } => {
                    if id as usize >= seal_info.len() || !dropped.insert(id) {
                        return Err(PersistError::Corrupt(format!(
                            "manifest drops container {id}, which is not live at that point"
                        )));
                    }
                }
                ManifestEvent::RekeyBegin { epoch: e } => pending_rekey = Some(e),
                ManifestEvent::RekeyCommit { epoch: e } => {
                    epoch = epoch.max(e);
                    if pending_rekey.is_some_and(|p| p <= epoch) {
                        pending_rekey = None;
                    }
                }
            }
        }
        if pending_rekey.is_some_and(|p| p <= epoch) {
            pending_rekey = None;
        }
        let n_seals = seal_info.len();

        // 3. Load the surviving container log files; dropped ids stay as
        //    holes. A lingering file under a dropped id (crash between the
        //    drop record and the unlink) is removed now. Torn reads here
        //    are hard corruption — tail tears were rolled back above.
        let mut slots: Vec<Option<Container>> = Vec::with_capacity(n_seals);
        for id in 0..n_seals {
            let cid = ContainerId(id as u32);
            if dropped.contains(&(id as u32)) {
                let _ = std::fs::remove_file(log::container_path(&dir, cid));
                slots.push(None);
                continue;
            }
            match log::read_container(&dir, cid, &engine.epoch_keys) {
                Ok(c) => slots.push(Some(c)),
                Err(PersistError::Torn { file, detail }) => {
                    return Err(PersistError::Corrupt(format!(
                        "{file}: torn write on a committed container ({detail})"
                    )));
                }
                Err(PersistError::Io(io)) if io.kind() == std::io::ErrorKind::NotFound => {
                    return Err(PersistError::Corrupt(format!(
                        "container {id} is committed by the manifest but its log file \
                         is missing"
                    )));
                }
                Err(other) => return Err(other),
            }
        }

        // 4. Truncate the manifest back to the validated event prefix and
        //    clear stray working files: interrupted rekey rewrites
        //    (`*.clog.tmp`) and recipe files with no committed backup.
        let manifest = ManifestWriter::reopen(&dir, valid_len, pcfg.fsync, &pcfg.io)?;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(".clog.tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        for id in lifecycle::scan_recipe_ids(&dir)? {
            if !committed.contains_key(&id) {
                lifecycle::remove_recipe(&dir, id);
            }
        }

        // 5. Restore the container catalog (payload mode from the recovered
        //    files; undecided when the store is still empty).
        let mode = slots.iter().flatten().next().map(|c| {
            if c.has_payload() {
                PayloadMode::Payload
            } else {
                PayloadMode::Metadata
            }
        });
        engine.containers = ContainerStore::restore(engine.config.container_bytes, mode, slots);

        // 6. Base state from the snapshot — but only when it does not claim
        //    events beyond the recovered prefix (a snapshot "from the
        //    future" relative to a torn store is discarded wholesale: its
        //    flow counters and cache image describe state that was lost).
        let snapshot = manifest::read_snapshot(&dir)?;
        let usable = match snapshot {
            Some(s) if s.event_seq <= events.len() as u64 => Some(s),
            Some(_) => {
                // Snapshot "from the future": it describes events that did
                // not survive. Remove it — once the journal grows past that
                // point with new data, a later recovery could otherwise
                // adopt the stale image as a valid-looking base.
                manifest::remove_snapshot(&dir, pcfg.fsync)?;
                None
            }
            None => None,
        };
        let base_seq = match usable {
            Some(s) => {
                if s.entry_bytes != engine.config.entry_bytes
                    || s.index_shards as usize != engine.config.index_shards
                {
                    return Err(PersistError::ConfigMismatch(
                        "snapshot was written under a different index configuration".into(),
                    ));
                }
                if s.shard_counters.len() != engine.config.index_shards {
                    return Err(PersistError::Corrupt(format!(
                        "snapshot carries {} shard counter rows for {} shards",
                        s.shard_counters.len(),
                        engine.config.index_shards
                    )));
                }
                engine.stats = StoreStats::from_array(s.stats);
                engine.loading_bytes = s.loading_bytes;
                engine.loading_ops = s.loading_ops;
                for &(fp, cid) in &s.index_entries {
                    engine
                        .index
                        .restore_entry(Fingerprint(fp), ContainerId(cid));
                }
                engine.index.set_shard_counters(&s.shard_counters);
                let lru: Vec<Fingerprint> = s.cache_lru.iter().map(|&fp| Fingerprint(fp)).collect();
                engine
                    .cache
                    .restore(&lru, s.cache_hits, s.cache_misses, s.cache_evictions);
                s.event_seq as usize
            }
            None => 0,
        };

        // 7. Replay events beyond the snapshot, mirroring the accounting of
        //    the live paths. Flow counters (logical chunks, duplicate hits,
        //    lookups) for the replayed span are not in the journal and stay
        //    at their snapshot values — see the recovery invariant in
        //    DESIGN.md §7. A replayed seal whose container was since GC
        //    dropped has no file: its index-update accounting is
        //    compensated so counters match a live engine's history.
        let mut seals_since_snapshot: u32 = 0;
        for event in &events[base_seq..] {
            match *event {
                ManifestEvent::Seal {
                    id,
                    chunk_count,
                    data_bytes,
                } => {
                    seals_since_snapshot += 1;
                    engine.stats.containers_sealed += 1;
                    engine.stats.unique_chunks += u64::from(chunk_count);
                    engine.stats.unique_bytes += data_bytes;
                    let cid = ContainerId(id);
                    match engine.containers.get(cid) {
                        Some(c) => {
                            let fps = c.fingerprints.clone();
                            for fp in fps {
                                engine.index.insert(fp, cid);
                            }
                        }
                        None => engine.index.account_updates(u64::from(chunk_count)),
                    }
                }
                ManifestEvent::GcDrop {
                    id,
                    chunk_count,
                    data_bytes,
                    dead_chunks,
                    dead_bytes,
                } => {
                    engine.stats.unique_chunks -= u64::from(chunk_count);
                    engine.stats.unique_bytes -= data_bytes;
                    engine.stats.reclaimed_bytes += dead_bytes;
                    engine.stats.containers_dropped += 1;
                    let swept = engine.index.remove_container_entries(ContainerId(id));
                    for &fp in &swept {
                        engine.cache.remove(fp);
                    }
                    // When the drop's seal replayed without its file (gone),
                    // the dead entries were never inserted; account the
                    // removals the live engine performed anyway.
                    let missing = u64::from(dead_chunks).saturating_sub(swept.len() as u64);
                    engine.index.account_updates(missing);
                }
                ManifestEvent::BackupDelete {
                    chunk_count,
                    logical_bytes,
                    ..
                } => {
                    engine.stats.deleted_chunks += u64::from(chunk_count);
                    engine.stats.deleted_bytes += logical_bytes;
                }
                ManifestEvent::Backup { .. }
                | ManifestEvent::RekeyBegin { .. }
                | ManifestEvent::RekeyCommit { .. }
                | ManifestEvent::Delete { .. } => {}
            }
        }

        // 8. Rebuild the Bloom filter from every stored fingerprint — the
        //    bit array is insertion-order-independent, so this reproduces
        //    the filter of an engine that stored exactly these chunks.
        for container in engine.containers.iter() {
            for &fp in &container.fingerprints {
                engine.bloom.insert(fp);
            }
        }

        // 9. Rebuild backup recipes and the chunk reference counts from the
        //    committed set (write-ahead: every committed backup's recipe
        //    file is durable before its manifest record).
        for (&id, &timestamp) in &committed {
            let recipe = lifecycle::read_recipe(&dir, id)?;
            if recipe.timestamp != timestamp {
                return Err(PersistError::Corrupt(format!(
                    "recipe for backup {id} carries timestamp {}, manifest says {timestamp}",
                    recipe.timestamp
                )));
            }
            engine.refcounts.add_recipe(&recipe.chunks);
            engine.recipes.insert(id, recipe);
        }
        engine.epoch = epoch;
        engine.pending_rekey = pending_rekey;

        engine.persist = Some(PersistState {
            seals_since_snapshot,
            events: events.len() as u64,
            cfg: pcfg,
            manifest,
        });
        Ok(engine)
    }

    /// Processes one chunk without payload (trace-driven mode).
    ///
    /// # Panics
    ///
    /// Panics when the engine previously stored payload-bearing chunks
    /// (mixed-mode ingestion, see [`crate::container::PayloadMode`]), or —
    /// for a persistent engine — when a container/manifest write fails.
    pub fn process(&mut self, record: ChunkRecord) -> ChunkOutcome {
        self.process_inner(record, None)
    }

    /// Processes one chunk storing its payload bytes (content mode).
    ///
    /// # Panics
    ///
    /// Debug-panics when `payload.len() != record.size`. Panics when the
    /// engine previously stored metadata-only chunks (mixed-mode
    /// ingestion), or — for a persistent engine — when a container/manifest
    /// write fails.
    pub fn process_with_payload(&mut self, record: ChunkRecord, payload: &[u8]) -> ChunkOutcome {
        self.process_inner(record, Some(payload))
    }

    fn process_inner(&mut self, record: ChunkRecord, payload: Option<&[u8]>) -> ChunkOutcome {
        self.stats.logical_chunks += 1;
        self.stats.logical_bytes += u64::from(record.size);

        // S1: fingerprint cache.
        if self.cache.lookup(record.fp) {
            self.stats.dup_cache_hits += 1;
            return ChunkOutcome::DuplicateCache;
        }

        // Open-container buffer (in-memory, not part of the accounted flow).
        if self.containers.open_contains(record.fp) {
            self.stats.dup_buffer_hits += 1;
            return ChunkOutcome::DuplicateBuffer;
        }

        // S2: Bloom filter.
        if !self.bloom.contains(record.fp) {
            self.store_unique(record, payload);
            return ChunkOutcome::Unique;
        }

        // S3: on-disk index (the Bloom hit may be a false positive).
        match self.index.lookup(record.fp) {
            None => {
                self.stats.bloom_false_positives += 1;
                self.store_unique(record, payload);
                ChunkOutcome::Unique
            }
            Some(container_id) => {
                // S4: duplicate — prefetch the container's fingerprints.
                self.stats.dup_index_hits += 1;
                let container = self
                    .containers
                    .get(container_id)
                    .expect("index points at sealed container");
                self.loading_bytes += self.config.entry_bytes * container.len() as u64;
                self.loading_ops += 1;
                // Clone is bounded by container size (≤ ~1k fingerprints).
                let fps = container.fingerprints.clone();
                self.cache.insert_container(&fps);
                ChunkOutcome::DuplicateIndex
            }
        }
    }

    fn store_unique(&mut self, record: ChunkRecord, payload: Option<&[u8]>) {
        self.stats.unique_chunks += 1;
        self.stats.unique_bytes += u64::from(record.size);
        self.bloom.insert(record.fp);
        let sealed = self
            .containers
            .append(record, payload)
            .unwrap_or_else(|e| panic!("DedupEngine: {e}"));
        if let Some(sealed_id) = sealed {
            self.on_sealed(sealed_id);
        }
    }

    fn on_sealed(&mut self, id: ContainerId) {
        self.stats.containers_sealed += 1;
        let fps = self
            .containers
            .get(id)
            .expect("just sealed")
            .fingerprints
            .clone();
        for fp in fps {
            self.index.insert(fp, id);
        }
        if let Some(p) = &mut self.persist {
            // Write-ahead ordering: the container file is made durable
            // first, then the manifest record commits the seal. Payload
            // containers are wrapped under the committed key epoch.
            let container = self.containers.get(id).expect("just sealed");
            let key = (self.epoch > 0 && container.has_payload()).then(|| {
                self.epoch_keys
                    .get(&self.epoch)
                    .expect("committed epoch has a derived key")
            });
            log::write_container(
                &p.cfg.dir,
                container,
                self.epoch,
                key,
                p.cfg.fsync,
                &p.cfg.io,
            )
            .unwrap_or_else(|e| panic!("persistent store: container write failed: {e}"));
            p.manifest
                .append_seal(id.0, container.len() as u32, container.data_bytes)
                .unwrap_or_else(|e| panic!("persistent store: manifest append failed: {e}"));
            p.events += 1;
            p.seals_since_snapshot += 1;
        }
    }

    /// Ingests a whole backup in logical order.
    pub fn ingest_backup(&mut self, backup: &Backup) {
        for &record in backup {
            self.process(record);
        }
    }

    /// Seals the open container and indexes its chunks. Call once after the
    /// final backup (the engine remains usable afterwards).
    ///
    /// For a persistent engine this is also the interval-snapshot point: a
    /// snapshot is written when [`PersistConfig::snapshot_every_seals`]
    /// containers have been sealed since the last one (`finish` is the
    /// first moment the open container is empty, which is what makes the
    /// snapshot image consistent).
    ///
    /// # Panics
    ///
    /// Panics when a persistent engine fails to write the container log,
    /// manifest record or snapshot.
    pub fn finish(&mut self) {
        if let Some(id) = self.containers.flush() {
            self.on_sealed(id);
        }
        let due = self.persist.as_ref().is_some_and(|p| {
            p.cfg.snapshot_every_seals > 0 && p.seals_since_snapshot >= p.cfg.snapshot_every_seals
        });
        if due {
            self.write_snapshot_now()
                .unwrap_or_else(|e| panic!("persistent store: snapshot write failed: {e}"));
        }
    }

    /// Seals the open container and writes a snapshot now (a durable
    /// checkpoint). No-op beyond [`Self::finish`] for in-memory engines.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        if let Some(id) = self.containers.flush() {
            self.on_sealed(id);
        }
        self.write_snapshot_now()
    }

    /// Flushes, snapshots and consumes the engine: after `close` returns,
    /// [`Self::open`] on the same directory resumes bit-identically.
    ///
    /// A graceful close is also a **durability upgrade**: even under
    /// [`crate::persist::FsyncPolicy::Never`], every container log, the
    /// manifest journal, the snapshot and the directory entry are fsynced
    /// once here — so a SHUTDOWN / Ctrl-C path that reaches `close` never
    /// relies on crash recovery, regardless of the run-time fsync policy.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn close(mut self) -> Result<(), PersistError> {
        self.checkpoint()?;
        self.sync_for_close()
    }

    /// One-shot unconditional fsync of all persistence files (see
    /// [`Self::close`]). No-op for in-memory engines and under
    /// [`crate::persist::FsyncPolicy::Always`], where every write was
    /// already durable.
    fn sync_for_close(&self) -> Result<(), PersistError> {
        let Some(p) = &self.persist else {
            return Ok(());
        };
        if p.cfg.fsync == FsyncPolicy::Always {
            return Ok(());
        }
        let dir = &p.cfg.dir;
        for container in self.containers.iter() {
            let path = log::container_path(dir, container.id);
            std::fs::File::open(path)?.sync_data()?;
        }
        for &id in self.recipes.keys() {
            std::fs::File::open(lifecycle::recipe_path(dir, id))?.sync_data()?;
        }
        manifest::sync_manifest_files(dir)?;
        persist::maybe_sync_dir(dir, FsyncPolicy::Always)
    }

    fn write_snapshot_now(&mut self) -> Result<(), PersistError> {
        let Some(p) = &mut self.persist else {
            return Ok(());
        };
        debug_assert_eq!(
            self.containers.open_len(),
            0,
            "snapshot at an inconsistent point (open container not empty)"
        );
        let snapshot = Snapshot {
            event_seq: p.events,
            entry_bytes: self.config.entry_bytes,
            index_shards: self.config.index_shards as u32,
            stats: self.stats.to_array(),
            loading_bytes: self.loading_bytes,
            loading_ops: self.loading_ops,
            shard_counters: self
                .index
                .shard_stats()
                .iter()
                .map(|s| [s.lookups, s.lookup_bytes, s.updates, s.update_bytes])
                .collect(),
            index_entries: self
                .index
                .sorted_entries()
                .into_iter()
                .map(|(fp, cid)| (fp.value(), cid.0))
                .collect(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            cache_lru: self
                .cache
                .lru_to_mru()
                .into_iter()
                .map(Fingerprint::value)
                .collect(),
        };
        manifest::write_snapshot(&p.cfg.dir, &snapshot, p.cfg.fsync, &p.cfg.io)?;
        p.seals_since_snapshot = 0;
        Ok(())
    }

    /// Commits a backup: seals the open container (so every referenced
    /// chunk is durable before the backup is), persists the recipe and the
    /// manifest record, and takes a reference on each chunk occurrence.
    ///
    /// `id` must be unique across committed, undeleted backups (servers use
    /// the client commit id, making retries detectable). `timestamp` is
    /// caller-supplied logical time for retention policies.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::DuplicateBackup`] when `id` is already committed.
    ///
    /// # Panics
    ///
    /// Panics when a persistent engine fails to write the recipe file or
    /// manifest record (fail-stop, like the seal path).
    pub fn commit_backup(
        &mut self,
        id: u64,
        timestamp: u64,
        chunks: &[ChunkRecord],
    ) -> Result<(), LifecycleError> {
        if self.recipes.contains_key(&id) {
            return Err(LifecycleError::DuplicateBackup { id });
        }
        if let Some(cid) = self.containers.flush() {
            self.on_sealed(cid);
        }
        let recipe = Recipe {
            timestamp,
            chunks: chunks.to_vec(),
        };
        if let Some(p) = &mut self.persist {
            // Write-ahead ordering: recipe file durable first, then the
            // manifest record commits the backup.
            lifecycle::write_recipe(&p.cfg.dir, id, &recipe, p.cfg.fsync, &p.cfg.io)
                .unwrap_or_else(|e| panic!("persistent store: recipe write failed: {e}"));
            p.manifest
                .append_backup(id, recipe.len() as u32, recipe.logical_bytes(), timestamp)
                .unwrap_or_else(|e| panic!("persistent store: manifest append failed: {e}"));
            p.events += 1;
        }
        self.refcounts.add_recipe(&recipe.chunks);
        self.recipes.insert(id, recipe);
        Ok(())
    }

    /// Deletes a committed backup: releases its chunk references and
    /// journals the deletion. Chunk data is reclaimed later by [`Self::gc`]
    /// — deletion itself only moves bytes from *live* to *logically
    /// deleted* in the stats.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::UnknownBackup`] when `id` is not committed.
    ///
    /// # Panics
    ///
    /// Panics when a persistent engine fails to journal the deletion.
    pub fn delete_backup(&mut self, id: u64) -> Result<DeleteReport, LifecycleError> {
        let Some(recipe) = self.recipes.remove(&id) else {
            return Err(LifecycleError::UnknownBackup { id });
        };
        let chunks_released = recipe.len() as u64;
        let logical_bytes = recipe.logical_bytes();
        if let Some(p) = &mut self.persist {
            // The journal record commits the deletion; removing the recipe
            // file afterwards is cleanup (recovery drops strays).
            p.manifest
                .append_backup_delete(id, chunks_released as u32, logical_bytes)
                .unwrap_or_else(|e| panic!("persistent store: manifest append failed: {e}"));
            p.events += 1;
            lifecycle::remove_recipe(&p.cfg.dir, id);
        }
        self.refcounts.release_recipe(&recipe.chunks);
        self.stats.deleted_chunks += chunks_released;
        self.stats.deleted_bytes += logical_bytes;
        Ok(DeleteReport {
            chunks_released,
            logical_bytes,
        })
    }

    /// Committed, undeleted backups as `(id, timestamp)`, sorted by id.
    #[must_use]
    pub fn committed_backups(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .recipes
            .iter()
            .map(|(&id, r)| (id, r.timestamp))
            .collect();
        v.sort_unstable();
        v
    }

    /// The recipe of a committed backup, if present.
    #[must_use]
    pub fn backup_recipe(&self, id: u64) -> Option<&Recipe> {
        self.recipes.get(&id)
    }

    /// Backup ids a retention policy would delete, given the caller's
    /// logical clock `now`.
    #[must_use]
    pub fn retention_victims(&self, policy: RetentionPolicy, now: u64) -> Vec<u64> {
        policy.victims(&self.committed_backups(), now)
    }

    /// Garbage-collects containers whose live fraction (chunks still
    /// referenced by a committed backup *and* owned in the index) is at or
    /// below `live_threshold_permille` (0 = only fully dead containers,
    /// 1000 = rewrite everything). Live chunks are copied into fresh
    /// containers through the ordinary store path — every move is sealed
    /// and manifest-committed *before* its source container is dropped, so
    /// a crash at any point leaves either the pre-move or post-move state.
    ///
    /// # Panics
    ///
    /// Panics when a persistent engine fails a container, manifest or
    /// directory write (fail-stop, like the seal path).
    pub fn gc(&mut self, live_threshold_permille: u32) -> GcReport {
        // Seal pending ingest so the scan sees only sealed containers.
        if let Some(cid) = self.containers.flush() {
            self.on_sealed(cid);
        }
        let mut report = GcReport::default();

        struct Victim {
            id: ContainerId,
            chunk_count: u32,
            data_bytes: u64,
            fingerprints: Vec<Fingerprint>,
            moves: Vec<(ChunkRecord, Option<Vec<u8>>)>,
            moved_bytes: u64,
        }
        // Phase 0: pick victims and copy out their live chunks (the victim
        // containers are about to be dropped).
        let mut victims: Vec<Victim> = Vec::new();
        for c in self.containers.iter() {
            report.containers_scanned += 1;
            let mut moves = Vec::new();
            let mut moved_bytes = 0u64;
            for (pos, &fp) in c.fingerprints.iter().enumerate() {
                let live = self.index.peek(fp) == Some(c.id) && self.refcounts.is_live(fp);
                if live {
                    let size = c.chunk_sizes()[pos];
                    moves.push((
                        ChunkRecord::new(fp, size),
                        c.chunk_payload(pos).map(<[u8]>::to_vec),
                    ));
                    moved_bytes += u64::from(size);
                }
            }
            if (moves.len() as u64) * 1000 > u64::from(live_threshold_permille) * (c.len() as u64) {
                continue; // healthy container, keep it
            }
            victims.push(Victim {
                id: c.id,
                chunk_count: c.len() as u32,
                data_bytes: c.data_bytes,
                fingerprints: c.fingerprints.clone(),
                moves,
                moved_bytes,
            });
        }

        // Phase 1: rewrite live chunks through the ordinary unique-store
        // path (stats, Bloom, index and durability behave exactly like
        // fresh data), then seal — every move is manifest-committed before
        // any source container is dropped.
        for v in &victims {
            for (record, payload) in &v.moves {
                self.store_unique(*record, payload.as_deref());
            }
        }
        if let Some(cid) = self.containers.flush() {
            self.on_sealed(cid);
        }

        // Phase 2: drop each victim — journal the drop, unlink the file,
        // then purge the dead index/cache entries (moved chunks already
        // point at their new container).
        for v in &victims {
            report.containers_dropped += 1;
            report.moved_chunks += v.moves.len() as u64;
            report.moved_bytes += v.moved_bytes;
            let dead_chunks_total = u64::from(v.chunk_count) - v.moves.len() as u64;
            let dead_bytes = v.data_bytes - v.moved_bytes;
            report.dead_chunks += dead_chunks_total;
            report.reclaimed_bytes += dead_bytes;
            // Index entries still mapping to the victim are exactly the
            // dead ones (moves re-pointed theirs in phase 1).
            let dead_fps: Vec<Fingerprint> = v
                .fingerprints
                .iter()
                .copied()
                .filter(|&fp| self.index.peek(fp) == Some(v.id))
                .collect();
            if let Some(p) = &mut self.persist {
                p.manifest
                    .append_gc_drop(
                        v.id.0,
                        v.chunk_count,
                        v.data_bytes,
                        dead_fps.len() as u32,
                        dead_bytes,
                    )
                    .unwrap_or_else(|e| panic!("persistent store: manifest append failed: {e}"));
                p.events += 1;
                let _ = std::fs::remove_file(log::container_path(&p.cfg.dir, v.id));
                persist::maybe_sync_dir(&p.cfg.dir, p.cfg.fsync)
                    .unwrap_or_else(|e| panic!("persistent store: directory sync failed: {e}"));
            }
            self.containers.remove(v.id);
            self.stats.unique_chunks -= u64::from(v.chunk_count);
            self.stats.unique_bytes -= v.data_bytes;
            self.stats.reclaimed_bytes += dead_bytes;
            self.stats.containers_dropped += 1;
            for fp in dead_fps {
                self.index.remove(fp);
                self.cache.remove(fp);
            }
        }

        // Phase 3: the Bloom filter cannot forget — rebuild it from the
        // live catalog so dropped fingerprints stop claiming duplicates.
        if !victims.is_empty() {
            let mut bloom =
                BloomFilter::with_capacity(self.config.bloom_expected, self.config.bloom_fp_rate);
            for c in self.containers.iter() {
                for &fp in &c.fingerprints {
                    bloom.insert(fp);
                }
            }
            self.bloom = bloom;
        }
        report
    }

    /// REED-style rekeying to the next epoch (or the pending one after a
    /// mid-rekey crash) under a fresh secret. See [`Self::rekey_to`].
    pub fn rekey(&mut self, new_secret: &[u8]) -> RekeyReport {
        let target = self.pending_rekey.unwrap_or(self.epoch + 1);
        self.rekey_to(target, new_secret)
    }

    /// Rewrites every live container under key epoch `target` derived from
    /// `secret`, preserving dedup structure (fingerprints, index, stats are
    /// untouched — only the at-rest wrapping changes). The sequence is
    /// journaled: `REKEY_BEGIN`, per-container rewrite via a temp file +
    /// atomic rename, then `REKEY_COMMIT`. After the commit, reads require
    /// the new epoch's secret; a crash mid-rekey leaves a pending epoch
    /// that [`Self::rekey`] resumes (idempotent — rewriting an
    /// already-rewritten container is harmless).
    ///
    /// No-op when `target` does not advance the committed epoch.
    ///
    /// # Panics
    ///
    /// Panics when a persistent engine fails a rewrite, rename or manifest
    /// append (fail-stop, like the seal path).
    pub fn rekey_to(&mut self, target: u64, secret: &[u8]) -> RekeyReport {
        if target <= self.epoch {
            return RekeyReport {
                epoch: self.epoch,
                containers_rewritten: 0,
            };
        }
        // Seal pending ingest: the rewrite pass walks only sealed
        // containers (sealed at the *old* epoch, rewritten just below).
        if let Some(cid) = self.containers.flush() {
            self.on_sealed(cid);
        }
        let key = lifecycle::epoch_key(secret, target);
        self.epoch_keys.insert(target, key);
        let mut rewritten = 0u64;
        if let Some(p) = &mut self.persist {
            self.pending_rekey = Some(target);
            p.manifest
                .append_rekey_begin(target)
                .unwrap_or_else(|e| panic!("persistent store: manifest append failed: {e}"));
            p.events += 1;
            for c in self.containers.iter() {
                let ckey = c.has_payload().then_some(&key);
                let tmp =
                    log::write_container_tmp(&p.cfg.dir, c, target, ckey, p.cfg.fsync, &p.cfg.io)
                        .unwrap_or_else(|e| panic!("persistent store: rekey rewrite failed: {e}"));
                if p.cfg.io.before_write(PersistSite::RekeyRename, 0) != FaultAction::Proceed {
                    panic!(
                        "persistent store: rekey rewrite failed: {}",
                        PersistError::Injected {
                            site: PersistSite::RekeyRename
                        }
                    );
                }
                std::fs::rename(&tmp, log::container_path(&p.cfg.dir, c.id))
                    .unwrap_or_else(|e| panic!("persistent store: rekey rewrite failed: {e}"));
                rewritten += 1;
            }
            persist::maybe_sync_dir(&p.cfg.dir, p.cfg.fsync)
                .unwrap_or_else(|e| panic!("persistent store: directory sync failed: {e}"));
            p.manifest
                .append_rekey_commit(target)
                .unwrap_or_else(|e| panic!("persistent store: manifest append failed: {e}"));
            p.events += 1;
        }
        self.epoch = target;
        self.pending_rekey = None;
        RekeyReport {
            epoch: target,
            containers_rewritten: rewritten,
        }
    }

    /// The committed key epoch (0 = unkeyed container logs).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The target epoch of an interrupted rekey awaiting resume, if any.
    #[must_use]
    pub fn pending_rekey(&self) -> Option<u64> {
        self.pending_rekey
    }

    /// Per-chunk reference counts across committed backups (inspection).
    #[must_use]
    pub fn refcounts(&self) -> &RefCounts {
        &self.refcounts
    }

    /// Deduplication counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Metadata access totals (cumulative; subtract snapshots for
    /// per-backup deltas).
    #[must_use]
    pub fn metadata_access(&self) -> MetadataAccess {
        MetadataAccess {
            update_bytes: self.index.update_bytes(),
            index_bytes: self.index.lookup_bytes(),
            loading_bytes: self.loading_bytes,
        }
    }

    /// Number of container prefetch operations (S4 executions).
    #[must_use]
    pub fn loading_ops(&self) -> u64 {
        self.loading_ops
    }

    /// Reads back a stored chunk's payload (content mode only), borrowed
    /// straight from the container extent — no copy. Returns `None` for
    /// unknown fingerprints or metadata-only ingestion. Callers needing an
    /// owned buffer convert with `.map(<[u8]>::to_vec)`.
    #[must_use]
    pub fn read_chunk(&self, fp: Fingerprint) -> Option<&[u8]> {
        if let Some(bytes) = self.containers.open_payload_of(fp) {
            return Some(bytes);
        }
        let container_id = self.index.peek(fp)?;
        let container = self.containers.get(container_id)?;
        let position = container.fingerprints.iter().position(|&f| f == fp)?;
        container.chunk_payload(position)
    }

    /// The fingerprint cache (inspection).
    #[must_use]
    pub fn cache(&self) -> &FingerprintCache {
        &self.cache
    }

    /// The container store (inspection).
    #[must_use]
    pub fn containers(&self) -> &ContainerStore {
        &self.containers
    }

    /// The fingerprint index (inspection).
    #[must_use]
    pub fn index(&self) -> &FingerprintIndex {
        &self.index
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &DedupConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::FsyncPolicy;
    use std::path::PathBuf;

    fn rec(fp: u64, size: u32) -> ChunkRecord {
        ChunkRecord::new(fp, size)
    }

    fn small_config(cache_entries: usize) -> DedupConfig {
        DedupConfig {
            container_bytes: 64,
            cache_entries,
            entry_bytes: 32,
            bloom_expected: 10_000,
            bloom_fp_rate: 0.01,
            index_shards: 1,
            persist: None,
        }
    }

    fn small_engine(cache_entries: usize) -> DedupEngine {
        DedupEngine::new(small_config(cache_entries)).unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("freqdedup-engine-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn unique_then_buffer_duplicate() {
        let mut e = small_engine(16);
        assert_eq!(e.process(rec(1, 16)), ChunkOutcome::Unique);
        // Still in the open container: buffer hit, not index.
        assert_eq!(e.process(rec(1, 16)), ChunkOutcome::DuplicateBuffer);
    }

    #[test]
    fn index_duplicate_after_seal_then_cache() {
        let mut e = small_engine(16);
        // Fill container (64 bytes) with 4×16B chunks, then one more to seal.
        for i in 0..4 {
            assert_eq!(e.process(rec(i, 16)), ChunkOutcome::Unique);
        }
        assert_eq!(e.process(rec(100, 16)), ChunkOutcome::Unique); // seals 0..4
        assert_eq!(e.stats().containers_sealed, 1);

        // fp 0 now only reachable via the index.
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateIndex);
        // Prefetch brought neighbours into the cache: S1 hit now.
        assert_eq!(e.process(rec(1, 16)), ChunkOutcome::DuplicateCache);
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateCache);
    }

    #[test]
    fn accounting_matches_workflow() {
        let mut e = small_engine(16);
        for i in 0..4 {
            e.process(rec(i, 16));
        }
        e.process(rec(100, 16)); // seal container of 4 chunks
        let m = e.metadata_access();
        assert_eq!(m.update_bytes, 4 * 32, "4 index entries written");
        assert_eq!(m.index_bytes, 0, "no index lookups yet");
        assert_eq!(m.loading_bytes, 0);

        e.process(rec(0, 16)); // S3 lookup + S4 load of 4 fps
        let m = e.metadata_access();
        assert_eq!(m.index_bytes, 32);
        assert_eq!(m.loading_bytes, 4 * 32);
        assert_eq!(e.loading_ops(), 1);
    }

    #[test]
    fn no_double_store() {
        let mut e = small_engine(4);
        let stream: Vec<u64> = vec![1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3, 4, 5];
        for f in stream {
            e.process(rec(f, 16));
        }
        e.finish();
        assert_eq!(e.stats().unique_chunks, 5);
        assert_eq!(e.stats().logical_chunks, 15);
        assert_eq!(e.stats().duplicates(), 10);
    }

    #[test]
    fn storage_saving_math() {
        let mut e = small_engine(16);
        for f in [1u64, 1, 1, 2] {
            e.process(rec(f, 100));
        }
        let s = e.stats();
        assert_eq!(s.logical_bytes, 400);
        assert_eq!(s.unique_bytes, 200);
        assert!((s.storage_saving() - 0.5).abs() < 1e-12);
        assert!((s.dedup_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn finish_indexes_tail_chunks() {
        let mut e = small_engine(16);
        e.process(rec(7, 16));
        e.finish();
        // After finish, the chunk is reachable via the index path.
        assert_eq!(e.process(rec(7, 16)), ChunkOutcome::DuplicateIndex);
    }

    #[test]
    fn payload_round_trip_through_engine() {
        let mut e = DedupEngine::new(DedupConfig {
            container_bytes: 32,
            cache_entries: 8,
            entry_bytes: 32,
            bloom_expected: 100,
            bloom_fp_rate: 0.01,
            index_shards: 1,
            persist: None,
        })
        .unwrap();
        e.process_with_payload(rec(1, 5), b"hello");
        e.process_with_payload(rec(2, 5), b"world");
        // Read from open container (borrowed, no copy).
        assert_eq!(e.read_chunk(Fingerprint(1)), Some(&b"hello"[..]));
        e.finish();
        // Read from sealed container via the index.
        assert_eq!(e.read_chunk(Fingerprint(2)), Some(&b"world"[..]));
        assert_eq!(e.read_chunk(Fingerprint(9)), None);
    }

    #[test]
    #[should_panic(expected = "mixed payload modes")]
    fn mixed_mode_ingestion_panics() {
        let mut e = small_engine(16);
        e.process(rec(1, 16));
        e.process_with_payload(rec(2, 5), b"hello");
    }

    #[test]
    fn ingest_backup_convenience() {
        let mut e = small_engine(16);
        let b = Backup::from_chunks("b", vec![rec(1, 8), rec(2, 8), rec(1, 8)]);
        e.ingest_backup(&b);
        assert_eq!(e.stats().logical_chunks, 3);
        assert_eq!(e.stats().unique_chunks, 2);
    }

    #[test]
    fn zero_cache_forces_index_path() {
        let mut e = small_engine(0);
        for i in 0..4 {
            e.process(rec(i, 16));
        }
        e.process(rec(100, 16)); // seal
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateIndex);
        // Cache disabled: the same fp goes through the index again.
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateIndex);
        assert!(e.metadata_access().loading_bytes >= 2 * 4 * 32);
    }

    #[test]
    fn invalid_config_rejected() {
        let c = DedupConfig {
            container_bytes: 0,
            ..DedupConfig::default()
        };
        assert!(DedupEngine::new(c).is_err());
        let c = DedupConfig {
            bloom_fp_rate: 0.0,
            ..DedupConfig::default()
        };
        assert!(DedupEngine::new(c).is_err());
    }

    #[test]
    fn locality_prefetch_reduces_index_traffic() {
        // Two interleaved ingest patterns of the same duplicate set: with
        // locality (sequential repeat) the cache prefetch absorbs most
        // lookups; shuffled access defeats the prefetch only when the cache
        // is too small to hold everything — here we check the sequential
        // case enjoys cache hits.
        let mut e = DedupEngine::new(DedupConfig {
            container_bytes: 1024,
            cache_entries: 1024,
            entry_bytes: 32,
            bloom_expected: 10_000,
            bloom_fp_rate: 0.01,
            index_shards: 1,
            persist: None,
        })
        .unwrap();
        for i in 0..1000u64 {
            e.process(rec(i, 16));
        }
        e.finish();
        for i in 0..1000u64 {
            e.process(rec(i, 16));
        }
        let s = e.stats();
        assert!(s.dup_cache_hits > 900, "cache hits {}", s.dup_cache_hits);
        assert!(s.dup_index_hits < 100, "index hits {}", s.dup_index_hits);
    }

    #[test]
    fn persistent_round_trip_is_bit_identical() {
        let dir = tmp_dir("round-trip");
        let pcfg = PersistConfig::new(&dir).fsync(FsyncPolicy::Never);
        let stream: Vec<ChunkRecord> = (0..300u64)
            .map(|i| rec((i % 90).wrapping_mul(0x9e37_79b9_7f4a_7c15), 16))
            .collect();

        // Reference: an engine that never restarts.
        let mut live = DedupEngine::new(small_config(16)).unwrap();
        for &r in &stream {
            live.process(r);
        }
        live.finish();

        // Durable twin: same stream, then close + reopen.
        let mut durable = DedupEngine::open(DedupConfig {
            persist: Some(pcfg.clone()),
            ..small_config(16)
        })
        .unwrap();
        for &r in &stream {
            durable.process(r);
        }
        durable.finish();
        let want_stats = durable.stats();
        durable.close().unwrap();

        let mut reopened = DedupEngine::open(DedupConfig {
            persist: Some(pcfg),
            ..small_config(16)
        })
        .unwrap();
        assert_eq!(reopened.stats(), want_stats);
        assert_eq!(reopened.stats(), live.stats());
        assert_eq!(reopened.metadata_access(), live.metadata_access());
        assert_eq!(
            reopened.index().sorted_entries(),
            live.index().sorted_entries()
        );
        assert_eq!(reopened.cache().lru_to_mru(), live.cache().lru_to_mru());

        // Subsequent ingest behaves identically on both.
        for &r in &stream {
            assert_eq!(reopened.process(r), live.process(r));
        }
        assert_eq!(reopened.stats(), live.stats());
        assert_eq!(reopened.metadata_access(), live.metadata_access());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_under_different_config_rejected() {
        let dir = tmp_dir("config-mismatch");
        let pcfg = PersistConfig::new(&dir).fsync(FsyncPolicy::Never);
        let e = DedupEngine::open(DedupConfig {
            persist: Some(pcfg.clone()),
            ..small_config(16)
        })
        .unwrap();
        e.close().unwrap();
        let err = DedupEngine::open(DedupConfig {
            container_bytes: 128, // was 64
            persist: Some(pcfg),
            ..small_config(16)
        })
        .unwrap_err();
        assert!(matches!(err, PersistError::ConfigMismatch(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_without_close_recovers_sealed_prefix() {
        let dir = tmp_dir("no-close");
        let pcfg = PersistConfig::new(&dir).fsync(FsyncPolicy::Never);
        let mut e = DedupEngine::open(DedupConfig {
            persist: Some(pcfg.clone()),
            ..small_config(16)
        })
        .unwrap();
        // 9 unique 16-byte chunks: two sealed containers (4 chunks each)
        // plus one chunk left in the open container, then "crash" (drop).
        for i in 0..9u64 {
            e.process(rec(i, 16));
        }
        assert_eq!(e.stats().containers_sealed, 2);
        drop(e);

        let r = DedupEngine::open(DedupConfig {
            persist: Some(pcfg),
            ..small_config(16)
        })
        .unwrap();
        // The open-container chunk is gone; the sealed state survives.
        assert_eq!(r.stats().containers_sealed, 2);
        assert_eq!(r.stats().unique_chunks, 8);
        assert_eq!(r.stats().unique_bytes, 8 * 16);
        assert_eq!(r.index().len(), 8);
        assert_eq!(r.containers().sealed_count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
